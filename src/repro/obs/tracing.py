"""Hierarchical tracing: spans with parent/child links and trace identity.

A :class:`Span` covers one unit of engine work (a transaction, a 2PC phase,
a snapshot merge, one operator of a query plan).  Timestamps come from the
tracer's :class:`~repro.common.clock.SimClock`; because nothing reads the OS
clock, traces are identical across identical runs.

Since the distributed-tracing refactor every span also carries:

* ``trace_id`` — the end-to-end unit it belongs to (one query, one
  transaction, one HTAP merge tick).  A span inherits its parent's trace;
  a parentless span roots a new one.
* ``node`` — where the work ran (``"cn0"``, ``"dn2"``), so a stitched tree
  attributes simulated time honestly per node.

:class:`TraceContext` is the *wire form* of a span identity — just
``(trace_id, span_id)``.  It is what crosses an exchange boundary from
coordinator to data node: the DN side starts children with
``parent_ctx=ctx`` without ever holding the CN's :class:`Span` object,
exactly like trace propagation headers in a real RPC fabric.

Two usage styles coexist:

* ``with tracer.span("2pc.prepare", gxid=7):`` — stack-scoped nesting for
  straight-line code (the profiler, the SQL engine).
* ``span = tracer.start_span("txn.global"); ... tracer.end_span(span)`` —
  explicit lifetimes for work that interleaves across clients (transactions
  held open across driver scheduling), with ``parent=`` passed by hand.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple

from repro.common.clock import SimClock
from repro.common.errors import ConfigError
from repro.obs.ring import RingBuffer


class TraceContext(NamedTuple):
    """A span identity in transit: all that crosses a CN→DN boundary."""

    trace_id: int
    span_id: int


class Span:
    """One traced unit of work.

    Plain slots, not a dataclass: spans are the highest-volume telemetry
    object the engine allocates, and the attribute dict — rarely used on
    the hot path — is materialized lazily on first write.
    """

    __slots__ = ("span_id", "trace_id", "name", "parent_id", "start_us",
                 "end_us", "node", "_attrs")

    def __init__(self, span_id: int, name: str, parent_id: Optional[int],
                 start_us: float, trace_id: int = 0,
                 end_us: Optional[float] = None,
                 node: Optional[str] = None,
                 attributes: Optional[Dict[str, object]] = None):
        self.span_id = span_id
        self.trace_id = trace_id
        self.name = name
        self.parent_id = parent_id
        self.start_us = start_us
        self.end_us = end_us
        self.node = node
        self._attrs = attributes if attributes else None

    @property
    def attributes(self) -> Dict[str, object]:
        attrs = self._attrs
        if attrs is None:
            attrs = self._attrs = {}
        return attrs

    @property
    def finished(self) -> bool:
        return self.end_us is not None

    @property
    def duration_us(self) -> float:
        if self.end_us is None:
            return 0.0
        return self.end_us - self.start_us

    def set_attribute(self, key: str, value: object) -> "Span":
        attrs = self._attrs
        if attrs is None:
            attrs = self._attrs = {}
        attrs[key] = value
        return self

    def get_attribute(self, key: str, default: object = None) -> object:
        attrs = self._attrs
        if attrs is None:
            return default
        return attrs.get(key, default)

    def context(self) -> TraceContext:
        """This span's identity, ready to hand across a node boundary."""
        return TraceContext(self.trace_id, self.span_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"{self.duration_us:.1f}us" if self.finished else "open"
        return f"Span#{self.span_id}({self.name}, {state})"


class _SpanContext:
    """Context manager wrapper so ``with tracer.span(...)`` nests on a stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._stack.append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._span.set_attribute("error", exc_type.__name__)
        self._tracer._stack.pop()
        self._tracer.end_span(self._span)


class Tracer:
    """Produces spans and retains a preallocated ring of finished ones."""

    def __init__(self, clock: Optional[SimClock] = None, max_spans: int = 10_000):
        if max_spans <= 0:
            raise ConfigError("max_spans must be positive")
        self.clock = clock if clock is not None else SimClock()
        self._next_id = 1
        self._next_trace = 1
        self._stack: List[Span] = []
        self._finished: RingBuffer = RingBuffer(max_spans)
        self.spans_started = 0

    # -- span lifecycle ----------------------------------------------------

    def new_trace_id(self) -> int:
        """Allocate a fresh trace id (one query / txn / daemon tick)."""
        trace_id = self._next_trace
        self._next_trace += 1
        return trace_id

    def start_span(self, name: str, parent: Optional[Span] = None,
                   parent_ctx: Optional[TraceContext] = None,
                   node: Optional[str] = None,
                   **attributes: object) -> Span:
        """Open a span explicitly.  Defaults its parent to the stack top.

        Trace identity propagates parent-first: an explicit ``parent`` span
        (or stack top) passes its ``trace_id`` down; a ``parent_ctx``
        carries both ids across a node boundary without the parent object;
        a parentless span roots a brand-new trace.
        """
        if parent is None and parent_ctx is None and self._stack:
            parent = self._stack[-1]
        if parent is not None:
            parent_id = parent.span_id
            trace_id = parent.trace_id
        elif parent_ctx is not None:
            parent_id = parent_ctx.span_id
            trace_id = parent_ctx.trace_id
        else:
            parent_id = None
            trace_id = self._next_trace
            self._next_trace += 1
        # Spans are the highest-volume obs allocation; build one with
        # direct slot stores instead of the keyword constructor.
        span = Span.__new__(Span)
        span.span_id = self._next_id
        span.trace_id = trace_id
        span.name = name
        span.parent_id = parent_id
        span.start_us = self.clock.now_us
        span.end_us = None
        span.node = node
        span._attrs = attributes if attributes else None
        self._next_id += 1
        self.spans_started += 1
        return span

    def end_span(self, span: Span, end_us: Optional[float] = None) -> Span:
        """Finish a span (idempotent).  ``end_us`` overrides the clock read
        for callers that account simulated time themselves (the profiler)."""
        if span.end_us is None:
            t = end_us if end_us is not None else self.clock.now_us
            span.end_us = max(t, span.start_us)
            self._finished.append(span)
        return span

    def span(self, name: str, parent: Optional[Span] = None,
             **attributes: object) -> _SpanContext:
        """Stack-scoped span for ``with`` blocks."""
        return _SpanContext(self, self.start_span(name, parent, **attributes))

    def activate(self, span: Span) -> None:
        """Make ``span`` the default parent for spans started without one.

        The SQL engine activates its per-query span around execution so
        everything the statement causes — the read transaction, snapshot
        acquisition, operator profiling — stitches into the query's trace
        without threading the span through every layer.
        """
        self._stack.append(span)

    def deactivate(self, span: Span) -> None:
        """Undo :meth:`activate` (tolerates a stack already unwound)."""
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    # -- reading -----------------------------------------------------------

    def finished_spans(self, name: Optional[str] = None) -> List[Span]:
        if name is None:
            return self._finished.to_list()
        return [s for s in self._finished if s.name == name]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self._finished if s.parent_id == span.span_id]

    def roots(self) -> List[Span]:
        return [s for s in self._finished if s.parent_id is None]

    def walk(self, span: Span) -> Iterator[Span]:
        """Depth-first traversal of a finished span's retained subtree."""
        yield span
        for child in self.children_of(span):
            yield from self.walk(child)

    # -- trace stitching ---------------------------------------------------

    def spans_for_trace(self, trace_id: int) -> List[Span]:
        """Every retained finished span of one trace, in finish order."""
        return [s for s in self._finished if s.trace_id == trace_id]

    def trace_ids(self) -> List[int]:
        """Distinct trace ids in the retained buffer, ascending."""
        return sorted({s.trace_id for s in self._finished})

    def trace_tree(self, trace_id: int) -> List[Tuple[Span, int]]:
        """One trace stitched into ``(span, depth)`` rows, pre-order.

        Children sort by ``(start_us, span_id)`` under their parent.  Spans
        whose parent was evicted from the ring (or lives on another node's
        still-open stack) surface as additional roots rather than being
        dropped, so a truncated trace stays visible.
        """
        spans = self.spans_for_trace(trace_id)
        by_parent: Dict[Optional[int], List[Span]] = {}
        ids = {s.span_id for s in spans}
        for s in spans:
            parent = s.parent_id if s.parent_id in ids else None
            by_parent.setdefault(parent, []).append(s)
        for children in by_parent.values():
            children.sort(key=lambda s: (s.start_us, s.span_id))
        out: List[Tuple[Span, int]] = []

        def emit(span: Span, depth: int) -> None:
            out.append((span, depth))
            for child in by_parent.get(span.span_id, ()):  # noqa: B023
                emit(child, depth + 1)

        for root in by_parent.get(None, ()):
            emit(root, 0)
        return out

    def reset(self) -> None:
        self._finished.clear()
        self._stack.clear()
        # Span and trace ids restart so a reset cluster retraces identically.
        self._next_id = 1
        self._next_trace = 1
        self.spans_started = 0
