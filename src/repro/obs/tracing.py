"""Hierarchical tracing: spans with parent/child links and attributes.

A :class:`Span` covers one unit of engine work (a transaction, a 2PC phase,
a snapshot merge, one operator of a query plan).  Timestamps come from the
tracer's :class:`~repro.common.clock.SimClock`; because nothing reads the OS
clock, traces are identical across identical runs.

Two usage styles coexist:

* ``with tracer.span("2pc.prepare", gxid=7):`` — stack-scoped nesting for
  straight-line code (the profiler, the SQL engine).
* ``span = tracer.start_span("txn.global"); ... tracer.end_span(span)`` —
  explicit lifetimes for work that interleaves across clients (transactions
  held open across driver scheduling), with ``parent=`` passed by hand.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional

from repro.common.clock import SimClock
from repro.common.errors import ConfigError


@dataclass
class Span:
    span_id: int
    name: str
    parent_id: Optional[int]
    start_us: float
    end_us: Optional[float] = None
    attributes: Dict[str, object] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end_us is not None

    @property
    def duration_us(self) -> float:
        if self.end_us is None:
            return 0.0
        return self.end_us - self.start_us

    def set_attribute(self, key: str, value: object) -> "Span":
        self.attributes[key] = value
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"{self.duration_us:.1f}us" if self.finished else "open"
        return f"Span#{self.span_id}({self.name}, {state})"


class _SpanContext:
    """Context manager wrapper so ``with tracer.span(...)`` nests on a stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._stack.append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._span.set_attribute("error", exc_type.__name__)
        self._tracer._stack.pop()
        self._tracer.end_span(self._span)


class Tracer:
    """Produces spans and retains a bounded buffer of finished ones."""

    def __init__(self, clock: Optional[SimClock] = None, max_spans: int = 10_000):
        if max_spans <= 0:
            raise ConfigError("max_spans must be positive")
        self.clock = clock if clock is not None else SimClock()
        self._next_id = 1
        self._stack: List[Span] = []
        self._finished: Deque[Span] = deque(maxlen=max_spans)
        self.spans_started = 0

    # -- span lifecycle ----------------------------------------------------

    def start_span(self, name: str, parent: Optional[Span] = None,
                   **attributes: object) -> Span:
        """Open a span explicitly.  Defaults its parent to the stack top."""
        if parent is None and self._stack:
            parent = self._stack[-1]
        span = Span(
            span_id=self._next_id,
            name=name,
            parent_id=parent.span_id if parent is not None else None,
            start_us=self.clock.now_us,
            attributes=dict(attributes),
        )
        self._next_id += 1
        self.spans_started += 1
        return span

    def end_span(self, span: Span, end_us: Optional[float] = None) -> Span:
        """Finish a span (idempotent).  ``end_us`` overrides the clock read
        for callers that account simulated time themselves (the profiler)."""
        if span.end_us is None:
            t = end_us if end_us is not None else self.clock.now_us
            span.end_us = max(t, span.start_us)
            self._finished.append(span)
        return span

    def span(self, name: str, parent: Optional[Span] = None,
             **attributes: object) -> _SpanContext:
        """Stack-scoped span for ``with`` blocks."""
        return _SpanContext(self, self.start_span(name, parent, **attributes))

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    # -- reading -----------------------------------------------------------

    def finished_spans(self, name: Optional[str] = None) -> List[Span]:
        if name is None:
            return list(self._finished)
        return [s for s in self._finished if s.name == name]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self._finished if s.parent_id == span.span_id]

    def roots(self) -> List[Span]:
        return [s for s in self._finished if s.parent_id is None]

    def walk(self, span: Span) -> Iterator[Span]:
        """Depth-first traversal of a finished span's retained subtree."""
        yield span
        for child in self.children_of(span):
            yield from self.walk(child)

    def reset(self) -> None:
        self._finished.clear()
        self._stack.clear()
        # Span ids restart so a reset cluster retraces identically.
        self._next_id = 1
        self.spans_started = 0
