"""The ``sys`` schema: SQL-queryable system views over live engine state.

Production MPP systems expose engine internals through catalog views
(Greenplum's ``gp_stat_*`` / ``pg_stat_activity`` family); this module is
that surface for the reproduction.  Each view implements the binder's
:class:`~repro.sql.binder.TableFunctionImpl` protocol, so a plain

    SELECT * FROM sys.activity WHERE state = 'waiting'

binds to a ``LogicalTableFunction``, lowers to the standard
``PTableFunction`` physical operator, and composes with filters, joins and
aggregates exactly like a user table — no side channel, no special executor.
Rows are produced at *execution* time, straight out of the live
:class:`~repro.obs.Observability` state, so a view read mid-run sees the
engine as it is at that simulated instant.

Views:

* ``sys.metrics``      — the flattened metric registry (name, kind, value).
* ``sys.activity``     — open transactions: state, snapshot kind, waits.
* ``sys.wait_events``  — aggregated wait-event accounting.
* ``sys.slow_queries`` — the slow-query ring buffer with profile summaries.
* ``sys.spans``        — recently finished tracer spans.
* ``sys.alerts``       — live alerts, severity-ranked.
* ``sys.faults``       — injected-fault history (``repro.faults``).
* ``sys.wlm_groups``   — resource groups: config plus live/lifetime counters.
* ``sys.wlm_queue``    — the admission event history (``repro.wlm``).
* ``sys.htap_tables``  — per-DN dual-format table state: frozen chunks,
  pending delta rows, merge watermark, freshness lag (``repro.htap``).
* ``sys.htap_merges``  — the delta-merge history: rows folded, storage I/O
  charged, worst commit-to-merge lag per merge.
* ``sys.trace_spans``  — finished spans stitched into trace trees: one row
  per span with its trace id, tree depth and executing node.
* ``sys.shard_map``    — the versioned slot table: one row per hash slot
  with its owner, in-flight move target and scan exclusions
  (``repro.cluster.shardmap``).
* ``sys.rebalance``    — online-resharding move history: state, rows
  copied/truncated, begin/flip/end timestamps (``repro.cluster.rebalance``).
* ``sys.wait_samples`` — the sampled wait-event detail ring (deterministic
  1-in-N capture of the high-frequency events; see ``sys.obs_config``).
* ``sys.wait_sampling``— per-event sampling accounting: stride, events
  seen, detail samples taken (exact aggregates are never sampled).
* ``sys.obs_config``   — the live telemetry-mode knobs (sampling rates,
  ring capacities, enable flags).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Sequence, Tuple

from repro.storage.types import DataType

if TYPE_CHECKING:  # pragma: no cover - only for annotations
    from repro.obs import Observability

SYS_SCHEMA = "sys"

Columns = List[Tuple[str, DataType]]


class SystemView:
    """One virtual table, backed by a row-producing callable."""

    def __init__(self, name: str, columns: Columns,
                 producer: Callable[[], Iterable[tuple]]):
        self.name = name
        self.columns = columns
        self._producer = producer

    # -- TableFunctionImpl protocol ---------------------------------------

    def output_schema(self, args: Sequence[object]) -> Columns:
        return list(self.columns)

    def rows(self, args: Sequence[object]) -> Iterable[tuple]:
        return self._producer()

    def estimated_rows(self, args: Sequence[object]) -> int:
        # Virtual tables are small; a fixed modest guess keeps the planner
        # from broadcasting real tables against them.
        return 64


class SystemCatalog:
    """The registry of ``sys.*`` views for one cluster's observability."""

    def __init__(self, obs: "Observability"):
        self.obs = obs
        self.views: Dict[str, SystemView] = {}
        self._register(
            "metrics",
            [("name", DataType.TEXT), ("kind", DataType.TEXT),
             ("value", DataType.DOUBLE)],
            self._metrics_rows,
        )
        self._register(
            "activity",
            [("activity_id", DataType.BIGINT), ("txn_id", DataType.BIGINT),
             ("session", DataType.BIGINT), ("cn", DataType.BIGINT),
             ("kind", DataType.TEXT), ("state", DataType.TEXT),
             ("snapshot", DataType.TEXT), ("start_us", DataType.DOUBLE),
             ("elapsed_us", DataType.DOUBLE), ("wait_us", DataType.DOUBLE),
             ("last_wait", DataType.TEXT)],
            self._activity_rows,
        )
        self._register(
            "wait_events",
            [("event", DataType.TEXT), ("count", DataType.BIGINT),
             ("total_us", DataType.DOUBLE), ("avg_us", DataType.DOUBLE),
             ("max_us", DataType.DOUBLE)],
            self._wait_rows,
        )
        self._register(
            "slow_queries",
            [("query_id", DataType.BIGINT), ("sql", DataType.TEXT),
             ("start_us", DataType.DOUBLE), ("elapsed_us", DataType.DOUBLE),
             ("rows", DataType.BIGINT), ("operators", DataType.BIGINT),
             ("top_operator", DataType.TEXT),
             ("top_operator_us", DataType.DOUBLE),
             ("queue_us", DataType.DOUBLE)],
            self._slow_query_rows,
        )
        self._register(
            "spans",
            [("span_id", DataType.BIGINT), ("parent_id", DataType.BIGINT),
             ("name", DataType.TEXT), ("start_us", DataType.DOUBLE),
             ("end_us", DataType.DOUBLE), ("duration_us", DataType.DOUBLE),
             ("trace_id", DataType.BIGINT), ("node", DataType.TEXT)],
            self._span_rows,
        )
        self._register(
            "trace_spans",
            [("trace_id", DataType.BIGINT), ("span_id", DataType.BIGINT),
             ("parent_id", DataType.BIGINT), ("depth", DataType.BIGINT),
             ("name", DataType.TEXT), ("node", DataType.TEXT),
             ("start_us", DataType.DOUBLE), ("end_us", DataType.DOUBLE),
             ("duration_us", DataType.DOUBLE)],
            self._trace_span_rows,
        )
        self._register(
            "wait_samples",
            [("event", DataType.TEXT), ("session", DataType.TEXT),
             ("wait_us", DataType.DOUBLE), ("t_us", DataType.DOUBLE),
             ("event_seq", DataType.BIGINT)],
            self._wait_sample_rows,
        )
        self._register(
            "wait_sampling",
            [("event", DataType.TEXT), ("every", DataType.BIGINT),
             ("seen", DataType.BIGINT), ("sampled", DataType.BIGINT)],
            self._wait_sampling_rows,
        )
        self._register(
            "obs_config",
            [("setting", DataType.TEXT), ("value", DataType.TEXT)],
            self._obs_config_rows,
        )
        self._register(
            "alerts",
            [("alert_id", DataType.BIGINT), ("severity", DataType.TEXT),
             ("source", DataType.TEXT), ("message", DataType.TEXT),
             ("first_us", DataType.DOUBLE), ("last_us", DataType.DOUBLE),
             ("count", DataType.BIGINT)],
            self._alert_rows,
        )
        self._register(
            "faults",
            [("fault_id", DataType.BIGINT), ("failpoint", DataType.TEXT),
             ("action", DataType.TEXT), ("target", DataType.TEXT),
             ("gxid", DataType.BIGINT), ("t_us", DataType.DOUBLE)],
            self._fault_rows,
        )
        # "group" is a SQL keyword, so the group column is group_name.
        self._register(
            "wlm_groups",
            [("group_name", DataType.TEXT), ("slots", DataType.BIGINT),
             ("memory_per_query", DataType.BIGINT),
             ("priority", DataType.TEXT), ("timeout_us", DataType.DOUBLE),
             ("queue_limit", DataType.BIGINT), ("running", DataType.BIGINT),
             ("queued", DataType.BIGINT), ("admitted", DataType.BIGINT),
             ("rejected", DataType.BIGINT), ("cancelled", DataType.BIGINT),
             ("spills", DataType.BIGINT),
             ("spilled_bytes", DataType.BIGINT)],
            self._wlm_group_rows,
        )
        self._register(
            "wlm_queue",
            [("event_id", DataType.BIGINT), ("query_id", DataType.BIGINT),
             ("group_name", DataType.TEXT), ("priority", DataType.TEXT),
             ("event", DataType.TEXT), ("t_us", DataType.DOUBLE),
             ("wait_us", DataType.DOUBLE)],
            self._wlm_queue_rows,
        )
        # "table" is a SQL keyword, so the table column is table_name.
        self._register(
            "htap_tables",
            [("dn", DataType.BIGINT), ("table_name", DataType.TEXT),
             ("frozen_rows", DataType.BIGINT),
             ("frozen_chunks", DataType.BIGINT),
             ("footprint", DataType.BIGINT),
             ("delta_rows", DataType.BIGINT),
             ("merged_seq", DataType.BIGINT), ("merges", DataType.BIGINT),
             ("last_merge_us", DataType.DOUBLE),
             ("freshness_lag_us", DataType.DOUBLE),
             ("max_lag_us", DataType.DOUBLE)],
            self._htap_table_rows,
        )
        self._register(
            "shard_map",
            [("slot", DataType.BIGINT), ("owner", DataType.BIGINT),
             ("moving_to", DataType.BIGINT),
             ("excluded_on", DataType.TEXT)],
            self._shard_map_rows,
        )
        self._register(
            "rebalance",
            [("move_id", DataType.BIGINT), ("source", DataType.BIGINT),
             ("target", DataType.BIGINT), ("slots", DataType.BIGINT),
             ("state", DataType.TEXT), ("rows_copied", DataType.BIGINT),
             ("rows_truncated", DataType.BIGINT),
             ("t_begin_us", DataType.DOUBLE), ("t_flip_us", DataType.DOUBLE),
             ("t_end_us", DataType.DOUBLE)],
            self._rebalance_rows,
        )
        self._register(
            "geo_regions",
            [("region", DataType.BIGINT), ("name", DataType.TEXT),
             ("priority", DataType.BIGINT), ("dns", DataType.BIGINT),
             ("hosted_slots", DataType.BIGINT),
             ("certified_epoch", DataType.BIGINT),
             ("commits", DataType.BIGINT), ("aborts", DataType.BIGINT),
             ("open_txns", DataType.BIGINT), ("crashed", DataType.BIGINT)],
            self._geo_region_rows,
        )
        self._register(
            "geo_epochs",
            [("epoch", DataType.BIGINT), ("region", DataType.BIGINT),
             ("txns", DataType.BIGINT), ("committed", DataType.BIGINT),
             ("aborted", DataType.BIGINT),
             ("applied_ops", DataType.BIGINT),
             ("seal_us", DataType.DOUBLE), ("certify_us", DataType.DOUBLE),
             ("apply_us", DataType.DOUBLE), ("digest", DataType.BIGINT)],
            self._geo_epoch_rows,
        )
        self._register(
            "geo_shard_map",
            [("slot", DataType.BIGINT), ("home_region", DataType.BIGINT),
             ("subscribers", DataType.TEXT)],
            self._geo_shard_map_rows,
        )
        self._register(
            "htap_merges",
            [("merge_id", DataType.BIGINT), ("dn", DataType.BIGINT),
             ("table_name", DataType.TEXT), ("t_us", DataType.DOUBLE),
             ("delta_rows", DataType.BIGINT),
             ("frozen_rows", DataType.BIGINT), ("bytes", DataType.BIGINT),
             ("io_us", DataType.DOUBLE), ("max_lag_us", DataType.DOUBLE)],
            self._htap_merge_rows,
        )

    def _register(self, short_name: str, columns: Columns,
                  producer: Callable[[], Iterable[tuple]]) -> None:
        name = f"{SYS_SCHEMA}.{short_name}"
        self.views[name] = SystemView(name, columns, producer)

    def get(self, name: str):
        return self.views.get(name.lower())

    def names(self) -> List[str]:
        return sorted(self.views)

    # -- row producers -----------------------------------------------------

    def _metrics_rows(self) -> Iterable[tuple]:
        _, flat = self.obs.metrics.snapshot()
        kind_of = self.obs.metrics.kind_of
        return [(name, kind_of(name) or "", value)
                for name, value in sorted(flat.items())]

    def _activity_rows(self) -> Iterable[tuple]:
        now_us = self.obs.clock.now_us
        return [
            (e.activity_id, e.txn_id, e.session, e.cn, e.kind, e.state,
             e.snapshot, e.start_us, e.elapsed_us(now_us), e.wait_us,
             e.last_wait)
            for e in self.obs.activity.open_entries()
        ]

    def _wait_rows(self) -> Iterable[tuple]:
        return self.obs.waits.rows()

    def _slow_query_rows(self) -> Iterable[tuple]:
        return [entry.as_row() for entry in self.obs.slowlog.entries()]

    def _span_rows(self) -> Iterable[tuple]:
        return [
            (s.span_id, s.parent_id, s.name, s.start_us, s.end_us,
             s.duration_us, s.trace_id, s.node)
            for s in self.obs.tracer.finished_spans()
        ]

    def _trace_span_rows(self) -> Iterable[tuple]:
        tracer = self.obs.tracer
        rows = []
        for trace_id in tracer.trace_ids():
            for span, depth in tracer.trace_tree(trace_id):
                rows.append((
                    trace_id, span.span_id, span.parent_id, depth,
                    span.name, span.node, span.start_us, span.end_us,
                    span.duration_us,
                ))
        return rows

    def _wait_sample_rows(self) -> Iterable[tuple]:
        return [
            (event, str(session) if session is not None else None,
             wait_us, t_us, seq)
            for event, session, wait_us, t_us, seq
            in self.obs.waits.sample_rows()
        ]

    def _wait_sampling_rows(self) -> Iterable[tuple]:
        return self.obs.waits.sampling_rows()

    def _obs_config_rows(self) -> Iterable[tuple]:
        return self.obs.config.rows()

    def _alert_rows(self) -> Iterable[tuple]:
        return [alert.as_row() for alert in self.obs.alerts.alerts()]

    def _fault_rows(self) -> Iterable[tuple]:
        if self.obs.faults is None:
            return []
        return self.obs.faults.rows()

    def _wlm_group_rows(self) -> Iterable[tuple]:
        if self.obs.wlm is None:
            return []
        return self.obs.wlm.group_rows()

    def _wlm_queue_rows(self) -> Iterable[tuple]:
        if self.obs.wlm is None:
            return []
        return self.obs.wlm.queue_rows()

    def _shard_map_rows(self) -> Iterable[tuple]:
        if self.obs.shard_map is None:
            return []
        return self.obs.shard_map.rows()

    def _geo_region_rows(self) -> Iterable[tuple]:
        if self.obs.geo is None:
            return []
        return self.obs.geo.region_rows()

    def _geo_epoch_rows(self) -> Iterable[tuple]:
        if self.obs.geo is None:
            return []
        return self.obs.geo.epoch_rows()

    def _geo_shard_map_rows(self) -> Iterable[tuple]:
        if self.obs.geo is None:
            return []
        return self.obs.geo.shard_rows()

    def _rebalance_rows(self) -> Iterable[tuple]:
        if self.obs.rebalance is None:
            return []
        return self.obs.rebalance.rows()

    def _htap_table_rows(self) -> Iterable[tuple]:
        if self.obs.htap is None:
            return []
        return self.obs.htap.table_rows()

    def _htap_merge_rows(self) -> Iterable[tuple]:
        if self.obs.htap is None:
            return []
        return self.obs.htap.merge_rows()
