"""Wait-event accounting and the live activity registry.

GeoGauss-style scalability analysis (PAPERS.md) says the signal that matters
in a distributed OLTP engine is *where transactions wait*, not just how long
they take end to end.  :class:`WaitEventRecorder` attributes simulated wait
time to a small vocabulary of wait events — GTM snapshot acquisition (global
vs local vs merge-upgrade), 2PC phases, data-node statement service, and
conflict stalls — per event and per session, and mirrors every observation
into ``wait.<event>_us`` registry histograms so the exporter ships the same
numbers to the information store.

:class:`ActivityRegistry` is the engine's ``pg_stat_activity``: every
transaction registers itself on begin, updates its state through commit or
abort, and accumulates its own wait time.  ``sys.activity`` and
``sys.wait_events`` are served directly from these two structures.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple
from zlib import crc32

from repro.common.clock import SimClock
from repro.obs.config import ObsConfig
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.ring import DetSampler, Reservoir, RingBuffer, _MASK64

# -- the wait-event vocabulary ------------------------------------------------

#: Waiting on the GTM for a global snapshot (serialized, size-dependent).
WAIT_GTM_GLOBAL = "gtm.global"
#: Waiting on a data node for a local snapshot (begin path).
WAIT_GTM_LOCAL = "gtm.local"
#: Algorithm 1 UPGRADE: paused until a prepared writer's commit confirmation.
WAIT_MERGE_UPGRADE = "gtm.merge_upgrade"
#: 2PC phase one: prepare records flushed on every written node.
WAIT_2PC_PREPARE = "2pc.prepare"
#: 2PC phase two: GTM commit plus per-node commit confirmations.
WAIT_2PC_COMMIT = "2pc.commit"
#: Data-node write statement service (insert/update/delete apply).
WAIT_DN_APPLY = "dn.apply"
#: Data-node read statement service (point reads and scans).
WAIT_DN_SCAN = "dn.scan"
#: Local (single-shard) commit record.
WAIT_DN_COMMIT = "dn.commit"
#: Work thrown away when a transaction aborts on a serialization conflict.
WAIT_LOCK_CONFLICT = "lock.conflict"
#: Coordinator stalled on an unresponsive peer: the per-attempt timeout plus
#: the exponential backoff before the retry (see ``cluster.txn.RetryPolicy``).
WAIT_FAULT_RETRY = "fault.retry"
#: Coordinator blocked while a dead node failed over to its standby.
WAIT_FAULT_FAILOVER = "fault.failover"
#: Injected message delay (the ``delay`` fault action).
WAIT_FAULT_DELAY = "fault.delay"
#: Statement held in its resource group's admission queue before running.
WAIT_WLM_QUEUE = "wlm_queue"
#: Operator state spilled to disk (write + read-back) on a memory budget
#: overflow; attributed to the data node whose partition overflowed.
WAIT_WLM_SPILL = "wlm_spill"
#: HTAP delta merge storage I/O (read old chunks + delta, write new
#: chunks); attributed to the data node that merged.
WAIT_HTAP_MERGE = "htap_merge"
#: Online-resharding snapshot copy I/O (read the moving slots on the
#: source, write them on the target); attributed to the move target.
WAIT_REBALANCE_COPY = "rebalance_copy"
#: Online-resharding source truncation I/O after the owner flip;
#: attributed to the move source.
WAIT_REBALANCE_TRUNCATE = "rebalance_truncate"
#: Geo commit: time from local submit until the transaction's epoch sealed.
WAIT_GEO_EPOCH = "geo.epoch"
#: Geo commit: seal until the last peer region's batch arrived (the WAN).
WAIT_GEO_SHIP = "geo.ship"
#: Geo commit: deterministic certification of the full epoch.
WAIT_GEO_CERTIFY = "geo.certify"
#: Geo commit: applying the epoch's certified writes at the home region.
WAIT_GEO_APPLY = "geo.apply"
#: Read of a shard this region does not host, served by its home region
#: one WAN round trip away.
WAIT_GEO_REMOTE_READ = "geo.remote_read"

ALL_WAIT_EVENTS = (
    WAIT_GTM_GLOBAL, WAIT_GTM_LOCAL, WAIT_MERGE_UPGRADE,
    WAIT_2PC_PREPARE, WAIT_2PC_COMMIT,
    WAIT_DN_APPLY, WAIT_DN_SCAN, WAIT_DN_COMMIT,
    WAIT_LOCK_CONFLICT,
    WAIT_FAULT_RETRY, WAIT_FAULT_FAILOVER, WAIT_FAULT_DELAY,
    WAIT_WLM_QUEUE, WAIT_WLM_SPILL, WAIT_HTAP_MERGE,
    WAIT_REBALANCE_COPY, WAIT_REBALANCE_TRUNCATE,
    WAIT_GEO_EPOCH, WAIT_GEO_SHIP, WAIT_GEO_CERTIFY, WAIT_GEO_APPLY,
    WAIT_GEO_REMOTE_READ,
)


@dataclass(slots=True)
class WaitStats:
    """Aggregate for one wait event (or one (session, event) pair)."""

    count: int = 0
    total_us: float = 0.0
    max_us: float = 0.0

    @property
    def avg_us(self) -> float:
        return self.total_us / self.count if self.count else 0.0

    def add(self, wait_us: float) -> None:
        self.count += 1
        self.total_us += wait_us
        if wait_us > self.max_us:
            self.max_us = wait_us


class _EventSlot:
    """Interned per-event state, resolved once per event name.

    Holding direct references to the stats aggregate, the registry
    histogram, the sampler and the reservoir turns every ``record()`` after
    the first into pure attribute work — no f-string key building, no
    registry probe, no allocation.
    """

    __slots__ = ("event", "stats", "hist", "sampler", "reservoir", "sessions")

    def __init__(self, event: str, stats: "WaitStats",
                 hist: Optional[Histogram], sampler: DetSampler,
                 reservoir: Reservoir):
        self.event = event
        self.stats = stats
        self.hist = hist
        self.sampler = sampler
        self.reservoir = reservoir
        #: Per-session aggregates for this event, keyed by session id —
        #: nested here (not in a recorder-wide ``(session, event)`` map) so
        #: the hot path hashes a session, never an allocated tuple.
        self.sessions: Dict[object, WaitStats] = {}


class WaitEventRecorder:
    """Attribute simulated wait time per (event, session).

    The aggregates behind ``sys.wait_events`` (count / total / avg / max,
    per event and per session) are **always exact** — they cost three
    attribute updates per record.  Per-observation *detail* is what gets
    expensive at OLTP rates, so for the high-frequency events named by
    :class:`~repro.obs.config.ObsConfig` it is recorded for a
    deterministic, seeded 1-in-N sample only:

    * the ``wait.<event>_us`` registry histogram (exporter / anomaly feed),
    * a per-event :class:`~repro.obs.ring.Reservoir` of raw values
      (exact percentiles over a bounded uniform sample),
    * the shared preallocated sample ring behind ``sys.wait_samples``.

    Identical runs sample identically; :meth:`reset` rewinds the sampler
    streams so back-to-back benchmark runs are independent and equal.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 config: Optional[ObsConfig] = None,
                 clock: Optional[SimClock] = None):
        self.metrics = metrics
        self.config = config if config is not None else ObsConfig()
        self.clock = clock
        self._slots: Dict[str, _EventSlot] = {}
        #: Sampled detail observations, oldest-first:
        #: (event, session, wait_us, t_us, seq) where ``seq`` is the
        #: event's exact observation index (1-based) at sampling time.
        self.samples = RingBuffer(self.config.wait_detail_capacity)

    def _make_slot(self, event: str) -> _EventSlot:
        cfg = self.config
        # zlib.crc32, not hash(): string hashing is randomized per process,
        # and sampler streams must match across runs *and* interpreters.
        salt = crc32(event.encode("utf-8")) & 0x7FFFFFFF
        hist = (self.metrics.histogram(f"wait.{event}_us")
                if self.metrics is not None else None)
        slot = _EventSlot(
            event, WaitStats(), hist,
            DetSampler(every=cfg.sample_every_for(event),
                       seed=cfg.wait_sample_seed, salt=salt),
            Reservoir(size=cfg.wait_reservoir_size,
                      seed=cfg.wait_sample_seed, salt=salt),
        )
        self._slots[event] = slot
        return slot

    def record(self, event: str, wait_us: float,
               session: Optional[object] = None) -> None:
        if wait_us < 0.0:
            wait_us = 0.0
        try:
            slot = self._slots[event]
        except KeyError:
            slot = self._make_slot(event)
        stats = slot.stats
        stats.count += 1
        stats.total_us += wait_us
        if wait_us > stats.max_us:
            stats.max_us = wait_us
        if session is not None:
            try:
                per = slot.sessions[session]
            except KeyError:
                per = slot.sessions[session] = WaitStats()
            per.count += 1
            per.total_us += wait_us
            if wait_us > per.max_us:
                per.max_us = wait_us
        # Inlined DetSampler.take(): a method call per observation is real
        # money at OLTP rates.  Must stay decision-identical to take() so
        # sampling_rows() and replays of mixed call styles agree.
        sampler = slot.sampler
        sampler.seen += 1
        remaining = sampler._pending - 1
        if remaining > 0:
            sampler._pending = remaining
            return
        sampler.taken += 1
        sampler._pending = sampler._draw_gap()
        if slot.hist is not None:
            slot.hist.observe(wait_us)
        slot.reservoir.offer(wait_us)
        t_us = self.clock.now_us if self.clock is not None else 0.0
        self.samples.append((event, session, wait_us, t_us, stats.count))

    def record_batch(self, event: str, count: int, total_us: float,
                     max_us: float, session: Optional[object] = None) -> None:
        """Fold a pre-aggregated batch of one event's observations in.

        Single-event convenience front for :meth:`flush_batches`; both run
        the same folding logic, so mixed call styles stay replay-identical.
        """
        self.flush_batches({event: (count, total_us, max_us)}, session)

    def flush_batches(self, acc, session: Optional[object] = None) -> None:
        """Fold a transaction's whole wait accumulator in, one call.

        ``acc`` maps ``event -> (count, total_us, max_us)``.  Transactions
        accumulate their per-statement waits locally and flush them here
        once at commit/abort (the way ``pg_stat`` counters reach the
        collector), so the per-statement path costs a few list ops instead
        of a recorder call.  Exact aggregates (count / total / max, global
        and per-session) end up identical to ``count`` individual
        :meth:`record` calls.  Detail sampling treats each batch as
        ``count`` consecutive draws of the event's decision stream; when
        one or more samples land inside it, *one* detail observation — the
        batch average — is emitted (per-batch granularity; the stream still
        advances by ``count``, so replays stay byte-identical).
        """
        slots = self._slots
        clock = self.clock
        samples = self.samples
        for event, (count, total_us, max_us) in acc.items():
            if count <= 0:
                continue
            try:
                slot = slots[event]
            except KeyError:
                slot = self._make_slot(event)
            stats = slot.stats
            stats.count += count
            stats.total_us += total_us
            if max_us > stats.max_us:
                stats.max_us = max_us
            if session is not None:
                try:
                    per = slot.sessions[session]
                except KeyError:
                    slot.sessions[session] = WaitStats(count, total_us, max_us)
                else:
                    per.count += count
                    per.total_us += total_us
                    if max_us > per.max_us:
                        per.max_us = max_us
            sampler = slot.sampler
            sampler.seen += count
            remaining = sampler._pending - count
            if remaining > 0:
                sampler._pending = remaining
                continue
            every = sampler.every
            if every == 1:
                # ``count`` unit gaps land inside the batch; the state is
                # untouched (``_draw_gap`` never steps it for every=1).
                remaining = 1
            else:
                # Inlined _draw_gap loop: one xorshift step per consumed
                # gap, bit-identical to calling the method, without the
                # call.
                state = sampler._state
                span = 2 * every - 1
                while remaining <= 0:
                    state ^= (state << 13) & _MASK64
                    state ^= state >> 7
                    state ^= (state << 17) & _MASK64
                    remaining += 1 + (state >> 16) % span
                sampler._state = state
            sampler._pending = remaining
            sampler.taken += 1
            avg = total_us / count
            if slot.hist is not None:
                slot.hist.observe(avg)
            slot.reservoir.offer(avg)
            t_us = clock.now_us if clock is not None else 0.0
            samples.append((event, session, avg, t_us, stats.count))

    # -- reading -----------------------------------------------------------

    def events(self) -> Dict[str, WaitStats]:
        return {event: slot.stats for event, slot in self._slots.items()}

    def stats(self, event: str) -> WaitStats:
        slot = self._slots.get(event)
        return slot.stats if slot is not None else WaitStats()

    def total_us(self, event: str) -> float:
        return self.stats(event).total_us

    def session_stats(self, session: object) -> Dict[str, WaitStats]:
        out: Dict[str, WaitStats] = {}
        for event, slot in self._slots.items():
            per = slot.sessions.get(session)
            if per is not None:
                out[event] = per
        return out

    def event_sessions(self, event: str) -> Dict[object, WaitStats]:
        """Per-session aggregates of one event (empty if never recorded)."""
        slot = self._slots.get(event)
        return dict(slot.sessions) if slot is not None else {}

    def rows(self) -> List[Tuple[str, int, float, float, float]]:
        """``sys.wait_events`` rows: (event, count, total, avg, max).

        Exact regardless of the sampling mode — only detail is sampled.
        """
        return [
            (event, s.count, s.total_us, s.avg_us, s.max_us)
            for event, s in sorted(
                (event, slot.stats) for event, slot in self._slots.items())
        ]

    def sample_rows(self) -> List[Tuple[str, object, float, float, int]]:
        """``sys.wait_samples`` rows, oldest-first."""
        return self.samples.to_list()

    def reservoir(self, event: str) -> Optional[Reservoir]:
        slot = self._slots.get(event)
        return slot.reservoir if slot is not None else None

    def sampling_rows(self) -> List[Tuple[str, int, int, int]]:
        """Per-event sampling accounting: (event, every, seen, sampled)."""
        return [
            (event, slot.sampler.every, slot.sampler.seen, slot.sampler.taken)
            for event, slot in sorted(self._slots.items())
        ]

    def reset(self) -> None:
        """Forget aggregates *and* every sampler/reservoir stream.

        Slots are dropped outright: they are deterministic functions of
        ``(event name, config)``, so rebuilding them on next record makes
        exactly the sampling decisions a fresh recorder would — back-to-back
        benchmark runs are independent and report identical telemetry.
        (The registry histograms they pointed at are reset by the registry.)
        """
        self._slots.clear()
        self.samples.clear()


# -- live activity ------------------------------------------------------------


@dataclass(slots=True)
class ActivityEntry:
    """One transaction's row in ``sys.activity``."""

    activity_id: int
    session: Optional[int]
    cn: int
    kind: str                      # 'local' | 'global'
    snapshot: str                  # 'local' | 'merged' | 'classical'
    state: str                     # 'running' | 'waiting' | 'committing'
                                   # | 'committed' | 'aborted'
    start_us: float
    end_us: Optional[float] = None
    txn_id: Optional[int] = None   # local xid or gxid, once assigned
    wait_us: float = 0.0
    last_wait: Optional[str] = None
    _waiting_depth: int = field(default=0, repr=False)

    @property
    def open(self) -> bool:
        return self.end_us is None

    def elapsed_us(self, now_us: float) -> float:
        end = self.end_us if self.end_us is not None else now_us
        return max(0.0, end - self.start_us)

    def note_wait(self, event: str, wait_us: float) -> None:
        self.wait_us += max(0.0, wait_us)
        self.last_wait = event


class ActivityRegistry:
    """Open-transaction registry plus a bounded history of completed ones."""

    def __init__(self, clock: Optional[SimClock] = None,
                 max_completed: int = 1024):
        self.clock = clock if clock is not None else SimClock()
        self._next_id = 1
        self._open: Dict[int, ActivityEntry] = {}
        self._completed: Deque[ActivityEntry] = deque(maxlen=max_completed)

    def begin(self, kind: str, snapshot: str, cn: int = 0,
              session: Optional[int] = None,
              start_us: Optional[float] = None) -> ActivityEntry:
        entry = ActivityEntry(
            activity_id=self._next_id,
            session=session,
            cn=cn,
            kind=kind,
            snapshot=snapshot,
            state="running",
            start_us=start_us if start_us is not None else self.clock.now_us,
        )
        self._next_id += 1
        self._open[entry.activity_id] = entry
        return entry

    def set_state(self, entry: ActivityEntry, state: str) -> None:
        if entry.open:
            entry.state = state

    def enter_wait(self, entry: ActivityEntry) -> None:
        """Mark a transaction blocked (e.g. inside an UPGRADE wait)."""
        entry._waiting_depth += 1
        if entry.open:
            entry.state = "waiting"

    def leave_wait(self, entry: ActivityEntry) -> None:
        entry._waiting_depth = max(0, entry._waiting_depth - 1)
        if entry.open and entry._waiting_depth == 0 and entry.state == "waiting":
            entry.state = "running"

    def finish(self, entry: ActivityEntry, state: str,
               end_us: Optional[float] = None) -> None:
        if not entry.open:
            return
        entry.state = state
        entry.end_us = end_us if end_us is not None else self.clock.now_us
        if entry.end_us < entry.start_us:
            entry.end_us = entry.start_us
        self._open.pop(entry.activity_id, None)
        self._completed.append(entry)

    # -- reading -----------------------------------------------------------

    def open_entries(self) -> List[ActivityEntry]:
        return [self._open[k] for k in sorted(self._open)]

    def completed(self) -> List[ActivityEntry]:
        return list(self._completed)

    @property
    def open_count(self) -> int:
        return len(self._open)

    def reset(self) -> None:
        self._next_id = 1
        self._open.clear()
        self._completed.clear()
