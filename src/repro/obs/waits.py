"""Wait-event accounting and the live activity registry.

GeoGauss-style scalability analysis (PAPERS.md) says the signal that matters
in a distributed OLTP engine is *where transactions wait*, not just how long
they take end to end.  :class:`WaitEventRecorder` attributes simulated wait
time to a small vocabulary of wait events — GTM snapshot acquisition (global
vs local vs merge-upgrade), 2PC phases, data-node statement service, and
conflict stalls — per event and per session, and mirrors every observation
into ``wait.<event>_us`` registry histograms so the exporter ships the same
numbers to the information store.

:class:`ActivityRegistry` is the engine's ``pg_stat_activity``: every
transaction registers itself on begin, updates its state through commit or
abort, and accumulates its own wait time.  ``sys.activity`` and
``sys.wait_events`` are served directly from these two structures.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.common.clock import SimClock
from repro.obs.metrics import MetricsRegistry

# -- the wait-event vocabulary ------------------------------------------------

#: Waiting on the GTM for a global snapshot (serialized, size-dependent).
WAIT_GTM_GLOBAL = "gtm.global"
#: Waiting on a data node for a local snapshot (begin path).
WAIT_GTM_LOCAL = "gtm.local"
#: Algorithm 1 UPGRADE: paused until a prepared writer's commit confirmation.
WAIT_MERGE_UPGRADE = "gtm.merge_upgrade"
#: 2PC phase one: prepare records flushed on every written node.
WAIT_2PC_PREPARE = "2pc.prepare"
#: 2PC phase two: GTM commit plus per-node commit confirmations.
WAIT_2PC_COMMIT = "2pc.commit"
#: Data-node write statement service (insert/update/delete apply).
WAIT_DN_APPLY = "dn.apply"
#: Data-node read statement service (point reads and scans).
WAIT_DN_SCAN = "dn.scan"
#: Local (single-shard) commit record.
WAIT_DN_COMMIT = "dn.commit"
#: Work thrown away when a transaction aborts on a serialization conflict.
WAIT_LOCK_CONFLICT = "lock.conflict"
#: Coordinator stalled on an unresponsive peer: the per-attempt timeout plus
#: the exponential backoff before the retry (see ``cluster.txn.RetryPolicy``).
WAIT_FAULT_RETRY = "fault.retry"
#: Coordinator blocked while a dead node failed over to its standby.
WAIT_FAULT_FAILOVER = "fault.failover"
#: Injected message delay (the ``delay`` fault action).
WAIT_FAULT_DELAY = "fault.delay"
#: Statement held in its resource group's admission queue before running.
WAIT_WLM_QUEUE = "wlm_queue"
#: Operator state spilled to disk (write + read-back) on a memory budget
#: overflow; attributed to the data node whose partition overflowed.
WAIT_WLM_SPILL = "wlm_spill"
#: HTAP delta merge storage I/O (read old chunks + delta, write new
#: chunks); attributed to the data node that merged.
WAIT_HTAP_MERGE = "htap_merge"

ALL_WAIT_EVENTS = (
    WAIT_GTM_GLOBAL, WAIT_GTM_LOCAL, WAIT_MERGE_UPGRADE,
    WAIT_2PC_PREPARE, WAIT_2PC_COMMIT,
    WAIT_DN_APPLY, WAIT_DN_SCAN, WAIT_DN_COMMIT,
    WAIT_LOCK_CONFLICT,
    WAIT_FAULT_RETRY, WAIT_FAULT_FAILOVER, WAIT_FAULT_DELAY,
    WAIT_WLM_QUEUE, WAIT_WLM_SPILL, WAIT_HTAP_MERGE,
)


@dataclass
class WaitStats:
    """Aggregate for one wait event (or one (session, event) pair)."""

    count: int = 0
    total_us: float = 0.0
    max_us: float = 0.0

    @property
    def avg_us(self) -> float:
        return self.total_us / self.count if self.count else 0.0

    def add(self, wait_us: float) -> None:
        self.count += 1
        self.total_us += wait_us
        if wait_us > self.max_us:
            self.max_us = wait_us


class WaitEventRecorder:
    """Attribute simulated wait time per (event, session).

    Every record also lands in a ``wait.<event>_us`` histogram of the shared
    registry, so downstream consumers that only speak flattened metrics (the
    exporter, the anomaly detectors) see the same accounting.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        self.metrics = metrics
        self._events: Dict[str, WaitStats] = {}
        self._sessions: Dict[Tuple[object, str], WaitStats] = {}

    def record(self, event: str, wait_us: float,
               session: Optional[object] = None) -> None:
        wait_us = max(0.0, float(wait_us))
        self._events.setdefault(event, WaitStats()).add(wait_us)
        if session is not None:
            self._sessions.setdefault((session, event), WaitStats()).add(wait_us)
        if self.metrics is not None:
            self.metrics.histogram(f"wait.{event}_us").observe(wait_us)

    # -- reading -----------------------------------------------------------

    def events(self) -> Dict[str, WaitStats]:
        return dict(self._events)

    def stats(self, event: str) -> WaitStats:
        return self._events.get(event, WaitStats())

    def total_us(self, event: str) -> float:
        return self.stats(event).total_us

    def session_stats(self, session: object) -> Dict[str, WaitStats]:
        return {event: stats for (sess, event), stats in self._sessions.items()
                if sess == session}

    def rows(self) -> List[Tuple[str, int, float, float, float]]:
        """``sys.wait_events`` rows: (event, count, total, avg, max)."""
        return [
            (event, s.count, s.total_us, s.avg_us, s.max_us)
            for event, s in sorted(self._events.items())
        ]

    def reset(self) -> None:
        self._events.clear()
        self._sessions.clear()


# -- live activity ------------------------------------------------------------


@dataclass
class ActivityEntry:
    """One transaction's row in ``sys.activity``."""

    activity_id: int
    session: Optional[int]
    cn: int
    kind: str                      # 'local' | 'global'
    snapshot: str                  # 'local' | 'merged' | 'classical'
    state: str                     # 'running' | 'waiting' | 'committing'
                                   # | 'committed' | 'aborted'
    start_us: float
    end_us: Optional[float] = None
    txn_id: Optional[int] = None   # local xid or gxid, once assigned
    wait_us: float = 0.0
    last_wait: Optional[str] = None
    _waiting_depth: int = field(default=0, repr=False)

    @property
    def open(self) -> bool:
        return self.end_us is None

    def elapsed_us(self, now_us: float) -> float:
        end = self.end_us if self.end_us is not None else now_us
        return max(0.0, end - self.start_us)

    def note_wait(self, event: str, wait_us: float) -> None:
        self.wait_us += max(0.0, wait_us)
        self.last_wait = event


class ActivityRegistry:
    """Open-transaction registry plus a bounded history of completed ones."""

    def __init__(self, clock: Optional[SimClock] = None,
                 max_completed: int = 1024):
        self.clock = clock if clock is not None else SimClock()
        self._next_id = 1
        self._open: Dict[int, ActivityEntry] = {}
        self._completed: Deque[ActivityEntry] = deque(maxlen=max_completed)

    def begin(self, kind: str, snapshot: str, cn: int = 0,
              session: Optional[int] = None,
              start_us: Optional[float] = None) -> ActivityEntry:
        entry = ActivityEntry(
            activity_id=self._next_id,
            session=session,
            cn=cn,
            kind=kind,
            snapshot=snapshot,
            state="running",
            start_us=start_us if start_us is not None else self.clock.now_us,
        )
        self._next_id += 1
        self._open[entry.activity_id] = entry
        return entry

    def set_state(self, entry: ActivityEntry, state: str) -> None:
        if entry.open:
            entry.state = state

    def enter_wait(self, entry: ActivityEntry) -> None:
        """Mark a transaction blocked (e.g. inside an UPGRADE wait)."""
        entry._waiting_depth += 1
        if entry.open:
            entry.state = "waiting"

    def leave_wait(self, entry: ActivityEntry) -> None:
        entry._waiting_depth = max(0, entry._waiting_depth - 1)
        if entry.open and entry._waiting_depth == 0 and entry.state == "waiting":
            entry.state = "running"

    def finish(self, entry: ActivityEntry, state: str,
               end_us: Optional[float] = None) -> None:
        if not entry.open:
            return
        entry.state = state
        entry.end_us = end_us if end_us is not None else self.clock.now_us
        if entry.end_us < entry.start_us:
            entry.end_us = entry.start_us
        self._open.pop(entry.activity_id, None)
        self._completed.append(entry)

    # -- reading -----------------------------------------------------------

    def open_entries(self) -> List[ActivityEntry]:
        return [self._open[k] for k in sorted(self._open)]

    def completed(self) -> List[ActivityEntry]:
        return list(self._completed)

    @property
    def open_count(self) -> int:
        return len(self._open)

    def reset(self) -> None:
        self._next_id = 1
        self._open.clear()
        self._completed.clear()
