"""Preallocated ring buffers and deterministic samplers — the telemetry
fast path's storage primitives.

The observability hot path used to allocate a dict or dataclass per event;
at OLTP rates that was the single biggest wall-clock tax in the engine
(``BENCH_obs_overhead`` measured 1.86x).  Everything here is built around
two rules:

* **Preallocate once, overwrite forever.**  :class:`RingBuffer` owns a
  fixed-size slot list created at construction; appends are an index
  increment and a slot store, never a list grow or node allocation.
* **Sample deterministically.**  :class:`DetSampler` and
  :class:`Reservoir` draw from a seeded xorshift stream, so two identical
  runs keep *identical* sample sets — replay-identity extends to sampled
  telemetry, and tests can assert on it byte for byte.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.common.errors import ConfigError

_MASK64 = (1 << 64) - 1


def _xorshift64(state: int) -> int:
    """One step of a 64-bit xorshift generator (never yields 0)."""
    state ^= (state << 13) & _MASK64
    state ^= state >> 7
    state ^= (state << 17) & _MASK64
    return state


def _seed_state(seed: int, salt: int = 0) -> int:
    """Mix a user seed and a salt into a non-zero 64-bit start state."""
    state = (seed * 0x9E3779B97F4A7C15 + salt * 0xBF58476D1CE4E5B9 + 1) & _MASK64
    return state or 1


class RingBuffer:
    """A fixed-capacity overwrite-oldest buffer over a preallocated list.

    Unlike ``collections.deque(maxlen=n)`` the slot storage is allocated
    once up front and never resized; an append is one modulo increment and
    one slot assignment.  Iteration yields items oldest-first.
    """

    __slots__ = ("_slots", "_capacity", "_next", "_count", "dropped")

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ConfigError("ring buffer capacity must be positive")
        self._capacity = int(capacity)
        self._slots: List[object] = [None] * self._capacity
        self._next = 0          # next write index
        self._count = 0         # live items (<= capacity)
        #: Items overwritten before ever being read; monotone until reset.
        self.dropped = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return self._count

    def append(self, item: object) -> None:
        self._slots[self._next] = item
        self._next = (self._next + 1) % self._capacity
        if self._count < self._capacity:
            self._count += 1
        else:
            self.dropped += 1

    def __iter__(self) -> Iterator[object]:
        if self._count < self._capacity:
            for i in range(self._count):
                yield self._slots[i]
            return
        start = self._next
        for i in range(self._capacity):
            yield self._slots[(start + i) % self._capacity]

    def to_list(self) -> List[object]:
        return list(self)

    def last(self) -> Optional[object]:
        if self._count == 0:
            return None
        return self._slots[(self._next - 1) % self._capacity]

    def clear(self) -> None:
        """Drop every item *and* null the slots, so cleared payloads are
        unreachable (a reset really forgets the previous run)."""
        for i in range(self._capacity):
            self._slots[i] = None
        self._next = 0
        self._count = 0
        self.dropped = 0


class DetSampler:
    """Deterministic ~1-in-``every`` sampler over a seeded xorshift stream.

    ``take()`` answers "does this observation carry detail?".  Rather than
    drawing a random number per observation, the sampler draws a *gap* —
    uniform in ``[1, 2*every - 1]``, mean ``every`` — from the seeded
    stream each time a sample fires, and counts down through it.  The
    skipped observations cost one decrement, and the generator only steps
    once per *sampled* observation (Vitter-style skip sampling).

    The decision stream depends only on ``(seed, salt, call index)``, so a
    replay makes the same choices — and :meth:`reset` rewinds to the first
    decision.  ``every=1`` degenerates to always-take (unsampled mode).
    """

    __slots__ = ("every", "seed", "salt", "_state", "taken", "seen",
                 "_pending")

    def __init__(self, every: int = 1, seed: int = 0, salt: int = 0):
        if every < 1:
            raise ConfigError("sample 'every' must be >= 1")
        self.every = int(every)
        self.seed = int(seed)
        self.salt = int(salt)
        self._state = _seed_state(self.seed, self.salt)
        self.seen = 0
        self.taken = 0
        self._pending = self._draw_gap()

    def _draw_gap(self) -> int:
        """Observations until the next sample (inclusive)."""
        if self.every == 1:
            return 1
        self._state = _xorshift64(self._state)
        return 1 + (self._state >> 16) % (2 * self.every - 1)

    def take(self) -> bool:
        self.seen += 1
        remaining = self._pending - 1
        if remaining > 0:
            self._pending = remaining
            return False
        self.taken += 1
        self._pending = self._draw_gap()
        return True

    def reset(self) -> None:
        self._state = _seed_state(self.seed, self.salt)
        self.seen = 0
        self.taken = 0
        self._pending = self._draw_gap()


class Reservoir:
    """Seeded reservoir sampling (Algorithm R) over raw observations.

    Keeps a uniform sample of everything ever offered in a preallocated
    slot list, so exact-percentile queries stay available for streams too
    hot to retain fully.  Deterministic for a given ``(seed, salt)``.
    """

    __slots__ = ("size", "seed", "salt", "_state", "_slots", "offered")

    def __init__(self, size: int = 256, seed: int = 0, salt: int = 0):
        if size <= 0:
            raise ConfigError("reservoir size must be positive")
        self.size = int(size)
        self.seed = int(seed)
        self.salt = int(salt)
        self._state = _seed_state(self.seed, self.salt)
        self._slots: List[float] = [0.0] * self.size
        self.offered = 0

    def offer(self, value: float) -> None:
        i = self.offered
        self.offered = i + 1
        if i < self.size:
            self._slots[i] = value
            return
        self._state = _xorshift64(self._state)
        j = (self._state >> 16) % (i + 1)
        if j < self.size:
            self._slots[j] = value

    def __len__(self) -> int:
        return min(self.offered, self.size)

    def values(self) -> List[float]:
        return self._slots[: len(self)]

    def percentile(self, q: float) -> float:
        """Exact percentile of the *retained* sample (0 when empty)."""
        n = len(self)
        if n == 0:
            return 0.0
        ordered = sorted(self._slots[:n])
        q = min(max(q, 0.0), 1.0)
        rank = min(n - 1, max(0, int(round(q * (n - 1)))))
        return ordered[rank]

    def reset(self) -> None:
        self._state = _seed_state(self.seed, self.salt)
        for i in range(self.size):
            self._slots[i] = 0.0
        self.offered = 0
