"""Telemetry-mode configuration: sampling rates, ring sizes, enable flags.

One :class:`ObsConfig` travels with an :class:`~repro.obs.Observability`
and is introspectable at runtime through the ``sys.obs_config`` system
view, so dashboards and tests can tell *which* telemetry mode produced the
numbers they are looking at (fully recorded vs sampled detail, trace
capture on or off, buffer capacities).

The defaults encode the fast-path contract from ROADMAP item 2: exact
counters always, detailed samples for the high-frequency wait events at a
deterministic 1-in-``wait_sample_every`` rate, everything timestamped off
the shared sim clock so replays sample identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.common.errors import ConfigError

#: Wait events fired per *statement* under OLTP load — the ones whose
#: histogram/detail recording dominates telemetry cost.  Their exact
#: aggregates (count/total/max in ``sys.wait_events``) are never sampled;
#: only the per-observation detail (histogram buckets, sample ring,
#: reservoir) is.
HIGH_FREQUENCY_WAIT_EVENTS: Tuple[str, ...] = (
    "dn.apply", "dn.scan", "dn.commit", "gtm.local",
)


@dataclass
class ObsConfig:
    """Knobs for the telemetry fast path.

    * ``wait_sample_every`` — record full detail for 1 in N observations
      of a high-frequency wait event (1 = unsampled).  Aggregates stay
      exact regardless.
    * ``wait_sample_seed`` — seeds the deterministic samplers; same seed,
      same workload ⇒ byte-identical sample sets.
    * ``wait_detail_capacity`` — slots in the preallocated wait-sample
      ring buffer behind ``sys.wait_samples``.
    * ``wait_reservoir_size`` — per-event reservoir of raw wait values
      (exact percentiles over a bounded uniform sample).
    * ``max_spans`` — slots in the tracer's finished-span ring buffer.
    * ``trace_enabled`` — master switch for span capture; counters and
      wait accounting continue when off.
    """

    wait_sample_every: int = 8
    wait_sample_seed: int = 0
    wait_detail_capacity: int = 4096
    wait_reservoir_size: int = 256
    max_spans: int = 10_000
    trace_enabled: bool = True
    high_frequency_events: Tuple[str, ...] = field(
        default=HIGH_FREQUENCY_WAIT_EVENTS)

    def __post_init__(self) -> None:
        if self.wait_sample_every < 1:
            raise ConfigError("wait_sample_every must be >= 1")
        if self.wait_detail_capacity <= 0:
            raise ConfigError("wait_detail_capacity must be positive")
        if self.wait_reservoir_size <= 0:
            raise ConfigError("wait_reservoir_size must be positive")
        if self.max_spans <= 0:
            raise ConfigError("max_spans must be positive")

    def sample_every_for(self, event: str) -> int:
        """The detail-sampling stride for one wait event."""
        if event in self.high_frequency_events:
            return self.wait_sample_every
        return 1

    def rows(self) -> List[Tuple[str, str]]:
        """``sys.obs_config`` rows: (setting, value) as text."""
        return [
            ("high_frequency_events", ",".join(self.high_frequency_events)),
            ("max_spans", str(self.max_spans)),
            ("trace_enabled", str(self.trace_enabled).lower()),
            ("wait_detail_capacity", str(self.wait_detail_capacity)),
            ("wait_reservoir_size", str(self.wait_reservoir_size)),
            ("wait_sample_every", str(self.wait_sample_every)),
            ("wait_sample_seed", str(self.wait_sample_seed)),
        ]
