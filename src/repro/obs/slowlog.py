"""The slow-query log.

The SQL engine hands every executed query's :class:`~repro.obs.profiler.
QueryProfile` to :meth:`SlowQueryLog.note`; queries whose total simulated
time exceeds the configurable threshold are retained in a bounded ring
buffer together with a per-operator profile summary (operator count, and the
most expensive operator with its self time).  ``sys.slow_queries`` streams
straight out of the buffer, and :class:`~repro.obs.alerts.AlertManager`
watches it for bursts.

Times are simulated microseconds off the shared
:class:`~repro.common.clock.SimClock`, so identical runs log identically.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import QueryProfile

DEFAULT_THRESHOLD_US = 10_000.0


@dataclass(frozen=True)
class SlowQuery:
    """One retained slow query."""

    query_id: int
    sql: str
    start_us: float
    elapsed_us: float
    rows: int
    operators: int
    top_operator: str
    top_operator_us: float
    #: Admission-queue wait (workload management) preceding execution; NOT
    #: part of ``elapsed_us`` and never counted against the threshold — a
    #: query is slow because of its own work, not because the queue was.
    queue_us: float = 0.0
    #: The query's trace, joinable against ``sys.trace_spans`` to drill
    #: from a slow-log line into the stitched span tree (0 = untraced).
    trace_id: int = 0

    def as_row(self) -> Tuple[int, str, float, float, int, int, str, float,
                              float, int]:
        return (self.query_id, self.sql, self.start_us, self.elapsed_us,
                self.rows, self.operators, self.top_operator,
                self.top_operator_us, self.queue_us, self.trace_id)


class SlowQueryLog:
    """Bounded ring buffer of queries over the sim-time threshold."""

    def __init__(self, threshold_us: float = DEFAULT_THRESHOLD_US,
                 max_entries: int = 256,
                 metrics: Optional[MetricsRegistry] = None):
        if threshold_us < 0:
            raise ConfigError("threshold_us cannot be negative")
        if max_entries <= 0:
            raise ConfigError("max_entries must be positive")
        self.threshold_us = float(threshold_us)
        self.metrics = metrics
        self._entries: Deque[SlowQuery] = deque(maxlen=max_entries)
        self._next_id = 1
        self.queries_seen = 0

    def note(self, sql: str, start_us: float, profile: QueryProfile,
             queue_us: float = 0.0, trace_id: int = 0) -> Optional[SlowQuery]:
        """Record the query if it crossed the threshold; return the entry."""
        self.queries_seen += 1
        # Wall-clock view: parallel plan fragments count once (the slowest),
        # not summed — identical to total_time_us for unfragmented plans.
        # Admission-queue wait is deliberately excluded: the threshold is on
        # execution time only.
        elapsed_us = profile.elapsed_time_us
        if elapsed_us < self.threshold_us:
            return None
        top = max(profile.operators, key=lambda op: op.time_us, default=None)
        entry = SlowQuery(
            query_id=self._next_id,
            sql=" ".join(sql.split()),
            start_us=start_us,
            elapsed_us=elapsed_us,
            rows=profile.output_rows,
            operators=len(profile.operators),
            top_operator=top.operator if top is not None else "",
            top_operator_us=top.time_us if top is not None else 0.0,
            queue_us=float(queue_us),
            trace_id=int(trace_id),
        )
        self._next_id += 1
        self._entries.append(entry)
        if self.metrics is not None:
            self.metrics.counter("slowlog.recorded").inc()
            self.metrics.histogram("slowlog.elapsed_us").observe(elapsed_us)
        return entry

    # -- reading -----------------------------------------------------------

    def entries(self) -> List[SlowQuery]:
        return list(self._entries)

    def recorded_since(self, t0_us: float) -> int:
        """How many retained slow queries started at or after ``t0_us``."""
        return sum(1 for e in self._entries if e.start_us >= t0_us)

    def __len__(self) -> int:
        return len(self._entries)

    def reset(self) -> None:
        self._entries.clear()
        self._next_id = 1
        self.queries_seen = 0
