"""Deduplicated, severity-ranked alerts (the Fig. 12 anomaly → action hop).

:class:`AlertManager` is the sink that turns raw findings — anomaly-manager
detections and slow-query bursts — into operator-facing alerts.  Repeated
findings with the same key inside the dedup window fold into one alert with
an incremented ``count`` instead of flooding the log, the way production
alerting pipelines (and Greenplum's ``gp_stat`` alert views) behave.

Alerts are double-published: kept in a bounded in-memory log served as
``sys.alerts``, and — when an information store is bound — recorded as
``alerts.<severity>`` series so detectors and the workload manager can react
to alert pressure itself.  The manager is deliberately duck-typed against
:class:`repro.autonomous.anomaly.Anomaly` (it reads ``detector``, ``metric``,
``severity.value``, ``message``, ``t_us``) to keep ``repro.obs`` free of an
import cycle with the autonomous package.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.obs.metrics import MetricsRegistry

SEVERITIES = ("critical", "warning", "info")
_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


@dataclass
class Alert:
    """One deduplicated alert."""

    alert_id: int
    source: str
    severity: str
    message: str
    first_us: float
    last_us: float
    count: int = 1

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK.get(self.severity, len(SEVERITIES))

    def as_row(self) -> Tuple[int, str, str, str, float, float, int]:
        return (self.alert_id, self.severity, self.source, self.message,
                self.first_us, self.last_us, self.count)


class AlertManager:
    """Fold findings into alerts; rank by severity; publish to the store."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 dedup_window_us: float = 5_000_000.0,
                 max_alerts: int = 256):
        if dedup_window_us < 0:
            raise ConfigError("dedup_window_us cannot be negative")
        if max_alerts <= 0:
            raise ConfigError("max_alerts must be positive")
        self.metrics = metrics
        self.dedup_window_us = float(dedup_window_us)
        self.max_alerts = max_alerts
        #: Optional :class:`repro.autonomous.infostore.InformationStore`;
        #: bound late (by the autonomous manager) to avoid an import cycle.
        self.store = None
        self._alerts: "OrderedDict[str, Alert]" = OrderedDict()
        self._next_id = 1
        self.raised_total = 0
        self.deduplicated_total = 0

    def bind_store(self, store) -> None:
        self.store = store

    # -- raising -----------------------------------------------------------

    def raise_alert(self, source: str, severity: str, message: str,
                    t_us: float, key: Optional[str] = None) -> Alert:
        """Raise (or refresh) an alert; returns the live alert record."""
        if severity not in _SEVERITY_RANK:
            raise ConfigError(f"unknown severity {severity!r}")
        dedup_key = key if key is not None else source
        existing = self._alerts.get(dedup_key)
        if (existing is not None
                and t_us - existing.last_us <= self.dedup_window_us):
            existing.count += 1
            existing.last_us = max(existing.last_us, float(t_us))
            existing.message = message
            if _SEVERITY_RANK[severity] < existing.rank:
                existing.severity = severity      # escalate, never de-escalate
            self.deduplicated_total += 1
            return existing
        alert = Alert(
            alert_id=self._next_id,
            source=source,
            severity=severity,
            message=message,
            first_us=float(t_us),
            last_us=float(t_us),
        )
        self._next_id += 1
        self._alerts[dedup_key] = alert
        while len(self._alerts) > self.max_alerts:
            self._alerts.popitem(last=False)      # evict the oldest key
        self.raised_total += 1
        if self.metrics is not None:
            self.metrics.counter("alerts.raised").inc()
            self.metrics.counter(f"alerts.{alert.severity}").inc()
        if self.store is not None:
            self.store.record(f"alerts.{alert.severity}", t_us, 1.0)
            self.store.record("alerts.active", t_us, float(len(self._alerts)))
        return alert

    def from_anomaly(self, anomaly) -> Alert:
        """Adapt an anomaly-manager finding (duck-typed ``Anomaly``)."""
        severity = getattr(anomaly.severity, "value", str(anomaly.severity))
        return self.raise_alert(
            source=f"anomaly:{anomaly.detector}",
            severity=severity if severity in _SEVERITY_RANK else "warning",
            message=anomaly.message,
            t_us=anomaly.t_us,
            key=f"{anomaly.detector}:{anomaly.metric}",
        )

    def from_fault(self, failpoint: str, action: str, target: str,
                   t_us: float, severity: str = "warning") -> Alert:
        """Raise a failure alert for one injected fault.

        Keyed by (failpoint, target) so a retried fault at the same site
        folds into one alert — the chaos suite asserts exactly one alert
        per distinct injected fault site.
        """
        return self.raise_alert(
            source="faults",
            severity=severity,
            message=f"injected {action} at {failpoint} on {target}",
            t_us=t_us,
            key=f"fault:{failpoint}:{target}",
        )

    def check_slow_queries(self, slowlog, now_us: float,
                           burst_threshold: int = 3,
                           window_us: float = 1_000_000.0) -> Optional[Alert]:
        """Raise a warning when a burst of slow queries lands in the window."""
        recent = slowlog.recorded_since(now_us - window_us)
        if recent < burst_threshold:
            return None
        return self.raise_alert(
            source="slowlog",
            severity="warning",
            message=(f"{recent} slow queries in the last "
                     f"{window_us:.0f}us (threshold {burst_threshold})"),
            t_us=now_us,
            key="slowlog.burst",
        )

    # -- reading -----------------------------------------------------------

    def alerts(self) -> List[Alert]:
        """All live alerts, most severe first, then oldest first."""
        return sorted(self._alerts.values(),
                      key=lambda a: (a.rank, a.first_us, a.alert_id))

    def by_severity(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for alert in self._alerts.values():
            out[alert.severity] = out.get(alert.severity, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self._alerts)

    def reset(self) -> None:
        self._alerts.clear()
        self._next_id = 1
        self.raised_total = 0
        self.deduplicated_total = 0
