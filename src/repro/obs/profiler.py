"""Per-query operator profiling: the engine behind ``EXPLAIN ANALYZE``.

A :class:`QueryProfiler` attaches to a physical operator tree before
execution.  Each operator's ``open`` (first ``execute()`` call) starts a
span whose parent is the operator's plan-tree parent, and its ``close``
(source exhaustion or profile assembly) finishes it, so the span tree
mirrors the plan tree exactly.

Execution is single-process, so there is no wall time worth reporting;
instead each operator is charged a *simulated* self time from a
deterministic cost model — an open cost, a per-batch cost, and a per-row
cost over rows consumed plus rows produced.  Identical plans over identical
data therefore profile identically, which is what lets regression tests
assert on ``EXPLAIN ANALYZE`` output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span, Tracer

if TYPE_CHECKING:  # pragma: no cover - avoids an exec -> optimizer cycle
    from repro.exec.operators import PhysicalOp

#: Simulated per-row execution cost (microseconds) by operator name.
DEFAULT_ROW_COST_US: Dict[str, float] = {
    "Scan": 0.05,
    "TableFunction": 0.05,
    "Values": 0.01,
    "Filter": 0.02,
    "Project": 0.02,
    "HashJoin": 0.10,
    "NestedLoopJoin": 0.20,
    "HashAggregate": 0.10,
    "Sort": 0.15,
    "Limit": 0.01,
    "Distinct": 0.05,
    "UnionAll": 0.01,
    "Exchange": 0.08,
    "Fragment": 0.0,
    "PartialAgg": 0.10,
    "FinalAgg": 0.10,
}
DEFAULT_ROW_COST_FALLBACK_US = 0.10
OPEN_COST_US = 5.0
BATCH_COST_US = 1.0
BATCH_ROWS = 1024


@dataclass
class OperatorProfile:
    """One operator's line in a query profile."""

    operator: str
    depth: int
    est_rows: float
    rows: int
    batches: int
    time_us: float
    #: ``(fragment_group, dn_index)`` for operators running inside a plan
    #: fragment on a data node; ``None`` for coordinator-side operators.
    fragment: Optional[Tuple[int, int]] = None
    #: Rows this operator moved across the simulated network (exchanges and
    #: coordinator-side scans of distributed tables); 0 for local operators.
    net_rows: int = 0
    #: Bytes of operator state spilled to disk when the query's resource
    #: group memory budget overflowed (see ``repro.wlm.memory``).
    spilled_bytes: int = 0

    def as_tuple(self) -> Tuple[str, float, int, int, float, int]:
        indented = ("  " * self.depth) + self.operator
        return (indented, self.est_rows, self.rows, self.batches,
                self.time_us, self.spilled_bytes)


@dataclass
class QueryProfile:
    """Assembled per-operator statistics for one executed query."""

    operators: List[OperatorProfile] = field(default_factory=list)
    #: Simulated time the statement waited in its resource group's admission
    #: queue before execution began (0 when workload management is off or
    #: the query was admitted immediately).  Excluded from elapsed time.
    queue_time_us: float = 0.0

    COLUMNS = ("operator", "est_rows", "rows", "batches", "time_us",
               "spilled_bytes")

    @property
    def total_time_us(self) -> float:
        """Total simulated work across every operator instance (CPU-seconds
        view: parallel fragments all count)."""
        return sum(op.time_us for op in self.operators)

    @property
    def elapsed_time_us(self) -> float:
        """Simulated wall-clock time of the query.

        Fragments in the same group run concurrently on different data
        nodes, so each group contributes the *max* across its per-DN
        instances; coordinator-side operators (no fragment) are serial and
        sum as before.  Without fragments this equals ``total_time_us``.
        """
        serial = 0.0
        per_instance: Dict[Tuple[int, int], float] = {}
        for op in self.operators:
            if op.fragment is None:
                serial += op.time_us
            else:
                per_instance[op.fragment] = (
                    per_instance.get(op.fragment, 0.0) + op.time_us)
        slowest: Dict[int, float] = {}
        for (group, _dn), time_us in per_instance.items():
            slowest[group] = max(slowest.get(group, 0.0), time_us)
        return serial + sum(slowest.values())

    @property
    def output_rows(self) -> int:
        return self.operators[0].rows if self.operators else 0

    @property
    def total_rows(self) -> int:
        return sum(op.rows for op in self.operators)

    @property
    def total_batches(self) -> int:
        return sum(op.batches for op in self.operators)

    @property
    def spilled_bytes(self) -> int:
        return sum(op.spilled_bytes for op in self.operators)

    def rows_table(self) -> List[Tuple[str, float, int, int, float, int]]:
        return [op.as_tuple() for op in self.operators]

    DIST_COLUMNS = ("fragment", "node", "operators", "rows", "net_rows",
                    "elapsed_us", "critical")

    def distributed_rows(self) -> List[Tuple[str, str, int, int, int, float,
                                             bool]]:
        """The per-fragment view behind ``EXPLAIN ANALYZE DISTRIBUTED``.

        One row per execution site: the coordinator first, then each
        fragment instance, grouped by fragment and ordered by data node.
        ``rows`` is what the site's topmost operator produced, ``net_rows``
        what it moved across the wire (exchange traffic lands on the
        coordinator row — the gather runs there).  ``critical`` marks the
        slowest instance of each fragment group: coordinator elapsed plus
        the critical instances is exactly :attr:`elapsed_time_us`.
        """
        cn_ops = [op for op in self.operators if op.fragment is None]
        cn_time = sum(op.time_us for op in cn_ops)
        cn_net = sum(op.net_rows for op in cn_ops)
        rows: List[Tuple[str, str, int, int, int, float, bool]] = [(
            "coordinator", "cn", len(cn_ops),
            self.output_rows, cn_net, cn_time, True,
        )]
        # One entry per (group, dn): summed self time, the instance's top
        # operator row count (first in pre-order), and its operator count.
        per_instance: Dict[Tuple[int, int], List[float]] = {}
        for op in self.operators:
            if op.fragment is None:
                continue
            cell = per_instance.get(op.fragment)
            if cell is None:
                per_instance[op.fragment] = [op.time_us, op.rows,
                                             op.net_rows, 1]
            else:
                cell[0] += op.time_us
                cell[2] += op.net_rows
                cell[3] += 1
        slowest: Dict[int, float] = {}
        for (group, _dn), cell in per_instance.items():
            slowest[group] = max(slowest.get(group, 0.0), cell[0])
        for (group, dn) in sorted(per_instance):
            time_us, top_rows, net, n_ops = per_instance[(group, dn)]
            rows.append((
                f"F{group}", f"dn{dn}", int(n_ops), int(top_rows), int(net),
                time_us, time_us >= slowest[group],
            ))
        return rows

    def distributed_pretty(self) -> str:
        """Human rendering of :meth:`distributed_rows` plus the critical
        path: CN serial time + the slowest instance of every fragment."""
        lines = []
        for frag, node, n_ops, out_rows, net, time_us, critical in \
                self.distributed_rows():
            mark = "  <-- critical" if critical and frag != "coordinator" \
                else ""
            lines.append(
                f"{frag:<12} {node:<5} ops={n_ops:<3} rows={out_rows:<8} "
                f"net_rows={net:<8} elapsed={time_us:.2f}us{mark}")
        lines.append(
            f"Critical path: {self.elapsed_time_us:.2f}us "
            f"(coordinator serial + max across data nodes per fragment); "
            f"total work {self.total_time_us:.2f}us")
        return "\n".join(lines)

    def pretty(self) -> str:
        lines = []
        for op in self.operators:
            pad = "  " * op.depth
            lines.append(
                f"{pad}{op.operator}  (est={op.est_rows:.0f}, rows={op.rows}, "
                f"batches={op.batches}, time={op.time_us:.2f}us)"
            )
        lines.append(f"Total: rows={self.output_rows}, "
                     f"time={self.total_time_us:.2f}us")
        return "\n".join(lines)


class _Entry:
    """Profiler state for one operator instance."""

    __slots__ = ("op", "parent", "depth", "span", "closed", "fragment")

    def __init__(self, op: "PhysicalOp", parent: Optional["PhysicalOp"],
                 depth: int, fragment: Optional[Tuple[int, int]] = None):
        self.op = op
        self.parent = parent
        self.depth = depth
        self.span: Optional[Span] = None
        self.closed = False
        self.fragment = fragment


class QueryProfiler:
    """Attach to a plan, run it, then assemble a :class:`QueryProfile`."""

    def __init__(self, tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 batch_rows: int = BATCH_ROWS,
                 row_costs: Optional[Dict[str, float]] = None,
                 root_span: Optional[Span] = None,
                 node: Optional[str] = None):
        self.tracer = tracer
        self.metrics = metrics
        self.batch_rows = max(1, int(batch_rows))
        self.row_costs = row_costs if row_costs is not None else DEFAULT_ROW_COST_US
        #: Stitching anchor: when set (the SQL engine's per-query span), the
        #: plan's root operator span becomes its child, so the whole operator
        #: tree joins the query's trace instead of rooting one of its own.
        self.root_span = root_span
        #: Where coordinator-side operators run (``"cn0"``); operators inside
        #: a plan fragment are attributed to their fragment's data node.
        self.node = node
        self._entries: Dict[int, _Entry] = {}
        self._order: List[_Entry] = []

    # -- wiring ------------------------------------------------------------

    def attach(self, root: "PhysicalOp") -> None:
        """Register every operator in the tree and hook its row stream."""
        self._walk(root, parent=None, depth=0)

    def _walk(self, op: "PhysicalOp", parent: Optional["PhysicalOp"], depth: int,
              fragment: Optional[Tuple[int, int]] = None) -> None:
        key = getattr(op, "fragment_key", None)
        if key is not None:
            fragment = key
        entry = _Entry(op, parent, depth, fragment)
        self._entries[id(op)] = entry
        self._order.append(entry)
        op.profiler = self
        for child in op.children():
            self._walk(child, op, depth + 1, fragment)

    # -- execution hooks (called from PhysicalOp._count) -------------------

    def wrap(self, op: "PhysicalOp", rows: Iterator[tuple]) -> Iterator[tuple]:
        """Open/next/close instrumentation around one operator's stream."""
        entry = self._entries.get(id(op))
        if entry is None:          # operator from a different query: pass through
            return rows
        self._open(entry)

        def stream() -> Iterator[tuple]:
            try:
                yield from rows
            finally:
                self._close(entry)

        return stream()

    def _open(self, entry: _Entry) -> None:
        if self.tracer is not None and entry.span is None:
            parent_entry = (self._entries.get(id(entry.parent))
                            if entry.parent is not None else None)
            parent_span = (parent_entry.span if parent_entry is not None
                           else self.root_span)
            fragment = entry.fragment
            if fragment is not None:
                node = f"dn{fragment[1]}"
                crossed = (parent_entry is None
                           or parent_entry.fragment != fragment)
            else:
                node = self.node
                crossed = False
            if crossed and parent_span is not None:
                # The CN→DN exchange boundary: only the parent's *wire
                # identity* (trace_id, span_id) crosses, never the span
                # object — the DN side stitches with parent_ctx, exactly
                # like trace propagation headers in a real RPC fabric.
                entry.span = self.tracer.start_span(
                    f"op.{entry.op.name()}",
                    parent_ctx=parent_span.context(), node=node,
                    operator=entry.op.describe(),
                )
            else:
                entry.span = self.tracer.start_span(
                    f"op.{entry.op.name()}", parent=parent_span, node=node,
                    operator=entry.op.describe(),
                )

    def _close(self, entry: _Entry) -> None:
        if entry.closed:
            return
        entry.closed = True
        if entry.span is not None and self.tracer is not None:
            time_us = self._self_time_us(entry)
            entry.span.set_attribute("rows", entry.op.actual_rows)
            entry.span.set_attribute("time_us", time_us)
            self.tracer.end_span(entry.span,
                                 end_us=entry.span.start_us + time_us)

    # -- cost model --------------------------------------------------------

    def _self_time_us(self, entry: _Entry) -> float:
        rows_out = entry.op.actual_rows
        rows_in = sum(c.actual_rows for c in entry.op.children())
        batches = self._batches(rows_out)
        # Spill I/O is real per-operator time regardless of the CPU formula.
        spill_us = float(getattr(entry.op, "spill_time_us", 0.0))
        custom = getattr(entry.op, "sim_self_time_us", None)
        if custom is not None:
            # Operators with a physical cost of their own (exchanges charge
            # the network model) override the generic CPU formula.
            time_us = custom(rows_in, rows_out, batches)
            if time_us is not None:
                return float(time_us) + spill_us
        per_row = self.row_costs.get(entry.op.name(),
                                     DEFAULT_ROW_COST_FALLBACK_US)
        return (OPEN_COST_US + BATCH_COST_US * batches
                + per_row * (rows_in + rows_out) + spill_us)

    def _batches(self, rows: int) -> int:
        return max(1, math.ceil(rows / self.batch_rows)) if rows else 0

    # -- assembly ----------------------------------------------------------

    def profile(self) -> QueryProfile:
        """Build the profile; closes any spans a short-circuiting parent
        (e.g. ``Limit``) left open."""
        for entry in self._order:
            self._close(entry)
        profile = QueryProfile(operators=[
            OperatorProfile(
                operator=entry.op.describe(),
                depth=entry.depth,
                est_rows=entry.op.estimated_rows,
                rows=entry.op.actual_rows,
                batches=self._batches(entry.op.actual_rows),
                time_us=self._self_time_us(entry),
                fragment=entry.fragment,
                net_rows=int(getattr(entry.op, "network_rows", 0)),
                spilled_bytes=int(getattr(entry.op, "spilled_bytes", 0)),
            )
            for entry in self._order
        ])
        if self.metrics is not None:
            self.metrics.counter("exec.rows").inc(profile.output_rows)
            self.metrics.counter("exec.operator_rows").inc(profile.total_rows)
            self.metrics.counter("exec.batches").inc(profile.total_batches)
        return profile
