"""`repro.obs` — the unified observability subsystem.

The telemetry spine of the engine (paper Sec. IV-A): metrics, traces and
query profiles, all timestamped off a shared
:class:`~repro.common.clock.SimClock` so identical runs produce identical
telemetry, and an exporter that feeds the autonomous loop's information
store (Fig. 12).

* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms.
* :mod:`repro.obs.tracing` — hierarchical spans with attributes.
* :mod:`repro.obs.profiler` — per-operator query profiles (``EXPLAIN ANALYZE``).
* :mod:`repro.obs.export` — registry snapshots → ``InformationStore``.
* :mod:`repro.obs.waits` — wait-event accounting + live activity registry.
* :mod:`repro.obs.slowlog` — slow-query ring buffer with profile summaries.
* :mod:`repro.obs.alerts` — deduplicated, severity-ranked alerts.
* :mod:`repro.obs.syscat` — the ``sys.*`` SQL-queryable system views.

:class:`Observability` bundles one clock + registry + tracer + wait/activity
recorders + slow-query log + alert manager, and is hung off
:class:`~repro.cluster.mpp.MppCluster` as ``cluster.obs`` so every layer
(GTM, data nodes, transactions, executor, SQL engine) records into the same
namespace — and so ``SELECT * FROM sys.wait_events`` reads live state.
"""

from __future__ import annotations

from typing import Optional

from repro.common.clock import SimClock
from repro.obs.alerts import Alert, AlertManager, SEVERITIES
from repro.obs.config import HIGH_FREQUENCY_WAIT_EVENTS, ObsConfig
from repro.obs.export import InfoStoreExporter
from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profiler import OperatorProfile, QueryProfile, QueryProfiler
from repro.obs.ring import DetSampler, Reservoir, RingBuffer
from repro.obs.slowlog import DEFAULT_THRESHOLD_US, SlowQuery, SlowQueryLog
from repro.obs.tracing import Span, TraceContext, Tracer
from repro.obs.waits import (
    ALL_WAIT_EVENTS,
    ActivityEntry,
    ActivityRegistry,
    WaitEventRecorder,
    WaitStats,
)


class Observability:
    """One clock, one metric namespace, one tracer — shared by a cluster."""

    def __init__(self, clock: Optional[SimClock] = None,
                 max_spans: Optional[int] = None,
                 slow_query_threshold_us: float = DEFAULT_THRESHOLD_US,
                 config: Optional[ObsConfig] = None):
        self.config = config if config is not None else ObsConfig()
        if max_spans is not None:
            # Legacy knob; fold it into the config so sys.obs_config tells
            # the truth about the live buffer size.
            self.config.max_spans = max_spans
        self.clock = clock if clock is not None else SimClock()
        self.metrics = MetricsRegistry(self.clock)
        self.tracer = Tracer(self.clock, max_spans=self.config.max_spans)
        self.waits = WaitEventRecorder(self.metrics, config=self.config,
                                       clock=self.clock)
        self.activity = ActivityRegistry(self.clock)
        self.slowlog = SlowQueryLog(threshold_us=slow_query_threshold_us,
                                    metrics=self.metrics)
        self.alerts = AlertManager(self.metrics)
        #: The two histograms every transaction touches, resolved once so
        #: the commit path skips the registry probe.
        self.hist_txn_latency = self.metrics.histogram("txn.latency_us")
        self.hist_gtm_snapshot = self.metrics.histogram("gtm.snapshot_us")
        #: Optional :class:`repro.faults.FaultInjector`; bound late (by
        #: ``FaultInjector.bind``) so ``sys.faults`` can serve its history
        #: without ``repro.obs`` importing ``repro.faults``.
        self.faults = None
        #: Optional :class:`repro.wlm.WlmGovernor`, bound late for the same
        #: reason; serves ``sys.wlm_groups`` / ``sys.wlm_queue``.
        self.wlm = None
        #: Optional :class:`repro.htap.HtapManager`, bound late for the
        #: same reason; serves ``sys.htap_tables`` / ``sys.htap_merges``.
        self.htap = None
        #: Optional :class:`repro.cluster.shardmap.ShardMap` (bound by the
        #: cluster at construction); serves ``sys.shard_map``.
        self.shard_map = None
        #: Optional :class:`repro.cluster.rebalance.RebalanceCoordinator`,
        #: bound late like the others; serves ``sys.rebalance``.
        self.rebalance = None
        #: Optional :class:`repro.geo.GeoCluster`, bound late (per region)
        #: like the others; serves ``sys.geo_regions`` / ``sys.geo_epochs``
        #: / ``sys.geo_shard_map``.
        self.geo = None

    def bind_faults(self, injector) -> None:
        self.faults = injector

    def bind_wlm(self, governor) -> None:
        self.wlm = governor

    def bind_htap(self, manager) -> None:
        self.htap = manager

    def bind_shard_map(self, shard_map) -> None:
        self.shard_map = shard_map

    def bind_rebalance(self, coordinator) -> None:
        self.rebalance = coordinator

    def bind_geo(self, geo) -> None:
        self.geo = geo

    def advance_to(self, t_us: float) -> None:
        """Sync the shared clock to a session's simulated-time cursor.

        Cursors only move forward, and ``SimClock.advance_to`` ignores
        older times, so interleaved clients keep the clock monotone.
        """
        self.clock.advance_to(t_us)

    def reset(self) -> None:
        """Zero every recorder *and* the clock.

        After a reset, a repeat of the same workload on the same cluster
        produces identical telemetry — metric snapshots, span timings and
        wait-event accounting all restart from simulated t=0.
        """
        self.metrics.reset()
        self.tracer.reset()
        self.waits.reset()
        self.activity.reset()
        self.slowlog.reset()
        self.alerts.reset()
        if self.faults is not None:
            self.faults.reset_history()
        if self.wlm is not None:
            self.wlm.reset_history()
        if self.htap is not None:
            self.htap.reset_history()
        if self.rebalance is not None:
            self.rebalance.reset_history()
        self.clock.reset()


__all__ = [
    "ALL_WAIT_EVENTS",
    "ActivityEntry",
    "ActivityRegistry",
    "Alert",
    "AlertManager",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_THRESHOLD_US",
    "DetSampler",
    "Gauge",
    "HIGH_FREQUENCY_WAIT_EVENTS",
    "Histogram",
    "InfoStoreExporter",
    "MetricsRegistry",
    "ObsConfig",
    "Observability",
    "OperatorProfile",
    "QueryProfile",
    "QueryProfiler",
    "Reservoir",
    "RingBuffer",
    "SEVERITIES",
    "SlowQuery",
    "SlowQueryLog",
    "Span",
    "TraceContext",
    "Tracer",
    "WaitEventRecorder",
    "WaitStats",
]
