"""`repro.obs` — the unified observability subsystem.

The telemetry spine of the engine (paper Sec. IV-A): metrics, traces and
query profiles, all timestamped off a shared
:class:`~repro.common.clock.SimClock` so identical runs produce identical
telemetry, and an exporter that feeds the autonomous loop's information
store (Fig. 12).

* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms.
* :mod:`repro.obs.tracing` — hierarchical spans with attributes.
* :mod:`repro.obs.profiler` — per-operator query profiles (``EXPLAIN ANALYZE``).
* :mod:`repro.obs.export` — registry snapshots → ``InformationStore``.

:class:`Observability` bundles one clock + registry + tracer, and is hung
off :class:`~repro.cluster.mpp.MppCluster` as ``cluster.obs`` so every layer
(GTM, data nodes, transactions, executor, SQL engine) records into the same
namespace.
"""

from __future__ import annotations

from typing import Optional

from repro.common.clock import SimClock
from repro.obs.export import InfoStoreExporter
from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profiler import OperatorProfile, QueryProfile, QueryProfiler
from repro.obs.tracing import Span, Tracer


class Observability:
    """One clock, one metric namespace, one tracer — shared by a cluster."""

    def __init__(self, clock: Optional[SimClock] = None, max_spans: int = 10_000):
        self.clock = clock if clock is not None else SimClock()
        self.metrics = MetricsRegistry(self.clock)
        self.tracer = Tracer(self.clock, max_spans=max_spans)

    def advance_to(self, t_us: float) -> None:
        """Sync the shared clock to a session's simulated-time cursor.

        Cursors only move forward, and ``SimClock.advance_to`` ignores
        older times, so interleaved clients keep the clock monotone.
        """
        self.clock.advance_to(t_us)

    def reset(self) -> None:
        self.metrics.reset()
        self.tracer.reset()


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "InfoStoreExporter",
    "MetricsRegistry",
    "Observability",
    "OperatorProfile",
    "QueryProfile",
    "QueryProfiler",
    "Span",
    "Tracer",
]
