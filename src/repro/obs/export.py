"""Exporter: registry snapshots → the autonomous information store.

Closes the Fig. 12 loop: the engine's live counters, gauges and histogram
summaries become timestamped series in
:class:`~repro.autonomous.infostore.InformationStore`, where the anomaly and
workload managers already know how to read them.  Flushing is driven by
simulated time on a configurable interval, so exports line up with the
workload's own clock rather than the OS scheduler.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

from repro.common.errors import ConfigError
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle: autonomous -> cluster -> obs
    from repro.autonomous.infostore import InformationStore


class InfoStoreExporter:
    """Periodically flush a :class:`MetricsRegistry` into an info store."""

    def __init__(self, registry: MetricsRegistry, store: "InformationStore",
                 interval_us: float = 1_000_000.0):
        if interval_us <= 0:
            raise ConfigError("interval_us must be positive")
        self.registry = registry
        self.store = store
        self.interval_us = float(interval_us)
        self._last_flush_us: Optional[float] = None
        self.flushes = 0

    def flush(self, now_us: Optional[float] = None) -> int:
        """Export every metric as one sample; returns the sample count.

        ``now_us`` overrides the registry clock for callers (the OLTP
        driver) that carry their own simulated-time cursor.
        """
        t_us, values = self.registry.snapshot()
        if now_us is not None:
            t_us = float(now_us)
        for name, value in values.items():
            self.store.record(name, t_us, value)
        # Snap the cadence anchor to the interval grid.  Anchoring at the
        # raw flush time lets jitter accumulate: flushes at 0, 1300, 2600…
        # drift a little later every interval and eventually skip slots.
        self._last_flush_us = math.floor(t_us / self.interval_us) * self.interval_us
        self.flushes += 1
        return len(values)

    def maybe_flush(self, now_us: float) -> int:
        """Flush if at least one interval elapsed since the last flush."""
        if (self._last_flush_us is not None
                and now_us - self._last_flush_us < self.interval_us):
            return 0
        return self.flush(now_us)
