"""Metric primitives: counters, gauges and fixed-bucket histograms.

The :class:`MetricsRegistry` is the engine's single metric namespace.  Every
timestamp it hands out comes from a :class:`~repro.common.clock.SimClock` —
never the OS clock — so two identical runs produce byte-identical metric
streams, which is what lets the autonomous loop's detectors be tested
deterministically.

Naming follows the dotted convention the information store already uses
(``txn.commit``, ``gtm.snapshot_us``, ``exec.rows``); histograms flatten
into ``<name>.count`` / ``<name>.sum`` / ``<name>.avg`` / ``<name>.p95``
entries when snapshotted, so an exporter needs no type dispatch.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.clock import SimClock
from repro.common.errors import ConfigError

#: Default histogram bucket upper bounds, in the unit of the observed value
#: (microseconds for latency-style metrics).  Roughly exponential, matching
#: the spread between an L1-resident operation and a cross-shard commit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1_000.0, 2_500.0, 5_000.0, 10_000.0, 25_000.0, 50_000.0,
    100_000.0, 250_000.0, 500_000.0, 1_000_000.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigError(f"counter {self.name!r} cannot decrease")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self._value = 0.0


class Gauge:
    """A value that can move in either direction (e.g. active transactions)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self._value = 0.0


class Histogram:
    """Fixed-bucket histogram with cumulative-style percentile estimates.

    Buckets are upper bounds; an observation lands in the first bucket whose
    bound is >= the value, or in the implicit overflow bucket.  Percentiles
    are estimated as the upper bound of the bucket containing the requested
    rank — coarse, but deterministic and allocation-free.
    """

    __slots__ = ("name", "bounds", "counts", "overflow", "_sum", "_count",
                 "_min", "_max")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        if not buckets:
            raise ConfigError(f"histogram {self.__class__.__name__} needs buckets")
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(bounds):
            raise ConfigError(f"histogram {name!r} buckets must be ascending")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * len(bounds)
        self.overflow = 0
        self._sum = 0.0
        self._count = 0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self._sum += value
        self._count += 1
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        # Binary search beats the linear walk for the 16-bucket default and
        # is branch-predictable for skewed latency streams.
        i = bisect_left(self.bounds, value)
        if i < len(self.bounds):
            self.counts[i] += 1
        else:
            self.overflow += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def avg(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def minimum(self) -> Optional[float]:
        return self._min

    @property
    def maximum(self) -> Optional[float]:
        return self._max

    def percentile(self, q: float) -> float:
        """Upper bound of the bucket holding the q-quantile observation."""
        if self._count == 0:
            return 0.0
        q = min(max(q, 0.0), 1.0)
        rank = q * self._count
        seen = 0
        for i, bound in enumerate(self.bounds):
            seen += self.counts[i]
            if seen >= rank:
                return bound
        # In the overflow bucket: the best deterministic answer is the max.
        return self._max if self._max is not None else self.bounds[-1]

    def reset(self) -> None:
        self.counts = [0] * len(self.bounds)
        self.overflow = 0
        self._sum = 0.0
        self._count = 0
        self._min = None
        self._max = None


class MetricsRegistry:
    """Get-or-create namespace of counters, gauges and histograms."""

    def __init__(self, clock: Optional[SimClock] = None):
        self.clock = clock if clock is not None else SimClock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._collectors: List = []

    # -- scrape-time collection --------------------------------------------
    #
    # Hot instrumentation sites (data-node tuple counters) keep plain
    # integer pendings on their own objects and register a collector here;
    # the pendings are folded into the real Counter objects only when the
    # registry is actually read.  Per-tuple cost drops from a counter-object
    # update to one plain attribute increment, and every read path still
    # sees exact totals because it collects first.

    def add_collector(self, fn) -> None:
        """Register a zero-arg callable that flushes pending deltas in."""
        self._collectors.append(fn)

    def collect(self) -> None:
        for fn in self._collectors:
            fn()

    # -- registration ------------------------------------------------------
    #
    # Get-or-create is the hot path: every instrumentation site resolves its
    # metric by name.  The fast path is a single dict probe; the type check
    # and the metric construction only run on first registration.  (The old
    # ``setdefault(name, Histogram(...))`` built — and threw away — a fresh
    # histogram on *every* call, which alone accounted for a large slice of
    # the measured 1.86x telemetry overhead.)

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._check_free(name, self._counters)
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_free(name, self._gauges)
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._check_free(name, self._histograms)
            metric = self._histograms[name] = Histogram(name, buckets)
        return metric

    def _check_free(self, name: str, own: dict) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not own and name in family:
                raise ConfigError(
                    f"metric {name!r} already registered with a different type")

    # -- reading -----------------------------------------------------------

    def names(self) -> List[str]:
        return sorted([*self._counters, *self._gauges, *self._histograms])

    def kind_of(self, name: str) -> Optional[str]:
        """'counter' | 'gauge' | 'histogram' for a metric name.

        Also resolves flattened histogram names (``gtm.snapshot_us.p95``)
        back to their histogram, so ``sys.metrics`` can label every row of
        a :meth:`snapshot`.
        """
        if name in self._counters:
            return "counter"
        if name in self._gauges:
            return "gauge"
        if name in self._histograms:
            return "histogram"
        base, dot, suffix = name.rpartition(".")
        if dot and suffix in ("count", "sum", "avg", "p50", "p95", "p99") \
                and base in self._histograms:
            return "histogram"
        return None

    def value(self, name: str) -> Optional[float]:
        """Counter/gauge value, or a histogram's observation count."""
        if self._collectors:
            self.collect()
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        if name in self._histograms:
            return float(self._histograms[name].count)
        return None

    def snapshot(self) -> Tuple[float, Dict[str, float]]:
        """Flatten every metric into ``name -> value`` at the clock's now.

        Histograms expand into ``.count`` / ``.sum`` / ``.avg`` / ``.p50`` /
        ``.p95`` / ``.p99`` entries so downstream consumers (the information
        store, reports) treat everything as scalar series.
        """
        if self._collectors:
            self.collect()
        flat: Dict[str, float] = {}
        for name, counter in self._counters.items():
            flat[name] = counter.value
        for name, gauge in self._gauges.items():
            flat[name] = gauge.value
        for name, hist in self._histograms.items():
            flat[f"{name}.count"] = float(hist.count)
            flat[f"{name}.sum"] = hist.sum
            flat[f"{name}.avg"] = hist.avg
            flat[f"{name}.p50"] = hist.percentile(0.50)
            flat[f"{name}.p95"] = hist.percentile(0.95)
            flat[f"{name}.p99"] = hist.percentile(0.99)
        return self.clock.now_us, flat

    def reset(self) -> None:
        # Drain pendings first so deltas noted before the reset cannot leak
        # into the zeroed counters afterwards.
        if self._collectors:
            self.collect()
        for family in (self._counters, self._gauges, self._histograms):
            for metric in family.values():
                metric.reset()
