"""Deterministic, seed-driven fault injection.

Fault-Tolerant Partial Replication (Sutra & Shapiro) and GeoGauss (PAPERS.md)
both validate replicated commit protocols primarily by *injecting* partial
failures; this module is that harness for the reproduction.  The paper's HA
claim ("high availability through smart replication", Sec. I) and GTM-lite's
correctness argument (Sec. II-A) are really claims about what survives a
crash inside the 2PC window — so the failpoints below sit exactly on that
window's edges.

A :class:`FaultInjector` holds *rules* armed against named *failpoints*.
Crash-relevant hot paths call :meth:`FaultInjector.fire` with a context
(``dn=…, gxid=…``); when an armed rule matches, the injector records the
fault, raises a deduplicated alert, and applies the rule's action:

* ``timeout``            — raise :class:`InjectedTimeout`; the caller's retry
  loop treats it as an RPC that never returned (also models a lost GTM
  commit-log write when armed at ``FP_GTM_COMMIT``).
* ``crash_dn``           — mark the data node crashed (every later RPC to it
  times out until failover replaces it) and raise :class:`InjectedTimeout`.
* ``crash_coordinator``  — raise :class:`CoordinatorCrash`; the driver must
  abandon the :class:`~repro.cluster.txn.CommitSteps` object mid-sequence,
  leaving exactly the in-doubt state ``recovery.resolve_in_doubt`` exists for.
* ``drop``               — the message is silently lost: the caller skips the
  delivery but proceeds as if it succeeded (dropped commit confirmations are
  the paper's Anomaly-1 window held open until recovery).
* ``partition``          — cut the DN↔standby replication link through
  :class:`repro.net.fabric.Fabric` (``HaManager.partition_standby``).
* ``delay``              — add ``delay_us`` of simulated latency at the site.

Injection is deterministic: rule matching consumes a ``random.Random(seed)``
only for probabilistic rules, so a seed fully determines a fault schedule.
An injector with no armed rules is telemetry-inert — a bound-but-disarmed
injector produces byte-identical telemetry to no injector at all (asserted
by ``benchmarks/bench_fault_overhead.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigError, ReproError

# -- failpoint vocabulary -----------------------------------------------------

#: DN crash / RPC loss *before* the prepare record is durable.
FP_PREPARE_BEFORE = "2pc.prepare.before"
#: DN crash *after* prepare is durable (and staged on the standby) but
#: before the ack reaches the coordinator.
FP_PREPARE_AFTER = "2pc.prepare.after"
#: Coordinator death between ``prepare_all`` and ``commit_at_gtm``.
FP_COORD_AFTER_PREPARE = "coord.after_prepare"
#: GTM commit-log write loss / GTM request timeout.
FP_GTM_COMMIT = "gtm.commit"
#: Coordinator death between ``commit_at_gtm`` and the first confirmation —
#: the paper's Anomaly-1 window (Fig. 2), held open permanently.
FP_COORD_AFTER_GTM_COMMIT = "coord.after_gtm_commit"
#: Commit confirmation lost, delayed, or addressed to a crashed node.
FP_CONFIRM_BEFORE = "2pc.confirm.before"
#: DN crash after the local commit record, before the ack.
FP_CONFIRM_AFTER = "2pc.confirm.after"
#: Coordinator death after confirming some but not all participants.
FP_COORD_BETWEEN_CONFIRMS = "coord.between_confirms"
#: DN→standby shipping of a committed transaction's redo.
FP_REPLICATE = "ha.replicate"
#: DN→standby staging of a prepared transaction's redo.
FP_PREPARE_SHIP = "ha.prepare_ship"
#: Workload-manager admission, before a slot or ticket exists — a crash
#: here must leak nothing (mirrors repro.wlm.governor.FP_WLM_ADMIT).
FP_WLM_ADMIT = "wlm.admit"
#: Operator spill to disk mid-query (mirrors governor.FP_WLM_SPILL); a
#: crash here unwinds through the engine's cancellation cleanup path.
FP_WLM_SPILL = "wlm.spill"
#: One table's HTAP delta merge, after the cutoff is chosen but before the
#: new frozen chunk set is published — a crash here must lose nothing.
FP_HTAP_MERGE = "htap.merge"
#: The HTAP merge daemon's per-node tick; a timeout here stalls merges on
#: that node, letting tests bound freshness-lag behavior under daemon loss.
FP_HTAP_FRESHNESS = "htap.freshness"
#: One table's slot snapshot-copy during an online rebalance, fired before
#: the copied rows commit on the move target — a coordinator crash here
#: leaves a partial (scan-excluded) copy that recovery must roll back.
FP_REBALANCE_COPY = "rebalance.copy"
#: The atomic slot-owner flip at the end of a move's catch-up window — a
#: coordinator crash just before it leaves the double-write window open,
#: and recovery must roll the move forward (copy is already complete).
FP_REBALANCE_FLIP = "rebalance.flip"
#: One epoch batch leaving a region for one peer (fired per (dst, epoch)).
#: A timeout/drop defers the delivery to the durable resend queue; a
#: coordinator crash takes down the *sending* region's epoch coordinator.
FP_GEO_SHIP = "geo.ship"
#: A region about to certify an epoch it holds all batches for; a timeout
#: retries the certification on a later step (the decision is pure, so a
#: delayed certification still reaches the identical verdict).
FP_GEO_CERTIFY = "geo.certify"
#: A region about to apply a certified epoch's hosted writes.
FP_GEO_APPLY = "geo.apply"

ALL_FAILPOINTS = (
    FP_PREPARE_BEFORE, FP_PREPARE_AFTER, FP_COORD_AFTER_PREPARE,
    FP_GTM_COMMIT, FP_COORD_AFTER_GTM_COMMIT,
    FP_CONFIRM_BEFORE, FP_CONFIRM_AFTER, FP_COORD_BETWEEN_CONFIRMS,
    FP_REPLICATE, FP_PREPARE_SHIP,
    FP_WLM_ADMIT, FP_WLM_SPILL,
    FP_HTAP_MERGE, FP_HTAP_FRESHNESS,
    FP_REBALANCE_COPY, FP_REBALANCE_FLIP,
    FP_GEO_SHIP, FP_GEO_CERTIFY, FP_GEO_APPLY,
)

# -- actions ------------------------------------------------------------------

ACT_TIMEOUT = "timeout"
ACT_CRASH_DN = "crash_dn"
ACT_CRASH_COORDINATOR = "crash_coordinator"
ACT_DROP = "drop"
ACT_PARTITION = "partition"
ACT_DELAY = "delay"

ALL_ACTIONS = (ACT_TIMEOUT, ACT_CRASH_DN, ACT_CRASH_COORDINATOR,
               ACT_DROP, ACT_PARTITION, ACT_DELAY)

#: Actions that take a node down (alert severity ``critical``).
_CRASH_ACTIONS = (ACT_CRASH_DN, ACT_CRASH_COORDINATOR)


class FaultError(ReproError):
    """Base class for injected-failure signals."""


class InjectedTimeout(FaultError):
    """An RPC that never returned (lost request, lost reply, or dead peer)."""

    def __init__(self, message: str, dn_index: Optional[int] = None):
        super().__init__(message)
        self.dn_index = dn_index


class CoordinatorCrash(FaultError):
    """The coordinator died mid-sequence.

    Whoever drives the commit must *abandon* the transaction — no abort, no
    cleanup — exactly as a real CN process death would.  Recovery
    (:func:`repro.cluster.recovery.resolve_in_doubt`) later resolves whatever
    was left prepared.
    """


@dataclass
class FaultRule:
    """One armed fault: where, what, how often."""

    failpoint: str
    action: str
    times: int = 1                 # firings remaining; -1 = unlimited
    probability: float = 1.0       # gated by the injector's seeded RNG
    match: Optional[Dict[str, object]] = None   # context filter, e.g. {"dn": 1}
    delay_us: float = 0.0          # extra latency for ACT_DELAY

    def matches(self, failpoint: str, ctx: Dict[str, object]) -> bool:
        if self.failpoint != failpoint or self.times == 0:
            return False
        if self.match:
            for key, value in self.match.items():
                if ctx.get(key) != value:
                    return False
        return True


@dataclass(frozen=True)
class InjectedFault:
    """One fault that actually fired (a ``sys.faults`` row)."""

    fault_id: int
    failpoint: str
    action: str
    target: str
    gxid: Optional[int]
    t_us: float

    def as_row(self) -> Tuple[int, str, str, str, Optional[int], float]:
        return (self.fault_id, self.failpoint, self.action, self.target,
                self.gxid, self.t_us)


@dataclass
class FireOutcome:
    """Non-exceptional directives a failpoint site must honor."""

    dropped: bool = False
    delay_us: float = 0.0


_NO_OUTCOME = FireOutcome()


class FaultInjector:
    """Seed-driven rule engine threaded through the crash-relevant paths."""

    def __init__(self, seed: int = 0, enabled: bool = True):
        self.seed = seed
        self.rng = random.Random(seed)
        self.enabled = enabled
        self.rules: List[FaultRule] = []
        self.history: List[InjectedFault] = []
        self.cluster = None
        self._next_id = 1

    # -- wiring ------------------------------------------------------------

    def bind(self, cluster) -> "FaultInjector":
        """Attach to a cluster: hot paths consult ``cluster.faults``."""
        self.cluster = cluster
        cluster.faults = self
        obs = getattr(cluster, "obs", None)
        if obs is not None:
            obs.bind_faults(self)
        return self

    # -- arming ------------------------------------------------------------

    def arm(self, failpoint: str, action: str, times: int = 1,
            probability: float = 1.0, match: Optional[Dict[str, object]] = None,
            delay_us: float = 0.0) -> FaultRule:
        if failpoint not in ALL_FAILPOINTS:
            raise ConfigError(f"unknown failpoint {failpoint!r}")
        if action not in ALL_ACTIONS:
            raise ConfigError(f"unknown fault action {action!r}")
        rule = FaultRule(failpoint, action, times=times,
                         probability=probability, match=match,
                         delay_us=delay_us)
        self.rules.append(rule)
        return rule

    def disarm(self, rule: FaultRule) -> None:
        if rule in self.rules:
            self.rules.remove(rule)

    def disarm_all(self) -> None:
        self.rules.clear()

    # -- firing ------------------------------------------------------------

    def fire(self, failpoint: str, **ctx) -> FireOutcome:
        """Evaluate armed rules at a failpoint; apply the first that matches.

        Raises :class:`InjectedTimeout` / :class:`CoordinatorCrash` for the
        exceptional actions; returns directives (drop, delay) otherwise.
        """
        if not self.enabled or not self.rules:
            return _NO_OUTCOME
        outcome = FireOutcome()
        for rule in self.rules:
            if not rule.matches(failpoint, ctx):
                continue
            if rule.probability < 1.0 and self.rng.random() >= rule.probability:
                continue
            if rule.times > 0:
                rule.times -= 1
            fault = self._record(rule, failpoint, ctx)
            if rule.action == ACT_TIMEOUT:
                raise InjectedTimeout(
                    f"injected timeout at {failpoint} ({fault.target})",
                    dn_index=ctx.get("dn"))
            if rule.action == ACT_CRASH_DN:
                dn_index = ctx.get("dn")
                if dn_index is not None:
                    self.crash_dn(dn_index)
                raise InjectedTimeout(
                    f"injected crash of {fault.target} at {failpoint}",
                    dn_index=dn_index)
            if rule.action == ACT_CRASH_COORDINATOR:
                raise CoordinatorCrash(
                    f"injected coordinator crash at {failpoint}"
                    + (f" (gxid {ctx['gxid']})" if "gxid" in ctx else ""))
            if rule.action == ACT_DROP:
                outcome.dropped = True
            elif rule.action == ACT_PARTITION:
                self._partition(ctx.get("dn"))
            elif rule.action == ACT_DELAY:
                outcome.delay_us += rule.delay_us
        return outcome

    # -- node-level faults ---------------------------------------------------

    def crash_dn(self, dn_index: int) -> None:
        """Kill a data node: every later RPC to it times out until failover."""
        cluster = self._require_cluster()
        cluster.dns[dn_index].crashed = True

    def is_crashed(self, dn_index: int) -> bool:
        if self.cluster is None:
            return False
        return bool(getattr(self.cluster.dns[dn_index], "crashed", False))

    def crashed_dns(self) -> List[int]:
        if self.cluster is None:
            return []
        return [i for i, dn in enumerate(self.cluster.dns)
                if getattr(dn, "crashed", False)]

    def _partition(self, dn_index: Optional[int]) -> None:
        cluster = self._require_cluster()
        ha = getattr(cluster, "ha", None)
        if ha is None:
            raise ConfigError("partition action requires an HaManager")
        if dn_index is None:
            raise ConfigError("partition action requires a dn in the context")
        ha.partition_standby(dn_index)

    def _require_cluster(self):
        if self.cluster is None:
            raise ConfigError("fault action requires bind(cluster) first")
        return self.cluster

    # -- recording ----------------------------------------------------------

    def _record(self, rule: FaultRule, failpoint: str,
                ctx: Dict[str, object]) -> InjectedFault:
        if "dn" in ctx and ctx["dn"] is not None:
            target = f"dn{ctx['dn']}"
        elif "region" in ctx and ctx["region"] is not None:
            target = f"r{ctx['region']}"
        elif failpoint.startswith("gtm."):
            target = "gtm"
        else:
            target = "coordinator"
        obs = getattr(self.cluster, "obs", None) if self.cluster else None
        t_us = obs.clock.now_us if obs is not None else 0.0
        fault = InjectedFault(
            fault_id=self._next_id,
            failpoint=failpoint,
            action=rule.action,
            target=target,
            gxid=ctx.get("gxid"),
            t_us=t_us,
        )
        self._next_id += 1
        self.history.append(fault)
        if obs is not None:
            obs.metrics.counter("faults.injected").inc()
            obs.metrics.counter(f"faults.action.{rule.action}").inc()
            severity = "critical" if rule.action in _CRASH_ACTIONS else "warning"
            obs.alerts.from_fault(failpoint, rule.action, target, t_us,
                                  severity=severity)
        return fault

    # -- reading -------------------------------------------------------------

    def rows(self) -> List[Tuple[int, str, str, str, Optional[int], float]]:
        """``sys.faults`` rows: (fault_id, failpoint, action, target, gxid, t_us)."""
        return [fault.as_row() for fault in self.history]

    @property
    def injected_count(self) -> int:
        return len(self.history)

    def reset_history(self) -> None:
        """Forget past injections (telemetry reset); armed rules survive."""
        self.history.clear()
        self._next_id = 1
