"""Randomized fault-schedule generation and post-chaos recovery.

The chaos property suite (``tests/property/test_chaos_2pc.py``) feeds a
seeded :class:`random.Random` to :func:`arm_random_faults` to draw a fault
schedule — which failpoints fire, with what action, against which node —
then runs a workload, then calls :func:`recover_cluster` and asserts the
three invariants: no GTM-committed write lost, no residual PREPARED state,
and no snapshot ever observing a partially-committed global transaction.

All ``repro.cluster`` imports are deferred into function bodies:
``cluster.txn`` imports :mod:`repro.faults.injector`, so importing cluster
modules at the top here would complete a cycle.
"""

from __future__ import annotations

import random
from typing import List

from repro.faults.injector import (
    ACT_CRASH_COORDINATOR,
    ACT_CRASH_DN,
    ACT_DELAY,
    ACT_DROP,
    ACT_PARTITION,
    ACT_TIMEOUT,
    FP_CONFIRM_AFTER,
    FP_CONFIRM_BEFORE,
    FP_COORD_AFTER_GTM_COMMIT,
    FP_COORD_AFTER_PREPARE,
    FP_COORD_BETWEEN_CONFIRMS,
    FP_GEO_APPLY,
    FP_GEO_CERTIFY,
    FP_GEO_SHIP,
    FP_GTM_COMMIT,
    FP_HTAP_FRESHNESS,
    FP_HTAP_MERGE,
    FP_PREPARE_AFTER,
    FP_PREPARE_BEFORE,
    FP_REBALANCE_COPY,
    FP_REBALANCE_FLIP,
    FP_REPLICATE,
    FaultInjector,
    FaultRule,
)

# The menu the schedule generator draws from: (failpoint, action,
# node-scoped?).  Node-scoped rules are pinned to one random DN so a crash
# takes out a specific participant rather than whichever fires first.
FAULT_MENU = (
    (FP_PREPARE_BEFORE, ACT_CRASH_DN, True),
    (FP_PREPARE_AFTER, ACT_CRASH_DN, True),
    (FP_PREPARE_BEFORE, ACT_TIMEOUT, True),
    (FP_CONFIRM_BEFORE, ACT_CRASH_DN, True),
    (FP_CONFIRM_AFTER, ACT_CRASH_DN, True),
    (FP_CONFIRM_BEFORE, ACT_TIMEOUT, True),
    (FP_CONFIRM_BEFORE, ACT_DROP, True),
    (FP_COORD_AFTER_PREPARE, ACT_CRASH_COORDINATOR, False),
    (FP_COORD_AFTER_GTM_COMMIT, ACT_CRASH_COORDINATOR, False),
    (FP_COORD_BETWEEN_CONFIRMS, ACT_CRASH_COORDINATOR, False),
    (FP_GTM_COMMIT, ACT_TIMEOUT, False),
    (FP_REPLICATE, ACT_PARTITION, True),
)

# The resharding menu (``tests/property/test_chaos_rebalance.py``): faults
# against the rebalance coordinator's copy and flip steps, plus 2PC faults
# that land inside the double-write window.  A coordinator killed mid-move
# must leave an unambiguous slot owner and — after ``recover_cluster`` plus
# ``RebalanceCoordinator.recover`` — neither lose nor duplicate a row.
REBALANCE_FAULT_MENU = (
    (FP_REBALANCE_COPY, ACT_CRASH_COORDINATOR, False),
    (FP_REBALANCE_COPY, ACT_TIMEOUT, False),
    (FP_REBALANCE_COPY, ACT_DROP, False),
    (FP_REBALANCE_FLIP, ACT_CRASH_COORDINATOR, False),
    (FP_REBALANCE_FLIP, ACT_TIMEOUT, False),
    (FP_PREPARE_BEFORE, ACT_CRASH_DN, True),
    (FP_CONFIRM_BEFORE, ACT_TIMEOUT, True),
    (FP_COORD_AFTER_PREPARE, ACT_CRASH_COORDINATOR, False),
)


def arm_random_rebalance_faults(injector: FaultInjector, rng: random.Random,
                                num_dns: int,
                                max_faults: int = 2) -> List[FaultRule]:
    """Arm 1..max_faults rules drawn from :data:`REBALANCE_FAULT_MENU`."""
    rules = []
    for _ in range(rng.randint(1, max_faults)):
        failpoint, action, node_scoped = rng.choice(REBALANCE_FAULT_MENU)
        match = {"dn": rng.randrange(num_dns)} if node_scoped else None
        times = rng.choice((1, 1, 2)) if action in (ACT_TIMEOUT, ACT_DROP) else 1
        rules.append(injector.arm(failpoint, action, times=times, match=match))
    return rules


# The HTAP menu (``tests/property/test_chaos_htap.py``): faults against the
# delta-merge daemon.  A crash mid-merge must lose no rows and leave no
# stuck watermark; stalls and drops only delay column freshness.
HTAP_FAULT_MENU = (
    (FP_HTAP_MERGE, ACT_CRASH_DN, True),
    (FP_HTAP_MERGE, ACT_TIMEOUT, True),
    (FP_HTAP_MERGE, ACT_DROP, True),
    (FP_HTAP_MERGE, ACT_DELAY, True),
    (FP_HTAP_FRESHNESS, ACT_TIMEOUT, True),
    (FP_HTAP_FRESHNESS, ACT_DROP, True),
)


def arm_random_htap_faults(injector: FaultInjector, rng: random.Random,
                           num_dns: int, max_faults: int = 2) -> List[FaultRule]:
    """Arm 1..max_faults rules drawn from :data:`HTAP_FAULT_MENU`."""
    rules = []
    for _ in range(rng.randint(1, max_faults)):
        failpoint, action, node_scoped = rng.choice(HTAP_FAULT_MENU)
        match = {"dn": rng.randrange(num_dns)} if node_scoped else None
        times = rng.choice((1, 1, 2, 5)) if action in (ACT_TIMEOUT, ACT_DROP) else 1
        delay_us = rng.choice((500.0, 2_000.0, 10_000.0)) if action == ACT_DELAY else 0.0
        rules.append(injector.arm(failpoint, action, times=times, match=match,
                                  delay_us=delay_us))
    return rules


# The geo menu (``tests/property/test_chaos_geo.py``): faults against the
# epoch pipeline — batches lost or delayed on the WAN, certification
# stalls, and whole-region epoch-coordinator crashes.  Whatever the
# schedule, every region that certifies an epoch must produce the same
# digest, and no transaction acknowledged committed may lose its writes.
GEO_FAULT_MENU = (
    (FP_GEO_SHIP, ACT_TIMEOUT, True),
    (FP_GEO_SHIP, ACT_DROP, True),
    (FP_GEO_SHIP, ACT_DELAY, True),
    (FP_GEO_SHIP, ACT_CRASH_COORDINATOR, True),
    (FP_GEO_CERTIFY, ACT_TIMEOUT, True),
    (FP_GEO_CERTIFY, ACT_DELAY, True),
    (FP_GEO_APPLY, ACT_TIMEOUT, True),
    (FP_GEO_APPLY, ACT_DELAY, True),
)


def arm_random_geo_faults(injector: FaultInjector, rng: random.Random,
                          num_regions: int,
                          max_faults: int = 2) -> List[FaultRule]:
    """Arm 1..max_faults rules drawn from :data:`GEO_FAULT_MENU`.

    Region-scoped rules pin to one random region (the menu is entirely
    region-scoped: every geo failpoint carries a ``region`` context key).
    """
    rules = []
    for _ in range(rng.randint(1, max_faults)):
        failpoint, action, region_scoped = rng.choice(GEO_FAULT_MENU)
        match = {"region": rng.randrange(num_regions)} if region_scoped \
            else None
        times = rng.choice((1, 1, 2, 5)) if action in (ACT_TIMEOUT, ACT_DROP) \
            else 1
        delay_us = rng.choice((1_000.0, 15_000.0, 60_000.0)) \
            if action == ACT_DELAY else 0.0
        rules.append(injector.arm(failpoint, action, times=times, match=match,
                                  delay_us=delay_us))
    return rules


def recover_geo(geo) -> None:
    """Post-chaos sweep for a :class:`repro.geo.GeoCluster`: disarm, heal
    every WAN cut, revive crashed regions, and drain the epoch pipeline to
    its fixpoint."""
    geo.recover_all()


def arm_random_faults(injector: FaultInjector, rng: random.Random,
                      num_dns: int, max_faults: int = 2) -> List[FaultRule]:
    """Arm 1..max_faults rules drawn from :data:`FAULT_MENU`.

    Timeout rules draw their ``times`` from a skewed bag so some schedules
    exhaust the coordinator's retry budget (escalation to failover) while
    most recover within it.
    """
    rules = []
    for _ in range(rng.randint(1, max_faults)):
        failpoint, action, node_scoped = rng.choice(FAULT_MENU)
        match = {"dn": rng.randrange(num_dns)} if node_scoped else None
        times = rng.choice((1, 1, 2, 5)) if action == ACT_TIMEOUT else 1
        rules.append(injector.arm(failpoint, action, times=times, match=match))
    return rules


def recover_cluster(cluster) -> None:
    """Bring a post-chaos cluster back to a clean, fully-resolved state.

    Heals every standby partition (draining lag queues), fails over every
    crashed node, resolves all remaining in-doubt transactions, and rolls
    any interrupted rebalance move forward or back
    (:meth:`repro.cluster.rebalance.RebalanceCoordinator.recover`).  After
    this returns, ``recovery.in_doubt_count(cluster) == 0`` must hold and
    every shard-map slot has exactly one settled owner.

    Retired nodes are skipped throughout: they own no slots, ship no redo,
    and :meth:`MppCluster.declare_node_dead` refuses them by design.
    """
    from repro.cluster.recovery import resolve_in_doubt

    faults = getattr(cluster, "faults", None)
    if faults is not None:
        faults.disarm_all()      # recovery itself runs fault-free
    active = list(getattr(cluster, "dn_indices", lambda: range(cluster.num_dns))())
    ha = getattr(cluster, "ha", None)
    if ha is not None:
        for i in active:
            if ha.standby_partitioned(i):
                ha.heal_standby(i)
    for i in active:
        if getattr(cluster.dns[i], "crashed", False):
            cluster.declare_node_dead(i, reason="post-chaos sweep")
    resolve_in_doubt(cluster)
    rebalance = getattr(cluster, "rebalance", None)
    if rebalance is not None:
        rebalance.recover()
