"""repro.faults — deterministic fault injection for the GTM-lite 2PC paths.

See :mod:`repro.faults.injector` for the failpoint vocabulary and
:mod:`repro.faults.chaos` for the randomized schedule generator used by the
chaos property suite (``tests/property/test_chaos_2pc.py``).
"""

from repro.faults.injector import (
    ACT_CRASH_COORDINATOR,
    ACT_CRASH_DN,
    ACT_DELAY,
    ACT_DROP,
    ACT_PARTITION,
    ACT_TIMEOUT,
    ALL_ACTIONS,
    ALL_FAILPOINTS,
    FP_CONFIRM_AFTER,
    FP_CONFIRM_BEFORE,
    FP_COORD_AFTER_GTM_COMMIT,
    FP_COORD_AFTER_PREPARE,
    FP_COORD_BETWEEN_CONFIRMS,
    FP_GEO_APPLY,
    FP_GEO_CERTIFY,
    FP_GEO_SHIP,
    FP_GTM_COMMIT,
    FP_PREPARE_AFTER,
    FP_PREPARE_BEFORE,
    FP_PREPARE_SHIP,
    FP_REPLICATE,
    FP_WLM_ADMIT,
    FP_WLM_SPILL,
    CoordinatorCrash,
    FaultError,
    FaultInjector,
    FaultRule,
    FireOutcome,
    InjectedFault,
    InjectedTimeout,
)

__all__ = [
    "ACT_CRASH_COORDINATOR", "ACT_CRASH_DN", "ACT_DELAY", "ACT_DROP",
    "ACT_PARTITION", "ACT_TIMEOUT", "ALL_ACTIONS", "ALL_FAILPOINTS",
    "FP_CONFIRM_AFTER", "FP_CONFIRM_BEFORE", "FP_COORD_AFTER_GTM_COMMIT",
    "FP_COORD_AFTER_PREPARE", "FP_COORD_BETWEEN_CONFIRMS",
    "FP_GEO_APPLY", "FP_GEO_CERTIFY", "FP_GEO_SHIP", "FP_GTM_COMMIT",
    "FP_PREPARE_AFTER", "FP_PREPARE_BEFORE", "FP_PREPARE_SHIP",
    "FP_REPLICATE", "FP_WLM_ADMIT", "FP_WLM_SPILL",
    "CoordinatorCrash", "FaultError", "FaultInjector", "FaultRule",
    "FireOutcome", "InjectedFault", "InjectedTimeout",
]
