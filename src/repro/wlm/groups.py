"""Resource groups: the unit of workload governance.

Greenplum-style resource groups (PAPERS.md) are the design reference: a
group owns a fixed number of *concurrency slots*, a per-query *memory
budget* that operators account against (exceeding it spills, see
:mod:`repro.wlm.memory`), a scheduling *priority* for its queue position,
an optional per-statement sim-time *timeout*, and a *queue-depth cap*
beyond which submissions are shed with a typed error
(:class:`~repro.common.errors.AdmissionRejected`).

The default configuration is deliberately permissive — 64 slots, 64 MiB per
query, no timeout — so a cluster built without explicit groups governs every
query without ever making one wait.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.common.errors import ConfigError

#: Queries submitted without a group land here.
DEFAULT_GROUP = "default"

#: Default per-query memory budget (bytes) for explicit groups.
DEFAULT_MEMORY_PER_QUERY = 64 * 1024 * 1024

#: Slots / queue cap of the implicit default group: generous enough that an
#: ungrouped sequential workload is never queued or shed.
DEFAULT_SLOTS = 64
DEFAULT_QUEUE_LIMIT = 256


class Priority(enum.IntEnum):
    """Queue ordering: HIGH jumps ahead of lower classes."""

    LOW = 0
    NORMAL = 1
    HIGH = 2


@dataclass
class ResourceGroup:
    """One workload class's share of the cluster.

    Mutable on purpose: the autonomous loop tunes ``slots`` and
    ``memory_per_query_bytes`` live through
    :meth:`~repro.wlm.governor.WlmGovernor.set_slots` / ``set_memory``.
    """

    name: str
    slots: int = 8
    memory_per_query_bytes: int = DEFAULT_MEMORY_PER_QUERY
    priority: Priority = Priority.NORMAL
    #: Per-statement budget of *simulated execution time*; ``None`` = none.
    timeout_us: Optional[float] = None
    #: Submissions beyond ``slots`` occupied + this many waiting are shed.
    queue_limit: int = DEFAULT_QUEUE_LIMIT

    def __post_init__(self) -> None:
        if self.slots <= 0:
            raise ConfigError(f"group {self.name!r}: slots must be positive")
        if self.memory_per_query_bytes <= 0:
            raise ConfigError(
                f"group {self.name!r}: memory budget must be positive")
        if self.queue_limit < 0:
            raise ConfigError(
                f"group {self.name!r}: queue_limit cannot be negative")


class WlmConfig:
    """The set of resource groups one governor enforces."""

    def __init__(self, groups: Optional[Iterable[ResourceGroup]] = None,
                 default_group: str = DEFAULT_GROUP):
        self.default_group = default_group
        self.groups: Dict[str, ResourceGroup] = {}
        for group in groups or ():
            self.add(group)
        if default_group not in self.groups:
            self.add(ResourceGroup(
                default_group, slots=DEFAULT_SLOTS,
                memory_per_query_bytes=DEFAULT_MEMORY_PER_QUERY,
                queue_limit=DEFAULT_QUEUE_LIMIT))

    def add(self, group: ResourceGroup) -> ResourceGroup:
        if group.name in self.groups:
            raise ConfigError(f"duplicate resource group {group.name!r}")
        self.groups[group.name] = group
        return group

    def get(self, name: Optional[str]) -> ResourceGroup:
        if name is None:
            name = self.default_group
        group = self.groups.get(name)
        if group is None:
            raise ConfigError(f"unknown resource group {name!r}")
        return group

    def names(self):
        return sorted(self.groups)
