"""Per-query memory budgets with simulated spill-to-disk.

Pipeline-breaking operators (hash aggregate, hash join build, sort,
partial/final aggregation) hold state proportional to their input; this
module is how that state is charged against the query's resource-group
budget.  Each operator obtains an :class:`OperatorMemory` tracker from its
query's :class:`~repro.wlm.governor.WlmQueryContext` and calls
:meth:`OperatorMemory.grow` per hash-table entry / build row / sorted row.
When the *query-wide* reservation exceeds the group budget, the growing
operator spills part of its partition: the bytes leave memory, the operator
is charged simulated storage I/O time (write plus the eventual read-back),
and the event lands in telemetry as ``wait.wlm_spill_us`` plus a
``spilled_bytes`` profile column.

Results are unaffected — spill here is an *accounting* path, matching how
the rest of the simulator charges time without re-implementing disks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.wlm.governor import WlmQueryContext

#: Simulated storage cost per spilled byte (write + eventual read-back).
#: 0.002 us/B ≈ 2 ms per spilled megabyte round trip — the same order as
#: the network wire cost, so spilling is visible but not catastrophic.
SPILL_BYTE_US = 0.002

#: Fixed per-entry bookkeeping overhead (hash bucket / row header) added to
#: the serialized row width when estimating operator state growth.
ENTRY_OVERHEAD_BYTES = 48


class MemoryBudget:
    """One query's shared memory reservation against its group's cap."""

    __slots__ = ("cap_bytes", "reserved_bytes", "peak_bytes")

    def __init__(self, cap_bytes: int):
        self.cap_bytes = int(cap_bytes)
        self.reserved_bytes = 0
        self.peak_bytes = 0

    @property
    def over(self) -> bool:
        return self.reserved_bytes > self.cap_bytes

    def grow(self, nbytes: int) -> None:
        self.reserved_bytes += nbytes
        if self.reserved_bytes > self.peak_bytes:
            self.peak_bytes = self.reserved_bytes

    def shrink(self, nbytes: int) -> None:
        self.reserved_bytes = max(0, self.reserved_bytes - nbytes)


class OperatorMemory:
    """One operator's slice of its query's budget.

    ``grow`` reserves; if the query-wide reservation tops the cap, this
    operator spills roughly half of what it holds (never less than the
    triggering growth) until the budget fits again or it holds nothing —
    other operators keep their residency and spill on their own next grow.
    """

    __slots__ = ("ctx", "op", "budget", "held_bytes")

    def __init__(self, ctx: "WlmQueryContext", op: object,
                 budget: MemoryBudget):
        self.ctx = ctx
        self.op = op
        self.budget = budget
        self.held_bytes = 0

    def grow(self, nbytes: int) -> None:
        nbytes = int(nbytes)
        if nbytes <= 0:
            return
        self.held_bytes += nbytes
        self.budget.grow(nbytes)
        while self.budget.over and self.held_bytes > 0:
            freed = max(self.held_bytes // 2, min(nbytes, self.held_bytes))
            self.held_bytes -= freed
            self.budget.shrink(freed)
            self.ctx.note_spill(self.op, freed)

    def finish(self) -> None:
        """Release this operator's residency back to the query budget."""
        self.budget.shrink(self.held_bytes)
        self.held_bytes = 0
