"""repro.wlm — workload management: admission control, memory budgets with
spill-to-disk, and cooperative query cancellation.

This is the simulator's take on the workload-manager box of the paper's
GaussDB architecture (Fig. 12) — the component that decides, before a query
touches the executor, whether it runs now, waits, or is shed, and how much
memory it may hold while running.  See DESIGN.md §12.
"""

from repro.wlm.governor import (
    CHECKPOINT_COST_US,
    FP_WLM_ADMIT,
    FP_WLM_SPILL,
    QueueEvent,
    Ticket,
    WlmGovernor,
    WlmQueryContext,
    attach_to_plan,
)
from repro.wlm.groups import (
    DEFAULT_GROUP,
    DEFAULT_MEMORY_PER_QUERY,
    Priority,
    ResourceGroup,
    WlmConfig,
)
from repro.wlm.memory import (
    ENTRY_OVERHEAD_BYTES,
    SPILL_BYTE_US,
    MemoryBudget,
    OperatorMemory,
)

__all__ = [
    "CHECKPOINT_COST_US",
    "DEFAULT_GROUP",
    "DEFAULT_MEMORY_PER_QUERY",
    "ENTRY_OVERHEAD_BYTES",
    "FP_WLM_ADMIT",
    "FP_WLM_SPILL",
    "MemoryBudget",
    "OperatorMemory",
    "Priority",
    "QueueEvent",
    "ResourceGroup",
    "SPILL_BYTE_US",
    "Ticket",
    "WlmConfig",
    "WlmGovernor",
    "WlmQueryContext",
    "attach_to_plan",
]
