"""Deterministic concurrent-workload driver for the governor.

The SQL engine is synchronous, so by itself it can only exercise the
sequential-replay admission path.  This driver simulates a *concurrent*
client population against a :class:`~repro.wlm.governor.WlmGovernor`:
each :class:`QueryRequest` arrives at a fixed sim time with a known
standalone execution cost, and the driver interleaves submissions with
completions in arrival order — releasing every ticket whose query finished
before the next arrival, so slots free up and queued tickets are promoted
exactly when a live system would promote them.

Hardware contention is modelled with a simple stretch factor: when more
queries run concurrently than the cluster has ``parallelism`` worth of
execution capacity, each query's remaining work slows proportionally.
The factor is sampled once at admission (deterministic, conservative),
which is what makes governed admission visibly *win* in the overload
benchmark: capping concurrency keeps the stretch near 1 for short queries.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import AdmissionRejected
from repro.wlm.governor import Ticket, WlmGovernor
from repro.wlm.groups import Priority


@dataclass(frozen=True)
class QueryRequest:
    """One simulated client statement."""

    arrival_us: float
    exec_us: float
    group: Optional[str] = None
    priority: Optional[Priority] = None
    tag: str = ""


@dataclass
class QueryOutcome:
    """What happened to one request after the replay."""

    request: QueryRequest
    ticket: Optional[Ticket] = None
    rejected: bool = False
    admitted_us: Optional[float] = None
    finished_us: Optional[float] = None

    @property
    def queue_wait_us(self) -> float:
        if self.admitted_us is None:
            return 0.0
        return max(0.0, self.admitted_us - self.request.arrival_us)

    @property
    def latency_us(self) -> Optional[float]:
        """Client-observed latency: arrival to completion."""
        if self.finished_us is None:
            return None
        return self.finished_us - self.request.arrival_us


def replay(governor: WlmGovernor, requests: Sequence[QueryRequest],
           parallelism: int = 16) -> List[QueryOutcome]:
    """Run a request schedule to completion; returns outcomes in the
    original submission order.  Fully deterministic: identical inputs give
    an identical ``sys.wlm_queue`` history."""
    order = sorted(range(len(requests)),
                   key=lambda i: (requests[i].arrival_us, i))
    outcomes: List[QueryOutcome] = [QueryOutcome(r) for r in requests]
    by_ticket: Dict[int, QueryOutcome] = {}
    # (finish_us, query_id, ticket) of every running query.
    completions: List[Tuple[float, int, Ticket]] = []

    def start(outcome: QueryOutcome, ticket: Ticket) -> None:
        outcome.ticket = ticket
        outcome.admitted_us = ticket.admitted_us
        by_ticket[ticket.query_id] = outcome
        stretch = max(1.0, (len(completions) + 1) / max(1, parallelism))
        finish = ticket.admitted_us + outcome.request.exec_us * stretch
        heapq.heappush(completions, (finish, ticket.query_id, ticket))

    def drain_until(t_us: Optional[float]) -> None:
        while completions and (t_us is None or completions[0][0] <= t_us):
            finish, _, ticket = heapq.heappop(completions)
            outcome = by_ticket[ticket.query_id]
            outcome.finished_us = finish
            for promoted in governor.release(ticket, finish):
                start(by_ticket_pending.pop(promoted.query_id), promoted)

    # Tickets that were queued at submit time, awaiting promotion.
    by_ticket_pending: Dict[int, QueryOutcome] = {}

    for i in order:
        request = requests[i]
        drain_until(request.arrival_us)
        try:
            ticket = governor.submit(
                group=request.group, now_us=request.arrival_us,
                priority=request.priority, tag=request.tag)
        except AdmissionRejected:
            outcomes[i].rejected = True
            continue
        if ticket.queued:
            by_ticket_pending[ticket.query_id] = outcomes[i]
        else:
            start(outcomes[i], ticket)

    drain_until(None)
    return outcomes


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) — no numpy dependency."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, int(round(q / 100.0 * len(ordered))))
    return ordered[min(rank, len(ordered)) - 1]
