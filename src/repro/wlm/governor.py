"""The workload governor: deterministic admission control over resource groups.

Every statement the SQL engine executes asks this governor for a *ticket*
before touching the cluster, and returns it on every exit path — success,
error, timeout, cancellation, injected crash.  The governor enforces each
:class:`~repro.wlm.groups.ResourceGroup`'s concurrency slots, queue-depth
cap (overload shedding with :class:`~repro.common.errors.AdmissionRejected`)
and per-statement timeout, and owns the telemetry for all of it: the
``sys.wlm_queue`` event history, ``wait.wlm_queue_us`` / ``wait.wlm_spill_us``
wait events, ``wlm.*`` counters and cancellation alerts.

Two usage modes share one code path:

* **Sequential replay** (the synchronous SQL engine): each query is
  submitted, executed and released before the next submission.  Slots are a
  pool of *free-at times* (a min-heap): admission time is
  ``max(arrival, earliest free slot)``, so a burst of explicit
  ``arrival_us`` submissions queues exactly as it would on a live system —
  while default submissions (arrival = the governor's completion cursor)
  are admitted instantly and leave telemetry untouched.
* **Concurrent driving** (the benchmark driver, the autonomous workload
  manager): tickets stay in flight with unknown completion times, so
  later submissions park in a priority-ordered queue and are promoted,
  highest priority first, when a release or cancellation frees a slot.

All times are simulated microseconds; the same submission schedule against
the same group config yields a byte-identical event history.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.clock import SimClock
from repro.common.errors import (
    AdmissionRejected,
    QueryCancelled,
    QueryTimeout,
)
from repro.wlm.groups import Priority, ResourceGroup, WlmConfig
from repro.wlm.memory import MemoryBudget, OperatorMemory, SPILL_BYTE_US

#: Simulated cost charged per cooperative cancellation checkpoint (one per
#: row flowing through each operator) when accruing a query's progress
#: against its group timeout.  Matches the profiler's fallback row cost.
CHECKPOINT_COST_US = 0.1

#: Failpoint names fired through the cluster's ``repro.faults`` injector.
#: String literals (not imports) keep ``repro.wlm`` free of a faults
#: dependency; :mod:`repro.faults.injector` registers the same names.
FP_WLM_ADMIT = "wlm.admit"
FP_WLM_SPILL = "wlm.spill"


@dataclass
class Ticket:
    """One admitted (or queued) statement's claim on its group."""

    query_id: int
    group: str
    priority: Priority
    submitted_us: float
    budget: MemoryBudget
    tag: str = ""
    admitted_us: Optional[float] = None
    end_us: Optional[float] = None
    #: Cooperative-cancellation flag; the executor's next checkpoint raises.
    cancel_requested: Optional[str] = None

    @property
    def queued(self) -> bool:
        return self.admitted_us is None

    @property
    def finished(self) -> bool:
        return self.end_us is not None

    @property
    def wait_us(self) -> float:
        if self.admitted_us is None:
            return 0.0
        return max(0.0, self.admitted_us - self.submitted_us)


@dataclass(frozen=True)
class QueueEvent:
    """One row of the ``sys.wlm_queue`` admission history."""

    event_id: int
    query_id: int
    group: str
    priority: str
    event: str      # queued | admitted | rejected | done | failed
                    # | cancelled | timeout
    t_us: float
    wait_us: float

    def as_row(self) -> Tuple[int, int, str, str, str, float, float]:
        return (self.event_id, self.query_id, self.group, self.priority,
                self.event, self.t_us, self.wait_us)


class _GroupState:
    """Mutable runtime state for one resource group."""

    __slots__ = ("group", "free_at", "running", "queue", "admit_log",
                 "admitted", "rejected", "cancelled", "spills",
                 "spilled_bytes")

    def __init__(self, group: ResourceGroup):
        self.group = group
        #: One entry per unoccupied slot: the time it became free.
        self.free_at: List[float] = [0.0] * group.slots
        heapq.heapify(self.free_at)
        self.running: Dict[int, Ticket] = {}
        #: Waiting tickets, kept sorted by (-priority, submitted, id).
        self.queue: List[Ticket] = []
        #: Admission times of future-dated admissions (sequential-replay
        #: bursts): entries > the current arrival are queries "ahead of" it.
        self.admit_log: List[float] = []
        self.admitted = 0
        self.rejected = 0
        self.cancelled = 0
        self.spills = 0
        self.spilled_bytes = 0

    def backlog_at(self, t_us: float) -> int:
        """Queue depth seen by an arrival at ``t_us``."""
        while self.admit_log and self.admit_log[0] <= t_us:
            heapq.heappop(self.admit_log)
        return len(self.queue) + len(self.admit_log)

    def enqueue(self, ticket: Ticket) -> None:
        self.queue.append(ticket)
        self.queue.sort(key=lambda t: (-t.priority, t.submitted_us,
                                       t.query_id))

    def remove_queued(self, ticket: Ticket) -> bool:
        try:
            self.queue.remove(ticket)
            return True
        except ValueError:
            return False


class WlmGovernor:
    """Admission control, memory budgets and cancellation for one cluster."""

    def __init__(self, config: Optional[WlmConfig] = None,
                 clock: Optional[SimClock] = None,
                 metrics=None, waits=None, alerts=None,
                 faults_fn: Optional[Callable[[], object]] = None,
                 fast_forward: bool = True):
        self.config = config if config is not None else WlmConfig()
        self.clock = clock if clock is not None else SimClock()
        #: Sequential-replay semantics: a submission whose slot frees later
        #: is admitted *at* that future sim time (the query "waited").
        #: Off, a free slot admits at the arrival time regardless — the
        #: wall-clock semantics the autonomous workload manager drives with.
        self.fast_forward = fast_forward
        #: Duck-typed observability sinks (``repro.obs`` types in practice);
        #: all optional so the governor runs standalone.
        self.metrics = metrics
        self.waits = waits
        self.alerts = alerts
        #: Late-bound accessor for the cluster's fault injector, so
        #: ``repro.wlm`` never imports ``repro.faults``.
        self.faults_fn = faults_fn
        self._groups: Dict[str, _GroupState] = {
            name: _GroupState(group)
            for name, group in self.config.groups.items()
        }
        self.events: List[QueueEvent] = []
        self._next_query_id = 1
        self._next_event_id = 1
        #: Latest known completion time: the default arrival for sequential
        #: replay, so back-to-back queries never contend with their past.
        self.cursor_us = 0.0

    # -- configuration -----------------------------------------------------

    def group(self, name: Optional[str] = None) -> ResourceGroup:
        return self.config.get(name)

    def add_group(self, group: ResourceGroup) -> ResourceGroup:
        self.config.add(group)
        self._groups[group.name] = _GroupState(group)
        return group

    def set_slots(self, name: str, slots: int,
                  now_us: Optional[float] = None) -> List[Ticket]:
        """Retune a group's concurrency live; growth promotes waiters."""
        state = self._state(name)
        old = state.group.slots
        slots = max(1, int(slots))
        state.group.slots = slots
        promoted: List[Ticket] = []
        if slots > old:
            t = now_us if now_us is not None else self.cursor_us
            for _ in range(slots - old):
                heapq.heappush(state.free_at, t)
            promoted = self._drain_queue(state)
        # Shrinking is lazy: surplus freed slots are dropped on release.
        while len(state.free_at) + len(state.running) > state.group.slots \
                and state.free_at:
            # Drop the latest-free surplus slots immediately where possible.
            state.free_at.remove(max(state.free_at))
            heapq.heapify(state.free_at)
        return promoted

    def set_memory(self, name: str, memory_per_query_bytes: int) -> None:
        """Retune a group's per-query budget; applies to new admissions."""
        self._state(name).group.memory_per_query_bytes = \
            max(1, int(memory_per_query_bytes))

    # -- admission ---------------------------------------------------------

    def submit(self, group: Optional[str] = None,
               now_us: Optional[float] = None,
               priority: Optional[Priority] = None,
               tag: str = "") -> Ticket:
        """Ask for a slot.  Returns an admitted ticket (possibly with a
        future ``admitted_us``, meaning the query waited), or a queued one
        (``admitted_us is None``) when in-flight occupants make the wait
        unresolvable; raises :class:`AdmissionRejected` past the queue cap.
        """
        state = self._state(group)
        grp = state.group
        self._fire_failpoint(FP_WLM_ADMIT, group=grp.name)
        arrival = now_us if now_us is not None \
            else max(self.clock.now_us, self.cursor_us)
        prio = priority if priority is not None else grp.priority
        query_id = self._next_query_id
        self._next_query_id += 1
        if state.backlog_at(arrival) >= grp.queue_limit:
            state.rejected += 1
            self._count("wlm.rejected")
            self._event(query_id, grp.name, prio, "rejected", arrival, 0.0)
            if self.alerts is not None:
                self.alerts.raise_alert(
                    source="wlm", severity="warning",
                    message=(f"group {grp.name!r} shedding load: queue depth"
                             f" {grp.queue_limit} reached"),
                    t_us=arrival, key=f"wlm.shed:{grp.name}")
            raise AdmissionRejected(
                f"resource group {grp.name!r} queue full "
                f"({grp.queue_limit}); shedding load",
                group=grp.name, queue_depth=grp.queue_limit)
        ticket = Ticket(
            query_id=query_id, group=grp.name, priority=prio,
            submitted_us=arrival,
            budget=MemoryBudget(grp.memory_per_query_bytes), tag=tag)
        if state.free_at:
            free = heapq.heappop(state.free_at)
            self._admit(state, ticket,
                        max(arrival, free) if self.fast_forward else arrival)
        else:
            # Every slot is held by an in-flight query with an unknown end:
            # park in the priority queue until a release promotes us.
            self._count("wlm.queued")
            self._event(query_id, grp.name, prio, "queued", arrival, 0.0)
            state.enqueue(ticket)
        return ticket

    def _admit(self, state: _GroupState, ticket: Ticket,
               admitted_us: float) -> None:
        ticket.admitted_us = admitted_us
        state.running[ticket.query_id] = ticket
        state.admitted += 1
        self._count("wlm.admitted")
        wait = ticket.wait_us
        if wait > 0:
            if self.fast_forward:
                heapq.heappush(state.admit_log, admitted_us)
            self._event(ticket.query_id, ticket.group, ticket.priority,
                        "queued", ticket.submitted_us, 0.0)
            if self.waits is not None:
                self.waits.record("wlm_queue", wait)
        self._event(ticket.query_id, ticket.group, ticket.priority,
                    "admitted", admitted_us, wait)

    # -- completion --------------------------------------------------------

    def release(self, ticket: Ticket, end_us: Optional[float] = None,
                event: str = "done") -> List[Ticket]:
        """Return a slot; promotes queued waiters.  Safe to call once per
        ticket on any exit path (double release is a no-op)."""
        if ticket.finished or ticket.admitted_us is None:
            return []
        end = end_us if end_us is not None else ticket.admitted_us
        end = max(end, ticket.admitted_us)
        ticket.end_us = end
        state = self._state(ticket.group)
        state.running.pop(ticket.query_id, None)
        if end > self.cursor_us:
            self.cursor_us = end
        self._event(ticket.query_id, ticket.group, ticket.priority,
                    event, end, ticket.wait_us)
        return self._free_slot(state, end)

    def cancel(self, ticket: Ticket, now_us: Optional[float] = None,
               reason: str = "cancelled") -> bool:
        """Cancel a statement.  Queued: removed immediately (returns True).
        Running: flags the ticket; the executor's next checkpoint raises
        :class:`QueryCancelled` and the driver calls
        :meth:`finish_cancelled`.  Returns False for the cooperative case.
        """
        state = self._state(ticket.group)
        if ticket.queued and state.remove_queued(ticket):
            t = now_us if now_us is not None else ticket.submitted_us
            ticket.end_us = t
            state.cancelled += 1
            self._count("wlm.cancelled")
            self._event(ticket.query_id, ticket.group, ticket.priority,
                        "cancelled", t, max(0.0, t - ticket.submitted_us))
            return True
        if not ticket.finished:
            ticket.cancel_requested = reason
        return False

    def finish_cancelled(self, ticket: Ticket, end_us: float,
                         kind: str = "cancelled") -> List[Ticket]:
        """A running statement stopped at a checkpoint: free its slot at
        ``end_us`` (head of the queue inherits it), alert, count."""
        if ticket.finished:
            return []
        if ticket.queued:
            self.cancel(ticket, now_us=end_us)
            return []
        state = self._state(ticket.group)
        end = max(end_us, ticket.admitted_us)
        ticket.end_us = end
        state.running.pop(ticket.query_id, None)
        state.cancelled += 1
        self._count("wlm.timeouts" if kind == "timeout" else "wlm.cancelled")
        if end > self.cursor_us:
            self.cursor_us = end
        self._event(ticket.query_id, ticket.group, ticket.priority,
                    kind, end, ticket.wait_us)
        if self.alerts is not None:
            self.alerts.raise_alert(
                source="wlm", severity="warning",
                message=(f"query {ticket.query_id} in group "
                         f"{ticket.group!r} {kind}"),
                t_us=end, key=f"wlm.{kind}:{ticket.group}")
        return self._free_slot(state, end)

    def _free_slot(self, state: _GroupState, t_us: float) -> List[Ticket]:
        if len(state.free_at) + len(state.running) >= state.group.slots:
            return []     # lazy shrink: the slot was retired by set_slots
        if state.queue:
            head = state.queue.pop(0)
            self._admit(state, head, max(t_us, head.submitted_us))
            return [head]
        heapq.heappush(state.free_at, t_us)
        return []

    def _drain_queue(self, state: _GroupState) -> List[Ticket]:
        promoted: List[Ticket] = []
        while state.queue and state.free_at:
            free = heapq.heappop(state.free_at)
            head = state.queue.pop(0)
            self._admit(state, head, max(free, head.submitted_us))
            promoted.append(head)
        return promoted

    # -- per-query execution context ---------------------------------------

    def context(self, ticket: Ticket) -> "WlmQueryContext":
        return WlmQueryContext(self, ticket)

    def note_spill(self, ticket: Ticket, nbytes: int,
                   dn: Optional[int] = None) -> float:
        """Account one spill: storage sim-time, wait event, counters,
        failpoint.  Returns the simulated I/O time charged."""
        self._fire_failpoint(FP_WLM_SPILL, dn=dn, group=ticket.group,
                             query=ticket.query_id)
        spill_us = nbytes * SPILL_BYTE_US
        state = self._state(ticket.group)
        state.spills += 1
        state.spilled_bytes += nbytes
        self._count("wlm.spills")
        self._count("wlm.spilled_bytes", nbytes)
        if self.waits is not None:
            session = f"dn{dn}" if dn is not None else None
            self.waits.record("wlm_spill", spill_us, session=session)
        return spill_us

    # -- introspection -----------------------------------------------------

    def running_count(self, group: Optional[str] = None) -> int:
        return len(self._state(group).running)

    def queued_count(self, group: Optional[str] = None) -> int:
        return len(self._state(group).queue)

    def total_running(self) -> int:
        return sum(len(s.running) for s in self._groups.values())

    def queue_rows(self) -> List[Tuple[int, int, str, str, str, float, float]]:
        """``sys.wlm_queue`` rows, in event order."""
        return [event.as_row() for event in self.events]

    def group_rows(self) -> List[tuple]:
        """``sys.wlm_groups`` rows."""
        rows = []
        for name in sorted(self._groups):
            state = self._groups[name]
            grp = state.group
            rows.append((
                name, grp.slots, grp.memory_per_query_bytes,
                grp.priority.name, grp.timeout_us, grp.queue_limit,
                len(state.running), len(state.queue),
                state.admitted, state.rejected, state.cancelled,
                state.spills, state.spilled_bytes,
            ))
        return rows

    def reset_history(self) -> None:
        """Telemetry reset: forget every ticket, event and counter while
        keeping the group configuration (mirrors ``reset_telemetry``)."""
        self.events.clear()
        self._next_query_id = 1
        self._next_event_id = 1
        self.cursor_us = 0.0
        for state in self._groups.values():
            state.free_at = [0.0] * state.group.slots
            heapq.heapify(state.free_at)
            state.running.clear()
            state.queue.clear()
            state.admit_log = []
            state.admitted = state.rejected = state.cancelled = 0
            state.spills = state.spilled_bytes = 0

    # -- internals ---------------------------------------------------------

    def _state(self, name: Optional[str]) -> _GroupState:
        group = self.config.get(name)
        return self._groups[group.name]

    def _event(self, query_id: int, group: str, priority: Priority,
               event: str, t_us: float, wait_us: float) -> None:
        self.events.append(QueueEvent(
            event_id=self._next_event_id, query_id=query_id, group=group,
            priority=priority.name, event=event, t_us=t_us,
            wait_us=wait_us))
        self._next_event_id += 1

    def _count(self, name: str, n: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(n)

    def _fire_failpoint(self, failpoint: str, **ctx) -> None:
        if self.faults_fn is None:
            return
        injector = self.faults_fn()
        if injector is not None:
            injector.fire(failpoint, **ctx)


class WlmQueryContext:
    """Per-statement runtime handle the executor cooperates with.

    Attached to every operator of the physical plan
    (:func:`attach_to_plan`); ``tick`` is the cooperative cancellation
    checkpoint called once per row, and ``memory_for`` hands each
    pipeline-breaking operator its budget tracker.
    """

    __slots__ = ("governor", "ticket", "progress_us", "_timeout_us",
                 "_memory")

    def __init__(self, governor: WlmGovernor, ticket: Ticket):
        self.governor = governor
        self.ticket = ticket
        #: Simulated execution time accrued so far (checkpoint grain).
        self.progress_us = 0.0
        self._timeout_us = governor.group(ticket.group).timeout_us
        self._memory: Dict[int, OperatorMemory] = {}

    def tick(self, op: object) -> None:
        """One cancellation checkpoint; raises to unwind the executor."""
        self.progress_us += CHECKPOINT_COST_US
        ticket = self.ticket
        if ticket.cancel_requested is not None:
            raise QueryCancelled(
                f"query {ticket.query_id} cancelled: "
                f"{ticket.cancel_requested}", query_id=ticket.query_id)
        if self._timeout_us is not None and self.progress_us > self._timeout_us:
            raise QueryTimeout(
                f"query {ticket.query_id} exceeded group "
                f"{ticket.group!r} timeout ({self._timeout_us:.0f}us)",
                query_id=ticket.query_id)

    def tick_batch(self, op: object, rows: int) -> None:
        """Batch-grain checkpoint: same per-row progress accrual as
        :meth:`tick`, one cancellation/timeout check per batch."""
        self.progress_us += CHECKPOINT_COST_US * rows
        ticket = self.ticket
        if ticket.cancel_requested is not None:
            raise QueryCancelled(
                f"query {ticket.query_id} cancelled: "
                f"{ticket.cancel_requested}", query_id=ticket.query_id)
        if self._timeout_us is not None and self.progress_us > self._timeout_us:
            raise QueryTimeout(
                f"query {ticket.query_id} exceeded group "
                f"{ticket.group!r} timeout ({self._timeout_us:.0f}us)",
                query_id=ticket.query_id)

    def memory_for(self, op: object) -> OperatorMemory:
        tracker = self._memory.get(id(op))
        if tracker is None:
            tracker = OperatorMemory(self, op, self.ticket.budget)
            self._memory[id(op)] = tracker
        return tracker

    def note_spill(self, op: object, nbytes: int) -> None:
        """Callback from :class:`OperatorMemory`: charge op-local I/O time
        on the node whose partition overflowed."""
        dn = getattr(op, "_wlm_dn", None)
        spill_us = self.governor.note_spill(self.ticket, nbytes, dn=dn)
        op.spilled_bytes = getattr(op, "spilled_bytes", 0) + nbytes
        op.spill_time_us = getattr(op, "spill_time_us", 0.0) + spill_us


def attach_to_plan(ctx: WlmQueryContext, op: object,
                   dn: Optional[int] = None) -> None:
    """Thread a query context through a physical plan.

    Sets ``wlm_ctx`` on every operator (enabling checkpoints and memory
    accounting) and ``_wlm_dn`` to the data node an operator's fragment
    runs on, so spill is charged against the right node.
    """
    key = getattr(op, "fragment_key", None)
    if key is not None:
        dn = key[1]
    op.wlm_ctx = ctx
    op._wlm_dn = dn
    for child in op.children():
        attach_to_plan(ctx, child, dn)
