"""High availability for the MPP cluster.

"FI-MPPDB provides high availability through smart replication scheme"
(Sec. I).  Implementation: every data node ships the redo of each committed
transaction to a standby replica synchronously; on failure, the standby's
committed state rebuilds a fresh node that takes over the shard.

Crash semantics: transactions in flight on the failed node are lost (their
writes were never shipped — only commits replicate), so their coordinators
see aborts; every *committed* transaction survives.  This matches primary/
standby synchronous replication.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import ConfigError
from repro.cluster.datanode import DataNode, RedoOp
from repro.cluster.mpp import MppCluster


class StandbyReplica:
    """Committed-state mirror of one data node."""

    def __init__(self, node_id: str):
        self.node_id = node_id
        self._tables: Dict[str, Dict[object, Dict[str, object]]] = {}
        self.transactions_applied = 0
        self.ops_applied = 0

    def ensure_table(self, table: str) -> None:
        self._tables.setdefault(table, {})

    def drop_table(self, table: str) -> None:
        self._tables.pop(table, None)

    def apply(self, redo: List[RedoOp]) -> None:
        """Apply one committed transaction's redo, atomically."""
        for op in redo:
            rows = self._tables.setdefault(op.table, {})
            if op.op in ("insert", "update"):
                rows[op.key] = dict(op.values or {})
            elif op.op == "delete":
                rows.pop(op.key, None)
            self.ops_applied += 1
        self.transactions_applied += 1

    def row_count(self, table: str) -> int:
        return len(self._tables.get(table, {}))

    def rows(self, table: str) -> Dict[object, Dict[str, object]]:
        return dict(self._tables.get(table, {}))


@dataclass
class FailoverReport:
    node_id: str
    tables_restored: int
    rows_restored: int
    inflight_lost: int


class HaManager:
    """Attaches standbys to a cluster and performs failovers."""

    def __init__(self, cluster: MppCluster):
        self.cluster = cluster
        self._standbys: List[StandbyReplica] = []
        self.failovers: List[FailoverReport] = []
        for dn in cluster.dns:
            standby = StandbyReplica(f"{dn.node_id}-standby")
            for table in cluster.catalog.tables():
                standby.ensure_table(cluster.catalog.schema(table).name)
            dn.replication_hook = standby.apply
            self._standbys.append(standby)

    def standby(self, dn_index: int) -> StandbyReplica:
        return self._standbys[dn_index]

    def register_table(self, name: str) -> None:
        """Call after CREATE TABLE so standbys know the table."""
        for standby in self._standbys:
            standby.ensure_table(name)

    # -- failover ------------------------------------------------------------

    def fail_and_promote(self, dn_index: int) -> FailoverReport:
        """Kill a data node and promote its standby in place.

        The replacement node has fresh local XIDs and an empty LCO — exactly
        what a restarted PostgreSQL-style node would have — and rejoins the
        cluster at the same shard position.
        """
        if not (0 <= dn_index < len(self.cluster.dns)):
            raise ConfigError(f"no data node {dn_index}")
        old = self.cluster.dns[dn_index]
        standby = self._standbys[dn_index]
        inflight = old.ltm.active_count

        replacement = DataNode(old.node_id, dn_index)
        rows_restored = 0
        tables = 0
        for table in self.cluster.catalog.tables():
            schema = self.cluster.catalog.schema(table)
            replacement.create_table(schema)
            tables += 1
        # Restore committed state under one recovery transaction.
        xid = replacement.begin()
        snapshot = replacement.local_snapshot()
        for table in self.cluster.catalog.tables():
            schema = self.cluster.catalog.schema(table)
            for key, values in standby.rows(schema.name).items():
                replacement.insert(schema.name, values, xid, snapshot)
                rows_restored += 1
        replacement.commit(xid)
        # Recovery writes must not re-ship to the standby (it has them).
        replacement._redo.clear()  # noqa: SLF001
        replacement.replication_hook = standby.apply

        self.cluster.dns[dn_index] = replacement
        old.replication_hook = None
        report = FailoverReport(old.node_id, tables, rows_restored, inflight)
        self.failovers.append(report)
        return report
