"""High availability for the MPP cluster.

"FI-MPPDB provides high availability through smart replication scheme"
(Sec. I).  Implementation: every data node ships redo to a standby replica
over a :class:`repro.net.fabric.Fabric` link — so partitions and replication
lag are real, cuttable network states, not abstractions:

* **committed** transactions ship their redo synchronously (as before); if
  the standby is unreachable the shipment queues (*replication lag*) and
  drains when the link heals,
* **prepared** transactions additionally *stage* their redo at prepare time
  — 2PC's durability point — so a write that reaches the GTM commit decision
  survives the primary's crash even though its local commit confirmation
  never landed.  If the standby is unreachable at prepare time the node
  votes *no* (the prepare is refused) rather than make a durability promise
  it cannot keep.

On failure, :meth:`HaManager.fail_and_promote` rebuilds the shard from the
standby's committed state, re-instates staged prepares as PREPARED local
transactions (so ``recovery.resolve_in_doubt`` can roll them forward or
back by the GTM's decision), and poisons in-flight global transactions
whose undecided writes died with the node.  A standby that is partitioned
while lagging refuses promotion — promoting it would silently lose
acknowledged commits — and the cluster degrades the shard to read-only
instead (:meth:`repro.cluster.mpp.MppCluster.declare_node_dead`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigError, NetworkError, TransactionAborted
from repro.cluster.datanode import DataNode, RedoOp
from repro.cluster.mpp import MppCluster
from repro.faults.injector import FP_PREPARE_SHIP, FP_REPLICATE, InjectedTimeout
from repro.net.fabric import Fabric


class StandbyReplica:
    """Committed-state mirror of one data node, plus staged prepares."""

    def __init__(self, node_id: str):
        self.node_id = node_id
        self._tables: Dict[str, Dict[object, Dict[str, object]]] = {}
        #: Redo staged at prepare time, by GXID — the durability that lets a
        #: GTM-committed-but-unconfirmed write survive the primary's crash.
        self._prepared: Dict[int, List[RedoOp]] = {}
        #: Write-order bookkeeping.  On the primary, MVCC version chains
        #: order same-key writes; the standby's flat rows don't, so a staged
        #: prepare resolved *late* (after a newer commit of the same key —
        #: possible, because UPGRADE lets writers build on a GTM-committed-
        #: but-unconfirmed version) must not clobber the newer value.  The
        #: shipping channel is FIFO, and same-key writes on one node are
        #: strictly ordered, so the *arrival* order of commit shipments and
        #: stage events equals the data order — only resolutions arrive out
        #: of order.  Every arrival (apply or stage) takes the next sequence
        #: number; each key remembers its last writer's sequence; a stage
        #: resolving to commit applies *at its stage-time sequence*, skipping
        #: ops whose key a later arrival already wrote.
        self._seq = 0
        self._key_seq: Dict[Tuple[str, object], int] = {}
        self._stage_seq: Dict[int, int] = {}
        self.transactions_applied = 0
        self.ops_applied = 0

    def ensure_table(self, table: str) -> None:
        self._tables.setdefault(table, {})

    def drop_table(self, table: str) -> None:
        self._tables.pop(table, None)
        self._key_seq = {pair: seq for pair, seq in self._key_seq.items()
                         if pair[0] != table}

    def apply(self, redo: List[RedoOp], at_seq: Optional[int] = None) -> None:
        """Apply one committed transaction's redo, atomically.

        ``at_seq`` places a late-resolving stage at its original position in
        the write order instead of at the head; fresh shipments take the
        next sequence number.
        """
        if at_seq is None:
            self._seq += 1
            at_seq = self._seq
        for op in redo:
            rows = self._tables.setdefault(op.table, {})
            if op.op in ("insert", "update"):
                rows[op.key] = dict(op.values or {})
            elif op.op == "delete":
                rows.pop(op.key, None)
            pair = (op.table, op.key)
            self._key_seq[pair] = max(self._key_seq.get(pair, 0), at_seq)
            self.ops_applied += 1
        self.transactions_applied += 1

    def stage_prepare(self, gxid: int, redo: List[RedoOp]) -> None:
        self._prepared[gxid] = list(redo)
        if gxid not in self._stage_seq:
            self._seq += 1
            self._stage_seq[gxid] = self._seq

    def resolve_prepared(self, gxid: int, outcome: str) -> None:
        """The staged transaction's fate is decided: apply or discard.

        A committing stage only applies ops whose keys nothing *later in the
        write order* already wrote: a later committed write built on this
        one (via UPGRADE) embeds its effect, and replaying the stale redo
        over it would lose the newer value.
        """
        staged = gxid in self._prepared
        fresh = self.unsuperseded_redo(gxid) if staged else None
        at_seq = self._stage_seq.get(gxid)
        self._prepared.pop(gxid, None)
        self._stage_seq.pop(gxid, None)
        if staged and outcome == "commit":
            self.apply(fresh, at_seq=at_seq)

    def unsuperseded_redo(self, gxid: int) -> List[RedoOp]:
        """The staged ops of ``gxid`` not overwritten by a later arrival."""
        staged_at = self._stage_seq.get(gxid, 0)
        return [op for op in self._prepared.get(gxid, [])
                if self._key_seq.get((op.table, op.key), 0) <= staged_at]

    def prepared_gxids(self) -> List[int]:
        """Staged GXIDs in *stage order* — the same-key data order."""
        return list(self._prepared)

    def staged_redo(self, gxid: int) -> List[RedoOp]:
        return list(self._prepared.get(gxid, []))

    def row_count(self, table: str) -> int:
        return len(self._tables.get(table, {}))

    def rows(self, table: str) -> Dict[object, Dict[str, object]]:
        return dict(self._tables.get(table, {}))


@dataclass
class FailoverReport:
    node_id: str
    tables_restored: int
    rows_restored: int
    inflight_lost: int
    prepared_reinstated: int = 0
    inflight_poisoned: int = 0
    stages_dropped: int = 0
    stages_rolled_forward: int = 0


class HaManager:
    """Attaches standbys to a cluster and performs failovers."""

    def __init__(self, cluster: MppCluster, fabric: Optional[Fabric] = None):
        self.cluster = cluster
        obs = getattr(cluster, "obs", None)
        self.fabric = fabric if fabric is not None else Fabric(
            clock=obs.clock if obs is not None else None)
        self._lan_us = float(getattr(cluster.profile.mpp, "lan_hop_us", 0.0)
                             or 0.0)
        self._standbys: List[StandbyReplica] = []
        #: Shipments the standby missed while partitioned (replication lag),
        #: FIFO per node; drained on heal or before a safe promotion.
        self._pending: Dict[int, List[Tuple]] = {}
        self.failovers: List[FailoverReport] = []
        for i, dn in enumerate(cluster.dns):
            standby = StandbyReplica(f"{dn.node_id}-standby")
            for table in cluster.catalog.tables():
                standby.ensure_table(cluster.catalog.schema(table).name)
            self._standbys.append(standby)
            self._pending[i] = []
            self.fabric.register(self._primary_name(i),
                                 lambda src, payload: None)
            self.fabric.register(self._standby_name(i),
                                 self._standby_handler(i))
            self.fabric.connect(self._primary_name(i), self._standby_name(i),
                                self._lan_us)
            self._wire(i, dn)
        cluster.ha = self

    # -- naming / wiring ----------------------------------------------------
    #
    # Endpoint names are namespaced by the cluster's name when it has one:
    # two clusters sharing one fabric (regions of a geo deployment, or any
    # multi-cluster process) would otherwise both claim "dn0" and collide
    # at registration — a `% num_dns`-era assumption that the process holds
    # exactly one cluster.

    def _prefix(self) -> str:
        name = getattr(self.cluster, "name", "")
        return f"{name}:" if name else ""

    def _primary_name(self, i: int) -> str:
        return f"{self._prefix()}dn{i}"

    def _standby_name(self, i: int) -> str:
        return f"{self._prefix()}dn{i}-standby"

    def _standby_handler(self, i: int):
        def handle(src: str, payload) -> None:
            standby = self._standbys[i]
            kind = payload[0]
            if kind == "commit":
                standby.apply(payload[1])
            elif kind == "prepare":
                standby.stage_prepare(payload[1], payload[2])
            elif kind == "resolve":
                standby.resolve_prepared(payload[1], payload[2])
        return handle

    def _wire(self, i: int, dn: DataNode) -> None:
        dn.replication_hook = lambda redo: self._ship_commit(i, redo)
        dn.prepare_hook = lambda gxid, redo: self._ship_prepare(i, gxid, redo)
        dn.resolve_hook = lambda gxid, outcome: self._ship_resolve(
            i, gxid, outcome)

    def _fire(self, failpoint: str, **ctx) -> None:
        faults = getattr(self.cluster, "faults", None)
        if faults is not None:
            faults.fire(failpoint, **ctx)

    # -- shipping -----------------------------------------------------------

    def _ship_commit(self, i: int, redo: List[RedoOp]) -> None:
        payload = ("commit", redo)
        try:
            self._fire(FP_REPLICATE, dn=i)
            self.fabric.send(self._primary_name(i), self._standby_name(i),
                             payload, size_bytes=16 * len(redo))
        except (NetworkError, InjectedTimeout):
            # Replication lag: the commit is acknowledged locally; the
            # shipment queues until the link heals.
            self._pending[i].append(payload)

    def _ship_prepare(self, i: int, gxid: int, redo: List[RedoOp]) -> None:
        # No fallback here: prepare is a durability promise.  An unreachable
        # standby means the node cannot keep it, so it votes no.  (An
        # injected *timeout* propagates as-is — the coordinator's retry
        # loop treats it like any lost RPC.)
        self._fire(FP_PREPARE_SHIP, dn=i, gxid=gxid)
        try:
            self.fabric.send(self._primary_name(i), self._standby_name(i),
                             ("prepare", gxid, redo),
                             size_bytes=16 * len(redo))
        except NetworkError:
            raise TransactionAborted(
                f"dn{i} cannot reach its standby; prepare refused") from None

    def _ship_resolve(self, i: int, gxid: int, outcome: str) -> None:
        payload = ("resolve", gxid, outcome)
        try:
            self.fabric.send(self._primary_name(i), self._standby_name(i),
                             payload)
        except NetworkError:
            self._pending[i].append(payload)

    # -- partitions ---------------------------------------------------------

    def partition_standby(self, dn_index: int) -> None:
        """Cut the DN↔standby link (replication lag starts accruing)."""
        self.fabric.disconnect(self._primary_name(dn_index),
                               self._standby_name(dn_index))
        if self.cluster.obs is not None:
            self.cluster.obs.alerts.raise_alert(
                source="ha", severity="warning",
                message=f"dn{dn_index} standby link partitioned",
                t_us=self.cluster.obs.clock.now_us,
                key=f"ha_partition:dn{dn_index}")

    def heal_standby(self, dn_index: int) -> None:
        """Restore the link and drain the lag queue in order."""
        self.fabric.reconnect(self._primary_name(dn_index),
                              self._standby_name(dn_index))
        self._drain(dn_index)

    def standby_partitioned(self, dn_index: int) -> bool:
        return not self.fabric.reachable(self._primary_name(dn_index),
                                         self._standby_name(dn_index))

    def replication_lag(self, dn_index: int) -> int:
        """Shipments the standby has not received (transactions behind)."""
        return len(self._pending[dn_index])

    def _drain(self, dn_index: int) -> None:
        pending, self._pending[dn_index] = self._pending[dn_index], []
        for payload in pending:
            self.fabric.send(self._primary_name(dn_index),
                             self._standby_name(dn_index), payload)

    # -- membership ----------------------------------------------------------

    def attach_node(self, dn_index: int) -> None:
        """Stand up replication for a freshly added data node.

        Called by :meth:`MppCluster.add_data_node` — mirrors the per-node
        constructor block: a new standby pre-seeded with every catalog
        table, fabric endpoints for both names, and the redo/prepare/resolve
        hooks wired to the shipping path.
        """
        if dn_index != len(self._standbys):
            raise ConfigError(
                f"attach_node out of order: expected dn{len(self._standbys)}, "
                f"got dn{dn_index}")
        dn = self.cluster.dns[dn_index]
        standby = StandbyReplica(f"{dn.node_id}-standby")
        for table in self.cluster.catalog.tables():
            standby.ensure_table(self.cluster.catalog.schema(table).name)
        self._standbys.append(standby)
        self._pending[dn_index] = []
        self.fabric.register(self._primary_name(dn_index),
                             lambda src, payload: None)
        self.fabric.register(self._standby_name(dn_index),
                             self._standby_handler(dn_index))
        self.fabric.connect(self._primary_name(dn_index),
                            self._standby_name(dn_index), self._lan_us)
        self._wire(dn_index, dn)

    def detach_node(self, dn_index: int) -> None:
        """Stop replicating for a retired data node.

        The node keeps its index (and its drained, empty shard) but no
        longer ships redo; queued lag shipments are dropped — the retired
        node owns no slots, so there is nothing left to protect.
        """
        dn = self.cluster.dns[dn_index]
        dn.replication_hook = None
        dn.prepare_hook = None
        dn.resolve_hook = None
        self._pending[dn_index] = []
        self.fabric.disconnect(self._primary_name(dn_index),
                               self._standby_name(dn_index))

    # -- bookkeeping ---------------------------------------------------------

    def standby(self, dn_index: int) -> StandbyReplica:
        return self._standbys[dn_index]

    def register_table(self, name: str) -> None:
        """Call after CREATE TABLE so standbys know the table."""
        for standby in self._standbys:
            standby.ensure_table(name)

    # -- failover ------------------------------------------------------------

    def fail_and_promote(self, dn_index: int, force: bool = False) -> FailoverReport:
        """Kill a data node and promote its standby in place.

        The replacement node has fresh local XIDs and an empty LCO — exactly
        what a restarted PostgreSQL-style node would have — and rejoins the
        cluster at the same shard position.  Committed state is restored
        from the standby; prepared transactions staged on the standby are
        re-instated as PREPARED so recovery can resolve them by the GTM's
        decision; in-flight globals whose undecided writes died here are
        poisoned so their coordinators fail cleanly.

        Raises :class:`NetworkError` if the standby is partitioned while
        lagging (promotion would lose acknowledged commits) unless
        ``force=True``.
        """
        if not (0 <= dn_index < len(self.cluster.dns)):
            raise ConfigError(f"no data node {dn_index}")
        old = self.cluster.dns[dn_index]
        standby = self._standbys[dn_index]
        gtm = self.cluster.gtm

        if self._pending[dn_index]:
            if self.standby_partitioned(dn_index) and not force:
                raise NetworkError(
                    f"dn{dn_index} standby is partitioned and "
                    f"{len(self._pending[dn_index])} transactions behind; "
                    "promotion would lose committed data")
            if not self.standby_partitioned(dn_index):
                self._drain(dn_index)   # reachable again: catch up first
            else:
                self._pending[dn_index].clear()   # forced: accept the loss

        inflight = old.ltm.active_count

        # Poison in-flight global handles that touched this node and whose
        # outcome is not yet decided: their writes here died with the node.
        # (GTM-committed transactions are left alone — the staged prepares
        # below carry their writes onto the replacement.)
        poisoned = 0
        registry = getattr(self.cluster, "_inflight_globals", {})
        for txn in list(registry.values()):
            if dn_index in getattr(txn, "_local_xid", {}):
                if txn.poison(f"participant dn{dn_index} failed over",
                              failed_dn=dn_index):
                    poisoned += 1

        replacement = DataNode(old.node_id, dn_index,
                               obs=getattr(self.cluster, "obs", None))
        rows_restored = 0
        tables = 0
        for table in self.cluster.catalog.tables():
            schema = self.cluster.catalog.schema(table)
            replacement.create_table(schema)
            tables += 1
        # Restore committed state under one recovery transaction.
        xid = replacement.begin()
        snapshot = replacement.local_snapshot()
        for table in self.cluster.catalog.tables():
            schema = self.cluster.catalog.schema(table)
            for key, values in standby.rows(schema.name).items():
                replacement.insert(schema.name, values, xid, snapshot)
                rows_restored += 1
        replacement.commit(xid)
        # Recovery writes must not re-ship to the standby (it has them).
        replacement._redo.clear()  # noqa: SLF001

        # Resolve staged prepares against the GTM's decision record.  GTM-
        # aborted stages are discarded; GTM-*committed* stages roll forward
        # right here (the standard restart-recovery move) — committing them
        # immediately, in stage order, lets a staged transaction that built
        # on an earlier GTM-committed stage (via UPGRADE) replay cleanly on
        # top of it.  Undecided stages are re-instated as PREPARED for
        # ``resolve_in_doubt`` to settle.  Hooks are not wired yet, so
        # nothing re-ships during the replay.
        reinstated = 0
        rolled_forward = 0
        dropped = 0
        staged = standby.prepared_gxids()       # stage order = data order

        def replay(gxid: int) -> int:
            # Only ops no later write superseded: the restored committed
            # rows already embed overwritten staged writes (the overwriting
            # transaction built on them via UPGRADE), so replaying the
            # stale redo would roll those keys backwards.
            redo = standby.unsuperseded_redo(gxid)
            lxid = replacement.begin(gxid=gxid)
            snap = replacement.local_snapshot()
            for op in redo:
                if op.op == "insert":
                    replacement.insert(op.table, op.values, lxid, snap)
                elif op.op == "update":
                    replacement.update(op.table, op.key, op.values, lxid, snap)
                elif op.op == "delete":
                    replacement.delete(op.table, op.key, lxid, snap)
            return lxid

        for gxid in [g for g in staged if gtm.is_committed(g)]:
            lxid = replay(gxid)
            replacement.commit(lxid)
            replacement._redo.clear()  # noqa: SLF001 - recovery, not traffic
            standby.resolve_prepared(gxid, "commit")
            rolled_forward += 1
        for gxid in staged:
            if gtm.is_committed(gxid):
                continue                        # rolled forward above
            if not gtm.clog.is_in_doubt(gxid):
                standby.resolve_prepared(gxid, "abort")
                dropped += 1
                continue
            replacement.ltm.prepare(replay(gxid))
            reinstated += 1

        self.cluster.dns[dn_index] = replacement
        old.replication_hook = None
        old.prepare_hook = None
        old.resolve_hook = None
        old.crashed = True

        # Fabric rename: the dead primary's endpoint goes away and the
        # replacement re-registers under the same name — which must not
        # inherit the old endpoint's links or cuts (Fabric.unregister
        # cleans them up).
        self.fabric.unregister(self._primary_name(dn_index))
        self.fabric.register(self._primary_name(dn_index),
                             lambda src, payload: None)
        self.fabric.connect(self._primary_name(dn_index),
                            self._standby_name(dn_index), self._lan_us)
        self._wire(dn_index, replacement)

        # A shard that had degraded to read-only is writable again.
        if hasattr(self.cluster, "clear_shard_read_only"):
            self.cluster.clear_shard_read_only(dn_index)

        report = FailoverReport(old.node_id, tables, rows_restored, inflight,
                                prepared_reinstated=reinstated,
                                inflight_poisoned=poisoned,
                                stages_dropped=dropped,
                                stages_rolled_forward=rolled_forward)
        self.failovers.append(report)
        if self.cluster.obs is not None:
            self.cluster.obs.metrics.counter("ha.failovers").inc()
            self.cluster.obs.alerts.raise_alert(
                source="ha", severity="critical",
                message=(f"dn{dn_index} failed over: {rows_restored} rows "
                         f"restored, {reinstated} prepared re-instated"),
                t_us=self.cluster.obs.clock.now_us,
                key=f"ha_failover:dn{dn_index}")
        return report
