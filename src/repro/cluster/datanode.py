"""Data nodes (DNs).

A data node owns one shard of every hash-distributed table (and a full copy
of replicated tables), a local transaction manager, and the MVCC heaps.  It
"maintains the local ACID properties" (paper, Sec. II): all tuple-level
reads and writes happen here under a snapshot supplied by the caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.common.errors import CatalogError, ShardReadOnly
from repro.storage.heap import MvccHeap
from repro.storage.table import TableSchema
from repro.txn.manager import LocalTransactionManager
from repro.txn.snapshot import Snapshot
from repro.txn.status import TxnStatus
from repro.txn.xid import INVALID_XID


@dataclass(frozen=True)
class RedoOp:
    """One logical write, as shipped to a standby replica on commit."""

    op: str                      # 'insert' | 'update' | 'delete'
    table: str
    key: object
    values: Optional[Dict[str, object]] = None


class DataNode:
    """One shard server: local XIDs, local clog, local heaps."""

    def __init__(self, node_id: str, index: int, obs=None):
        self.node_id = node_id
        self.index = index
        self.ltm = LocalTransactionManager(node_id)
        self._heaps: Dict[str, MvccHeap] = {}
        self._schemas: Dict[str, TableSchema] = {}
        self._redo: Dict[int, List[RedoOp]] = {}
        #: Invoked with a committed transaction's redo ops (HA log shipping).
        self.replication_hook: Optional[Callable[[List[RedoOp]], None]] = None
        #: Invoked with (gxid, redo) at prepare time — 2PC's durability point.
        #: The standby stages the redo so a GTM-committed-but-unconfirmed
        #: write survives this node's crash.  May raise to veto the prepare.
        self.prepare_hook: Optional[Callable[[int, List[RedoOp]], None]] = None
        #: Invoked with (gxid, 'commit'|'abort') when a *prepared* global
        #: transaction resolves, so the standby applies or drops its staged
        #: redo instead of receiving a duplicate commit shipment.
        self.resolve_hook: Optional[Callable[[int, str], None]] = None
        #: Set by the fault injector's ``crash_dn`` action: a crashed node
        #: answers no RPC until failover replaces it.
        self.crashed = False
        #: Set by graceful degradation when this shard's node died with no
        #: promotable standby: reads keep working, writes are refused.
        self.read_only = False
        #: Set when the node is drained and removed from the shard map's
        #: active membership (scale-in retires indices in place rather than
        #: renumbering survivors); routing/scans/HTAP/chaos all skip it.
        self.retired = False
        #: Optional :class:`repro.obs.Observability` (set by the cluster);
        #: tuple reads, writes and scan rows are counted into it.
        self.obs = obs
        #: Interned counter objects, resolved from the registry once per
        #: metric name; every later ``_note`` is a dict probe + ``inc``.
        self._counters: Dict[str, object] = {}
        # Per-statement tuple counts are kept as plain integers on the node
        # (a bump is one attribute increment, obs on or off) and folded into
        # the registry's dn.read / exec.rows / dn.apply / dn.scan counters
        # by a scrape-time collector — so ``sys.metrics`` and snapshots stay
        # exact while tuple access never touches a metric object.
        self._n_read = 0
        self._n_rows = 0
        self._n_apply = 0
        self._n_scan = 0
        if obs is not None:
            metrics = obs.metrics
            self._c_read = metrics.counter("dn.read")
            self._c_rows = metrics.counter("exec.rows")
            self._c_apply = metrics.counter("dn.apply")
            self._c_scan = metrics.counter("dn.scan")
            metrics.add_collector(self._flush_tuple_counts)
        else:
            self._c_read = self._c_rows = None
            self._c_apply = self._c_scan = None
        #: Optional :class:`repro.htap.store.HtapNodeState` (attached by
        #: the cluster's HtapManager): per-table delta stores + frozen
        #: column chunks.  ``None`` on replacement nodes until the merge
        #: daemon re-seeds them, and always ``None`` with HTAP disabled.
        self.htap = None

    def _flush_tuple_counts(self) -> None:
        """Scrape-time collector: pending tuple counts → registry counters.

        Registry resets zero the counter objects in place (the refs stay
        valid), and ``MetricsRegistry.reset`` drains collectors first, so
        pendings never leak across ``reset_telemetry``.
        """
        n = self._n_read
        if n:
            self._c_read._value += n
            self._n_read = 0
        n = self._n_rows
        if n:
            self._c_rows._value += n
            self._n_rows = 0
        n = self._n_apply
        if n:
            self._c_apply._value += n
            self._n_apply = 0
        n = self._n_scan
        if n:
            self._c_scan._value += n
            self._n_scan = 0

    def _note(self, metric: str, amount: float = 1.0) -> None:
        obs = self.obs
        if obs is None:
            return
        counter = self._counters.get(metric)
        if counter is None:
            counter = self._counters[metric] = obs.metrics.counter(metric)
        # Counter.inc minus the call and the can't-decrease guard: every
        # amount noted here is a non-negative row/tuple count.
        counter._value += amount

    # -- DDL ---------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        if schema.name in self._heaps:
            raise CatalogError(f"{self.node_id}: table {schema.name} already exists")
        self._heaps[schema.name] = MvccHeap(f"{self.node_id}.{schema.name}")
        self._schemas[schema.name] = schema

    def drop_table(self, name: str) -> None:
        self._heaps.pop(name, None)
        self._schemas.pop(name, None)

    def heap(self, table: str) -> MvccHeap:
        try:
            return self._heaps[table]
        except KeyError:
            raise CatalogError(f"{self.node_id}: no table {table!r}") from None

    def has_table(self, table: str) -> bool:
        return table in self._heaps

    # -- transaction control ------------------------------------------------

    def begin(self, gxid: Optional[int] = None) -> int:
        return self.ltm.begin(gxid)

    def local_snapshot(self) -> Snapshot:
        return self.ltm.local_snapshot()

    def prepare(self, xid: int) -> None:
        # Stage the redo on the standby *before* the local prepare record:
        # prepare is 2PC's durability promise, so once this node votes yes
        # the write must survive its crash.  A failed shipment (standby
        # partitioned) propagates as the node voting no.
        gxid = self.ltm.gxid_for(xid)
        if gxid is not None and self.prepare_hook is not None:
            self.prepare_hook(gxid, list(self._redo.get(xid, [])))
        self.ltm.prepare(xid)

    def commit(self, xid: int) -> None:
        was_prepared = self.ltm.clog.get(xid) is TxnStatus.PREPARED
        gxid = self.ltm.gxid_for(xid)
        self.ltm.commit(xid)
        redo = self._redo.pop(xid, None)
        if redo and self.htap is not None:
            # Committed writes (and only those) feed the HTAP delta store,
            # in commit order — the merge daemon's input stream.
            now_us = self.obs.clock.now_us if self.obs is not None else 0.0
            self.htap.capture_commit(self, xid, redo, now_us)
        if was_prepared and gxid is not None and self.resolve_hook is not None:
            # The standby already holds this transaction's redo (staged at
            # prepare); resolving the stage replaces the commit shipment.
            self.resolve_hook(gxid, "commit")
        elif redo and self.replication_hook is not None:
            self.replication_hook(redo)

    def abort(self, xid: int) -> None:
        was_prepared = self.ltm.clog.get(xid) is TxnStatus.PREPARED
        gxid = self.ltm.gxid_for(xid)
        # Eagerly roll back heap writes so aborted versions never linger;
        # the transaction's write set pinpoints exactly what to undo.
        for table, key in self.ltm.write_set(xid).frozen():
            self.heap(table).abort_key(key, xid)
        self.ltm.abort(xid)
        self._redo.pop(xid, None)
        if was_prepared and gxid is not None and self.resolve_hook is not None:
            self.resolve_hook(gxid, "abort")

    # -- tuple access ---------------------------------------------------------

    def read(self, table: str, key: object, snapshot: Snapshot,
             xid: int = INVALID_XID) -> Optional[Dict[str, object]]:
        row = self.heap(table).read(key, snapshot, self.ltm.clog, xid)
        self._n_read += 1
        if row is not None:
            self._n_rows += 1
        return row

    def _require_writable(self) -> None:
        if self.read_only:
            raise ShardReadOnly(
                f"{self.node_id} is degraded to read-only (no standby)")

    def insert(self, table: str, row: Dict[str, object], xid: int,
               snapshot: Snapshot) -> None:
        self._require_writable()
        schema = self._schemas[table]
        coerced = schema.coerce_row(row)
        key = schema.key_of(coerced)
        self.heap(table).insert(key, coerced, xid, snapshot, self.ltm.clog)
        self.ltm.record_write(xid, table, key)
        self._n_apply += 1
        self._redo.setdefault(xid, []).append(
            RedoOp("insert", table, key, coerced))

    def update(self, table: str, key: object, values: Dict[str, object],
               xid: int, snapshot: Snapshot) -> None:
        self._require_writable()
        heap = self.heap(table)
        current = heap.read(key, snapshot, self.ltm.clog, xid)
        if current is None:
            from repro.common.errors import StorageError

            raise StorageError(f"{self.node_id}.{table}: key {key!r} not visible")
        current.update(values)
        coerced = self._schemas[table].coerce_row(current)
        heap.update(key, coerced, xid, snapshot, self.ltm.clog)
        self.ltm.record_write(xid, table, key)
        self._n_apply += 1
        self._redo.setdefault(xid, []).append(
            RedoOp("update", table, key, coerced))

    def delete(self, table: str, key: object, xid: int, snapshot: Snapshot) -> None:
        self._require_writable()
        self.heap(table).delete(key, xid, snapshot, self.ltm.clog)
        self.ltm.record_write(xid, table, key)
        self._n_apply += 1
        self._redo.setdefault(xid, []).append(RedoOp("delete", table, key))

    def scan(self, table: str, snapshot: Snapshot,
             xid: int = INVALID_XID) -> Iterator[Tuple[object, Dict[str, object]]]:
        self._n_scan += 1
        for item in self.heap(table).scan(snapshot, self.ltm.clog, xid):
            self._n_rows += 1
            yield item

    def column_store_snapshot(self, table: str, snapshot: Snapshot,
                              xid: int = INVALID_XID, row_filter=None):
        """This node's slice of ``table`` as a column store, under MVCC.

        Plan fragments on column-oriented tables run the vectorized kernels
        against this snapshot instead of iterating the heap row by row.

        HTAP-enabled tables are served from the persistent frozen chunk
        set, patched with the snapshot-visible delta entries — no per-query
        heap walk.  Tables without HTAP state (or snapshots the chunk set
        cannot serve soundly) fall back to the legacy cold rebuild, counted
        as ``htap.cold_rebuilds`` when HTAP is on.

        ``row_filter`` (values -> bool) forces the heap-walk path with rows
        dropped when it returns False.  It exists for the transient
        rebalance window, where a shard-map exclusion hides a slot's
        partially-copied (or flipped-but-not-yet-truncated) rows on this
        node; frozen HTAP chunks may still contain them, so composing is
        not sound here.  Steady state always passes ``None``.
        """
        if row_filter is not None:
            from repro.storage.colstore import ColumnStore

            store = ColumnStore(self._schemas[table], compress=False)
            store.append_rows(values
                              for _key, values in self.scan(table, snapshot, xid)
                              if row_filter(values))
            store.flush()
            return store
        state = self.htap
        if state is not None and table in state.tables:
            store = state.tables[table].compose(self, snapshot, xid)
            if store is not None:
                # Telemetry parity with the heap walk: one scan statement,
                # one exec row per emitted row.
                self._n_scan += 1
                self._n_rows += store.row_count
                return store
            self._note("htap.cold_rebuilds")
        from repro.storage.colstore import ColumnStore

        store = ColumnStore(self._schemas[table], compress=False)
        store.append_rows(values for _key, values in self.scan(table, snapshot, xid))
        store.flush()
        return store

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DataNode({self.node_id!r}, tables={sorted(self._heaps)})"
