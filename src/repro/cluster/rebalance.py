"""Online resharding: move hash slots between DNs while writes continue.

The coordinator drives the shard map's slot state machine through the
Greenplum-expansion-style move protocol the issue describes:

1. **begin** — mark each moving slot in the shard map.  From this commit
   on, every transaction that writes the slot *double-writes* source and
   target (2PC makes the pair atomic; single-shard writes promote), and
   the target's partial copy of the slot is hidden from scans.
2. **copy** — snapshot-copy the slot's rows from the source heap to the
   target through the normal insert/commit path, so the copy ships to the
   target's standby and feeds its HTAP delta like any other write.  Keys
   already visible on the target (landed by a double-write) are skipped.
3. **catch-up** — the double-write window stays open while the caller's
   workload keeps committing (``on_catchup``); nothing else to replay.
4. **flip** — atomically re-own the slots (one shard-map version bump, so
   cached fragment plans that baked the old DN targets are invalidated)
   and swap the scan exclusion to the source's now-stale copy.
5. **truncate** — delete the source copy through the normal delete path
   (ships to the source's standby, folds out of its HTAP store) and
   re-open the fast scan paths.

Every phase runs on simulated time with storage I/O charged as
``rebalance_copy`` / ``rebalance_truncate`` wait events, and the
``rebalance.copy`` / ``rebalance.flip`` failpoints sit exactly where a
coordinator death hurts: mid-copy (recovery must roll the move *back*)
and pre-flip (copy complete — recovery rolls the move *forward*).  A
slot's owner is a single shard-map cell either way, so ownership is
never ambiguous.

``sys.rebalance`` serves the move history; ``sys.shard_map`` the live
slot table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.faults.injector import (
    FP_REBALANCE_COPY,
    FP_REBALANCE_FLIP,
    CoordinatorCrash,
    InjectedTimeout,
)
from repro.htap.manager import _row_bytes
from repro.obs.waits import WAIT_REBALANCE_COPY, WAIT_REBALANCE_TRUNCATE
from repro.storage.table import Distribution
from repro.wlm.memory import SPILL_BYTE_US

# Move lifecycle (sys.rebalance "state" column).
ST_COPYING = "copying"
ST_CATCHUP = "catchup"
ST_FLIPPED = "flipped"
ST_DONE = "done"
ST_ABORTED = "aborted"

#: States recovery must resolve after a coordinator crash.
_UNSETTLED = (ST_COPYING, ST_CATCHUP, ST_FLIPPED)


class RebalanceError(Exception):
    """Invalid rebalance request (unknown DN, overlapping move, ...)."""


@dataclass
class Move:
    """One batched slot move: ``slots`` from ``source`` to ``target``."""

    move_id: int
    source: int
    target: int
    slots: Tuple[int, ...]
    state: str = ST_COPYING
    rows_copied: int = 0
    rows_truncated: int = 0
    t_begin_us: float = 0.0
    t_flip_us: float = 0.0
    t_end_us: float = 0.0
    #: Slots whose double-write window is still open (shrinks at flip).
    pending: Tuple[int, ...] = field(default_factory=tuple)


class RebalanceCoordinator:
    """Adds/removes DNs online by moving shard-map slots between them."""

    def __init__(self, cluster):
        self.cluster = cluster
        cluster.rebalance = self
        if cluster.obs is not None:
            cluster.obs.bind_rebalance(self)
        self.moves: List[Move] = []
        self._next_move_id = 0
        self.slots_moved = 0
        self.moves_completed = 0
        self.moves_aborted = 0

    # ------------------------------------------------------------------
    # high-level operations

    def add_dn(self, on_catchup=None) -> int:
        """Provision a new DN and rebalance slots onto it, fully online."""
        index = self.cluster.add_data_node()
        self.rebalance(on_catchup=on_catchup)
        return index

    def remove_dn(self, dn_index: int, on_catchup=None) -> int:
        """Drain every slot off a DN, then retire it from membership."""
        shard_map = self._shard_map()
        if dn_index not in shard_map.members():
            raise RebalanceError(f"dn{dn_index} is not an active member")
        survivors = [dn for dn in shard_map.members() if dn != dn_index]
        if not survivors:
            raise RebalanceError("cannot drain the last DN")
        # Spread the drained slots to keep the survivors balanced: fill
        # each survivor up to its post-removal fair share, lowest index
        # first (deterministic).
        counts = shard_map.slot_counts()
        base, extra = divmod(shard_map.num_slots, len(survivors))
        desired = {dn: base + (1 if i < extra else 0)
                   for i, dn in enumerate(survivors)}
        plan: Dict[int, List[int]] = {}
        targets = [dn for dn in survivors
                   for _ in range(max(0, desired[dn] - counts[dn]))]
        for slot, target in zip(shard_map.slots_owned_by(dn_index), targets):
            plan.setdefault(target, []).append(slot)
        moved = 0
        for target in sorted(plan):
            moved += self.move_slots(plan[target], target,
                                     on_catchup=on_catchup)
        self.cluster.retire_data_node(dn_index)
        return moved

    def rebalance(self, on_catchup=None) -> int:
        """Move slots until every member owns its fair share."""
        shard_map = self._shard_map()
        desired = shard_map.balanced_assignment()
        counts = shard_map.slot_counts()
        receivers = [dn for dn in shard_map.members()
                     for _ in range(max(0, desired[dn] - counts[dn]))]
        donors = [dn for dn in shard_map.members()
                  if counts[dn] > desired[dn]]
        # Each donor sheds an evenly *strided* subset of its owned slots
        # (deterministic): real keys cluster in the low slots (small ints
        # hash by modulo), so shedding a spread — rather than the top of
        # the slot range — keeps the post-move row balance close to the
        # slot balance.  The quarter-step offset keeps every donor from
        # leading with its lowest slot, which would pile the dense low
        # slots onto the receiver.  Moves are batched per (source, target).
        plan: Dict[Tuple[int, int], List[int]] = {}
        cursor = 0
        for source in donors:
            surplus = counts[source] - desired[source]
            owned = shard_map.slots_owned_by(source)
            step = len(owned) / surplus
            for j in range(surplus):
                if cursor >= len(receivers):
                    break
                slot = owned[int((j + 0.25) * step)]
                plan.setdefault((source, receivers[cursor]), []).append(slot)
                cursor += 1
        moved = 0
        for (_source, target) in sorted(plan):
            moved += self.move_slots(plan[(_source, target)], target,
                                     on_catchup=on_catchup)
        return moved

    def move_slots(self, slots, target: int, on_catchup=None) -> int:
        """Run one move end to end: begin, copy, catch-up, flip, truncate.

        ``on_catchup`` (no-arg callable) runs inside the double-write
        window, after the snapshot copy — benchmarks and tests use it to
        keep OLTP committing mid-move.  Returns the slots moved.
        """
        move = self.begin(slots, target)
        self.copy(move)
        if on_catchup is not None:
            on_catchup()
        self.flip(move)
        self.truncate(move)
        return len(move.slots)

    # ------------------------------------------------------------------
    # stepwise protocol (chaos tests drive these directly)

    def begin(self, slots, target: int) -> Move:
        """Open the double-write window for a batch of same-source slots."""
        shard_map = self._shard_map()
        slots = sorted(set(int(s) for s in slots))
        if not slots:
            raise RebalanceError("no slots to move")
        sources = {shard_map.owner_of_slot(s) for s in slots}
        if len(sources) != 1:
            raise RebalanceError(
                f"slots {slots} span sources {sorted(sources)}; "
                "batch one source per move")
        source = sources.pop()
        if target == source:
            raise RebalanceError(f"slots already live on dn{target}")
        for slot in slots:
            shard_map.begin_move(slot, target)
        move = Move(move_id=self._next_move_id, source=source, target=target,
                    slots=tuple(slots), state=ST_COPYING,
                    t_begin_us=self._now_us(), pending=tuple(slots))
        self._next_move_id += 1
        self.moves.append(move)
        self._count("rebalance.moves_started")
        return move

    def copy(self, move: Move) -> None:
        """Snapshot-copy the moving slots' rows onto the target."""
        self._require_state(move, ST_COPYING)
        cluster = self.cluster
        shard_map = self._shard_map()
        source = cluster.dns[move.source]
        target = cluster.dns[move.target]
        moving = frozenset(move.slots)
        faults = getattr(cluster, "faults", None)
        for table in cluster.catalog.tables():
            schema = cluster.catalog.schema(table)
            if schema.distribution is Distribution.REPLICATION:
                continue
            delay_us = 0.0
            if faults is not None:
                # A coordinator crash propagates with the move left in
                # copying state (recovery rolls it back); timeouts and
                # drops abort this move cleanly.
                try:
                    outcome = faults.fire(FP_REBALANCE_COPY, dn=move.target,
                                          table=table)
                except (InjectedTimeout, CoordinatorCrash):
                    self._count("rebalance.copy_faults")
                    raise
                if outcome.dropped:
                    self._count("rebalance.copy_faults")
                    raise InjectedTimeout(
                        f"rebalance copy shipment dropped at {table}",
                        dn_index=move.target)
                delay_us = outcome.delay_us
            column = schema.distribution_column
            slot_of = shard_map.slot_of_value
            rows = [(key, values) for key, values
                    in source.scan(table, source.local_snapshot())
                    if slot_of(values[column]) in moving]
            copied = 0
            if rows:
                xid = target.begin()
                snapshot = target.local_snapshot()
                for key, values in rows:
                    if target.read(table, key, snapshot, xid) is not None:
                        continue   # a double-write already landed it
                    target.insert(table, dict(values), xid, snapshot)
                    copied += 1
                target.commit(xid)
            move.rows_copied += copied
            self._charge(WAIT_REBALANCE_COPY, move.target,
                         copied * _row_bytes(schema), delay_us)
        move.state = ST_CATCHUP
        self._count("rebalance.slots_copied", float(len(move.slots)))

    def flip(self, move: Move) -> None:
        """Atomically re-own the slots; double-write window closes."""
        self._require_state(move, ST_CATCHUP)
        faults = getattr(self.cluster, "faults", None)
        if faults is not None:
            try:
                outcome = faults.fire(FP_REBALANCE_FLIP, dn=move.target)
            except (InjectedTimeout, CoordinatorCrash):
                self._count("rebalance.flip_faults")
                raise
            if outcome.dropped:
                self._count("rebalance.flip_faults")
                raise InjectedTimeout("rebalance flip request dropped",
                                      dn_index=move.target)
        self._shard_map().flip(move.slots)
        move.pending = ()
        move.state = ST_FLIPPED
        move.t_flip_us = self._now_us()
        self.slots_moved += len(move.slots)
        self._count("rebalance.slots_flipped", float(len(move.slots)))
        if self.cluster.obs is not None:
            self.cluster.obs.alerts.raise_alert(
                source="rebalance", severity="info",
                message=(f"{len(move.slots)} slots flipped "
                         f"dn{move.source}->dn{move.target}"),
                t_us=self._now_us(),
                key=f"rebalance.flip:{move.move_id}")

    def truncate(self, move: Move) -> None:
        """Delete the source's stale copy and re-open fast scans."""
        self._require_state(move, ST_FLIPPED)
        removed = self._purge(move.source, move.slots,
                              WAIT_REBALANCE_TRUNCATE)
        move.rows_truncated = removed
        shard_map = self._shard_map()
        for slot in move.slots:
            shard_map.clear_excluded(move.source, slot)
        move.state = ST_DONE
        move.t_end_us = self._now_us()
        self.moves_completed += 1

    def abort(self, move: Move) -> None:
        """Roll a not-yet-flipped move back: drop the target's partial copy."""
        if move.state not in (ST_COPYING, ST_CATCHUP):
            raise RebalanceError(
                f"move {move.move_id} is {move.state}; only unflipped moves "
                "can abort")
        self._purge(move.target, move.slots, WAIT_REBALANCE_COPY)
        shard_map = self._shard_map()
        for slot in move.slots:
            shard_map.abort_move(slot)
            shard_map.clear_excluded(move.target, slot)
        move.pending = ()
        move.state = ST_ABORTED
        move.t_end_us = self._now_us()
        self.moves_aborted += 1
        self._count("rebalance.moves_aborted")

    def recover(self) -> int:
        """Resolve moves a crashed coordinator left behind.

        * ``copying`` — the target copy may be partial: roll *back*.
        * ``catchup`` — copy complete, flip not issued: roll *forward*.
        * ``flipped`` — owner already flipped: finish the truncate.

        The slot owner is a single shard-map cell throughout, so there is
        never an ambiguous-ownership window to resolve.  Returns the
        number of moves settled.
        """
        settled = 0
        for move in self.moves:
            if move.state not in _UNSETTLED:
                continue
            if move.state == ST_COPYING:
                self.abort(move)
            else:
                if move.state == ST_CATCHUP:
                    self.flip(move)
                self.truncate(move)
            settled += 1
        if settled:
            self._count("rebalance.moves_recovered", float(settled))
        return settled

    def active_moves(self) -> List[Move]:
        return [m for m in self.moves if m.state in _UNSETTLED]

    # ------------------------------------------------------------------
    # internals

    def _purge(self, dn_index: int, slots, wait_event: str) -> int:
        """Delete every row of ``slots`` on one node via the normal path."""
        cluster = self.cluster
        shard_map = self._shard_map()
        node = cluster.dns[dn_index]
        doomed = frozenset(slots)
        removed = 0
        for table in cluster.catalog.tables():
            schema = cluster.catalog.schema(table)
            if schema.distribution is Distribution.REPLICATION:
                continue
            column = schema.distribution_column
            slot_of = shard_map.slot_of_value
            keys = [key for key, values
                    in node.scan(table, node.local_snapshot())
                    if slot_of(values[column]) in doomed]
            if not keys:
                continue
            self._expel_abandoned_writers(node, table, keys)
            xid = node.begin()
            snapshot = node.local_snapshot()
            try:
                for key in keys:
                    node.delete(table, key, xid, snapshot)
            except Exception:
                # A purge that trips over an unresolved writer (e.g. a
                # PREPARED transaction a dead coordinator left behind) must
                # not leave its own half-done deletes active — roll back so
                # recovery's retry starts clean after in-doubt resolution.
                node.abort(xid)
                raise
            node.commit(xid)
            removed += len(keys)
            self._charge(wait_event, dn_index,
                         len(keys) * _row_bytes(schema), 0.0)
        return removed

    def _expel_abandoned_writers(self, node, table: str, keys) -> None:
        """Abort zombie writers whose uncommitted versions block a purge.

        A coordinator that died mid-statement leaves its local
        transactions ACTIVE — never prepared, so in-doubt resolution
        skips them — yet their heap versions still win first-updater-wins
        against the truncate's deletes.  Any such writer whose global
        transaction is not committed at the GTM is presumed dead: decide
        abort at the GTM first (so a late coordinator cannot still
        commit), roll the local writes back, and seal the coordinator
        handle.  Purely local in-progress transactions are left alone —
        they belong to a live session, not a dead coordinator.
        """
        gtm = self.cluster.gtm
        registry = getattr(self.cluster, "_inflight_globals", None)
        doomed = {(table, key) for key in keys}
        for local_xid in node.ltm.in_progress_xids():
            gxid = node.ltm.gxid_for(local_xid)
            if gxid is None or gtm.is_committed(gxid):
                continue
            if not any(item in doomed
                       for item in node.ltm.write_set(local_xid).frozen()):
                continue
            if gtm.clog.is_in_doubt(gxid):
                gtm.abort(gxid)
            node.abort(local_xid)
            if registry:
                txn = registry.get(gxid)
                if txn is not None:
                    txn.mark_recovery_aborted()
            self._count("rebalance.writers_expelled")

    def _charge(self, event: str, dn_index: int, volume: int,
                delay_us: float) -> None:
        obs = self.cluster.obs
        if obs is None or (volume <= 0 and delay_us <= 0.0):
            return
        io_us = volume * SPILL_BYTE_US + delay_us
        obs.metrics.counter("rebalance.bytes").inc(float(volume))
        obs.waits.record(event, io_us, session=f"dn{dn_index}")

    def _shard_map(self):
        shard_map = self.cluster.catalog.shard_map
        if shard_map is None:
            raise RebalanceError("cluster has no shard map")
        return shard_map

    @staticmethod
    def _require_state(move: Move, state: str) -> None:
        if move.state != state:
            raise RebalanceError(
                f"move {move.move_id} is {move.state}, expected {state}")

    def _count(self, metric: str, amount: float = 1.0) -> None:
        if self.cluster.obs is not None:
            self.cluster.obs.metrics.counter(metric).inc(amount)

    def _now_us(self) -> float:
        return self.cluster.obs.clock.now_us if self.cluster.obs else 0.0

    # ------------------------------------------------------------------
    # introspection

    def rows(self) -> List[tuple]:
        """Feed for ``sys.rebalance``."""
        return [(m.move_id, m.source, m.target, len(m.slots), m.state,
                 m.rows_copied, m.rows_truncated, m.t_begin_us, m.t_flip_us,
                 m.t_end_us)
                for m in self.moves]

    def reset_history(self) -> None:
        """Drop settled-move history/counters (replay-identity path).

        Active moves survive — they are cluster state, not telemetry.
        """
        self.moves = self.active_moves()
        self.slots_moved = 0
        self.moves_completed = 0
        self.moves_aborted = 0
