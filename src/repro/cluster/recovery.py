"""2PC in-doubt resolution (coordinator-failure recovery).

When a coordinator dies mid-commit, data nodes are left with PREPARED
transactions they cannot unilaterally resolve.  The recovery rule is the
standard presumed-abort protocol, using the GTM's commit log as the
decision record:

* GXID **committed** at the GTM  -> the commit decision was durable before
  the coordinator died: roll the local transaction *forward* (commit),
* GXID **aborted** at the GTM    -> roll back,
* GXID still **active**          -> the coordinator never reached its
  commit point: presume abort — abort at the GTM first (so no late
  coordinator can still commit), then roll back locally.

This is exactly the window GTM-lite's Anomaly 1 lives in; recovery closes
it permanently instead of per-read (UPGRADE handles concurrent readers,
recovery handles the crash).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.cluster.mpp import MppCluster
from repro.common.errors import InvalidTransactionState
from repro.txn.status import TxnStatus


@dataclass
class RecoveryReport:
    rolled_forward: Dict[str, List[int]] = field(default_factory=dict)
    rolled_back: Dict[str, List[int]] = field(default_factory=dict)
    presumed_aborted_gxids: List[int] = field(default_factory=list)

    @property
    def resolved(self) -> int:
        return (sum(len(v) for v in self.rolled_forward.values())
                + sum(len(v) for v in self.rolled_back.values()))


def resolve_in_doubt(cluster: MppCluster) -> RecoveryReport:
    """Resolve every PREPARED transaction on every data node."""
    report = RecoveryReport()
    gtm = cluster.gtm

    # Pass 1: decide undecided GXIDs (presumed abort).  Collect the GXIDs of
    # every prepared local transaction; any still active at the GTM aborts.
    undecided = set()
    for dn in cluster.dns:
        for local_xid in dn.ltm.prepared_xids():
            gxid = dn.ltm.gxid_for(local_xid)
            if gxid is None:
                continue
            if gtm.clog.is_in_doubt(gxid):
                undecided.add(gxid)
    for gxid in sorted(undecided):
        gtm.abort(gxid)
        report.presumed_aborted_gxids.append(gxid)

    # Pass 2: apply each GXID's outcome on every node that prepared it.
    # Snapshot the prepared set per node — ``dn.commit``/``dn.abort`` mutate
    # it mid-loop — and re-check each xid's status at its turn, since
    # resolving one transaction can have already resolved another (standby
    # resolve hooks, replicated-table fan-out).
    for dn in cluster.dns:
        for local_xid in list(dn.ltm.prepared_xids()):
            if dn.ltm.clog.get(local_xid) is not TxnStatus.PREPARED:
                continue
            gxid = dn.ltm.gxid_for(local_xid)
            if gxid is None:
                # A prepared transaction with no global identity cannot
                # exist under either protocol; abort defensively.
                dn.abort(local_xid)
                report.rolled_back.setdefault(dn.node_id, []).append(local_xid)
                continue
            if gtm.is_committed(gxid):
                dn.commit(local_xid)
                report.rolled_forward.setdefault(dn.node_id, []).append(local_xid)
            else:
                dn.abort(local_xid)
                report.rolled_back.setdefault(dn.node_id, []).append(local_xid)

    # Pass 3: seal the coordinator handles of presumed-aborted transactions.
    # A handle abandoned mid-``CommitSteps`` (coordinator crash) or stalled
    # behind a dead participant is still registered with the cluster; mark it
    # aborted so a late ``commit()`` fails cleanly instead of re-driving 2PC.
    registry = getattr(cluster, "_inflight_globals", None)
    if registry:
        for gxid in report.presumed_aborted_gxids:
            txn = registry.get(gxid)
            if txn is not None:
                txn.mark_recovery_aborted()

    if cluster.obs is not None and report.resolved:
        cluster.obs.metrics.counter("recovery.rolled_forward").inc(
            sum(len(v) for v in report.rolled_forward.values()))
        cluster.obs.metrics.counter("recovery.rolled_back").inc(
            sum(len(v) for v in report.rolled_back.values()))
    return report


def in_doubt_count(cluster: MppCluster) -> int:
    """How many prepared transactions are currently awaiting resolution."""
    return sum(len(dn.ltm.prepared_xids()) for dn in cluster.dns)
