"""Cluster-level operational statistics.

Since the `repro.obs` subsystem landed, :class:`ClusterStats` is a thin
facade over :class:`~repro.obs.metrics.MetricsRegistry` counters — the same
counters the :class:`~repro.obs.export.InfoStoreExporter` flushes into the
autonomous information store.  The historical attribute API
(``commits_single_shard`` …, ``as_dict()``, ``reset()``) is preserved so the
Fig. 3 experiment code and the benchmarks are unchanged.
"""

from __future__ import annotations

from typing import Optional

from repro.core.merge import MergeOutcome
from repro.obs.metrics import MetricsRegistry


class ClusterStats:
    """Counters the MPP cluster accumulates while serving transactions."""

    _FIELDS = {
        "commits_single_shard": "txn.commit.single_shard",
        "commits_multi_shard": "txn.commit.multi_shard",
        "aborts_single_shard": "txn.abort.single_shard",
        "aborts_multi_shard": "txn.abort.multi_shard",
        "snapshot_merges": "snapshot.merges",
        "upgrades": "snapshot.upgrades",
        "downgrades": "snapshot.downgrades",
    }

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            field: self.registry.counter(metric)
            for field, metric in self._FIELDS.items()
        }
        # Totals the exporter ships under the canonical engine-metric names.
        self._commit_total = self.registry.counter("txn.commit")
        self._abort_total = self.registry.counter("txn.abort")

    def note_commit(self, multi_shard: bool) -> None:
        name = "commits_multi_shard" if multi_shard else "commits_single_shard"
        self._counters[name].inc()
        self._commit_total.inc()

    def note_abort(self, multi_shard: bool) -> None:
        name = "aborts_multi_shard" if multi_shard else "aborts_single_shard"
        self._counters[name].inc()
        self._abort_total.inc()

    def note_merge(self, outcome: MergeOutcome) -> None:
        self._counters["snapshot_merges"].inc()
        self._counters["upgrades"].inc(len(outcome.upgraded))
        self._counters["downgrades"].inc(len(outcome.downgraded))

    def __getattr__(self, name: str) -> int:
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            return int(counters[name].value)
        raise AttributeError(name)

    @property
    def commits(self) -> int:
        return self.commits_single_shard + self.commits_multi_shard

    @property
    def aborts(self) -> int:
        return self.aborts_single_shard + self.aborts_multi_shard

    def as_dict(self) -> dict:
        return {field: int(counter.value)
                for field, counter in self._counters.items()}

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()
        self._commit_total.reset()
        self._abort_total.reset()
