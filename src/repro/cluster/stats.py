"""Cluster-level operational statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.merge import MergeOutcome


@dataclass
class ClusterStats:
    """Counters the MPP cluster accumulates while serving transactions."""

    commits_single_shard: int = 0
    commits_multi_shard: int = 0
    aborts_single_shard: int = 0
    aborts_multi_shard: int = 0
    snapshot_merges: int = 0
    upgrades: int = 0
    downgrades: int = 0

    def note_commit(self, multi_shard: bool) -> None:
        if multi_shard:
            self.commits_multi_shard += 1
        else:
            self.commits_single_shard += 1

    def note_abort(self, multi_shard: bool) -> None:
        if multi_shard:
            self.aborts_multi_shard += 1
        else:
            self.aborts_single_shard += 1

    def note_merge(self, outcome: MergeOutcome) -> None:
        self.snapshot_merges += 1
        self.upgrades += len(outcome.upgraded)
        self.downgrades += len(outcome.downgraded)

    @property
    def commits(self) -> int:
        return self.commits_single_shard + self.commits_multi_shard

    @property
    def aborts(self) -> int:
        return self.aborts_single_shard + self.aborts_multi_shard

    def as_dict(self) -> dict:
        return {
            "commits_single_shard": self.commits_single_shard,
            "commits_multi_shard": self.commits_multi_shard,
            "aborts_single_shard": self.aborts_single_shard,
            "aborts_multi_shard": self.aborts_multi_shard,
            "snapshot_merges": self.snapshot_merges,
            "upgrades": self.upgrades,
            "downgrades": self.downgrades,
        }

    def reset(self) -> None:
        for name in self.as_dict():
            setattr(self, name, 0)
