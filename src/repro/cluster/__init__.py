"""The FI-MPPDB cluster: coordinator/data nodes, sessions, transactions."""

from repro.cluster.catalog import Catalog
from repro.cluster.ha import FailoverReport, HaManager, StandbyReplica
from repro.cluster.recovery import RecoveryReport, in_doubt_count, resolve_in_doubt
from repro.cluster.datanode import DataNode
from repro.cluster.mpp import MppCluster, Session
from repro.cluster.stats import ClusterStats
from repro.cluster.txn import (
    CommitSteps,
    GlobalTransaction,
    LocalTransaction,
    RetryPolicy,
    TransactionPromotionRequired,
    TxnMode,
)

__all__ = [
    "MppCluster", "Session", "Catalog", "DataNode", "ClusterStats",
    "TxnMode", "LocalTransaction", "GlobalTransaction", "CommitSteps",
    "TransactionPromotionRequired", "RetryPolicy",
]

__all__ += ["HaManager", "StandbyReplica", "FailoverReport",
            "resolve_in_doubt", "in_doubt_count", "RecoveryReport"]
