"""Versioned hash-slot shard map: placement decoupled from cluster size.

The seed wired placement directly as ``hash(key) % num_dns`` inside every
layer that needed a DN index (txn routing, fragment scheduling, HTAP
reseed, chaos helpers), which froze the cluster size at construction.
This module is the single source of truth the issue asked for: a fixed
number of hash slots, each slot owned by exactly one DN, with a version
counter that every consumer (plan cache, fragment lowering) can pin.

Placement compatibility
-----------------------

Values hash to a *slot* with the same function the seed used for DNs
(:func:`repro.storage.table.shard_of_value` — ints by modulo, everything
else by crc32), just with ``num_slots`` as the modulus.  ``num_slots`` is
chosen as a multiple of the initial DN count (``num_dns * 64``, i.e. 256
slots for the canonical 4-DN cluster) and the initial assignment is
``slot s -> s % num_dns``.  Because ``(x mod m) mod d == x mod d``
whenever ``d`` divides ``m``, a freshly built map places every row on
exactly the DN the seed's ``% num_dns`` placement chose — replay and the
placement-sensitive test suites are byte-identical until the first
rebalance actually moves a slot.

Online moves
------------

:class:`~repro.cluster.rebalance.RebalanceCoordinator` drives the slot
state machine through this map:

* ``begin_move(slot, target)`` marks the slot as double-written and hides
  the target's partially-copied rows from scans (``excluded_slots``);
* ``flip(slots)`` atomically re-owns the slots (one version bump per
  flip, so cached plans that baked the old DN targets are invalidated)
  and swaps the scan exclusion from the target to the not-yet-truncated
  source;
* ``clear_excluded`` re-opens the fast scan path once the source copy is
  truncated.

Membership (active DN indices) also lives here: removing a DN retires
its index from ``members()`` without renumbering the survivors, so HA
fabric names, resource queues and telemetry labels stay stable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.storage.table import shard_of_value

#: Default slots allocated per initial DN.  The product is the fixed slot
#: count for the cluster's lifetime (4 DNs -> 256 slots).
SLOTS_PER_DN = 64


class ShardMapError(Exception):
    """Invalid slot-map operation (bad member, conflicting move, ...)."""


class ShardMap:
    """Fixed hash slots -> DN owner, with versioning and move tracking."""

    def __init__(self, num_dns: int, num_slots: Optional[int] = None):
        if num_dns <= 0:
            raise ShardMapError("shard map needs at least one DN")
        if num_slots is None:
            num_slots = num_dns * SLOTS_PER_DN
        if num_slots < num_dns or num_slots % num_dns != 0:
            # Divisibility is what keeps a fresh map's placement identical
            # to the seed's direct `% num_dns` (see module docstring).
            raise ShardMapError(
                f"num_slots ({num_slots}) must be a positive multiple of "
                f"num_dns ({num_dns})")
        self.num_slots = int(num_slots)
        self._owners: List[int] = [s % num_dns for s in range(num_slots)]
        self._members: List[int] = list(range(num_dns))
        #: slot -> target DN while a move's copy/catch-up window is open.
        self._moving: Dict[int, int] = {}
        #: dn_index -> slots whose rows on that DN are hidden from scans
        #: (partial copies on a move target; stale copies on a flipped
        #: source awaiting truncation).
        self._excluded: Dict[int, Set[int]] = {}
        #: Bumped on every ownership flip and membership change; pinned by
        #: the plan cache next to catalog/stats versions.
        self.version = 1
        self.flips = 0

    # ------------------------------------------------------------------
    # routing

    def slot_of_value(self, value) -> int:
        """Hash a distribution value to its slot."""
        return shard_of_value(value, self.num_slots)

    def owner_of_slot(self, slot: int) -> int:
        return self._owners[slot]

    def owner_of_value(self, value) -> int:
        """The DN that owns a distribution value right now."""
        return self._owners[shard_of_value(value, self.num_slots)]

    def moving_target(self, slot: int) -> Optional[int]:
        """Target DN if the slot is mid-move (double-write window)."""
        return self._moving.get(slot)

    def moving_target_for_value(self, value) -> Optional[int]:
        return self._moving.get(shard_of_value(value, self.num_slots))

    def has_moves(self) -> bool:
        return bool(self._moving)

    # ------------------------------------------------------------------
    # membership

    def members(self) -> Tuple[int, ...]:
        """Active DN indices, ascending (retired DNs are absent)."""
        return tuple(self._members)

    def is_member(self, dn_index: int) -> bool:
        return dn_index in self._members

    def add_member(self, dn_index: int) -> None:
        """Admit a new DN (owning zero slots until a rebalance)."""
        if dn_index in self._members:
            raise ShardMapError(f"dn{dn_index} is already a member")
        self._members.append(dn_index)
        self._members.sort()
        self.version += 1

    def remove_member(self, dn_index: int) -> None:
        """Retire a drained DN.  It must own no slots and host no moves."""
        if dn_index not in self._members:
            raise ShardMapError(f"dn{dn_index} is not a member")
        if len(self._members) == 1:
            raise ShardMapError("cannot retire the last DN")
        if any(owner == dn_index for owner in self._owners):
            raise ShardMapError(
                f"dn{dn_index} still owns slots; rebalance before retiring")
        if dn_index in self._moving.values():
            raise ShardMapError(f"dn{dn_index} is a move target")
        self._members.remove(dn_index)
        self.version += 1

    # ------------------------------------------------------------------
    # moves

    def begin_move(self, slot: int, target: int) -> int:
        """Open the double-write window for one slot; returns the source."""
        if not 0 <= slot < self.num_slots:
            raise ShardMapError(f"slot {slot} out of range")
        if target not in self._members:
            raise ShardMapError(f"move target dn{target} is not a member")
        if slot in self._moving:
            raise ShardMapError(f"slot {slot} is already moving")
        source = self._owners[slot]
        if source == target:
            raise ShardMapError(f"slot {slot} already lives on dn{target}")
        self._moving[slot] = target
        self.exclude(target, slot)
        return source

    def flip(self, slots: Iterable[int]) -> None:
        """Atomically re-own moving slots to their targets.

        One version bump covers the whole batch; scan exclusion swaps
        from the (now authoritative) target to the stale source, which
        the coordinator truncates next.
        """
        slots = list(slots)
        for slot in slots:
            if slot not in self._moving:
                raise ShardMapError(f"slot {slot} is not moving")
        for slot in slots:
            source = self._owners[slot]
            target = self._moving.pop(slot)
            self._owners[slot] = target
            self.clear_excluded(target, slot)
            self.exclude(source, slot)
            self.flips += 1
        self.version += 1

    def abort_move(self, slot: int) -> Optional[int]:
        """Close a move window without flipping; returns the target."""
        target = self._moving.pop(slot, None)
        if target is not None:
            self.clear_excluded(target, slot)
        return target

    # ------------------------------------------------------------------
    # scan exclusions

    def exclude(self, dn_index: int, slot: int) -> None:
        self._excluded.setdefault(dn_index, set()).add(slot)

    def clear_excluded(self, dn_index: int, slot: int) -> None:
        slots = self._excluded.get(dn_index)
        if slots is not None:
            slots.discard(slot)
            if not slots:
                del self._excluded[dn_index]

    def excluded_slots(self, dn_index: int) -> frozenset:
        """Slots whose rows on this DN must be skipped by scans.

        Empty (the overwhelmingly common case) means the DN's fast scan
        paths run unfiltered, exactly as before this refactor.
        """
        slots = self._excluded.get(dn_index)
        return frozenset(slots) if slots else frozenset()

    # ------------------------------------------------------------------
    # balance accounting

    def slots_owned_by(self, dn_index: int) -> List[int]:
        return [s for s, owner in enumerate(self._owners)
                if owner == dn_index]

    def slot_counts(self) -> Dict[int, int]:
        """Owned-slot count per active member (zero-filled)."""
        counts = {dn: 0 for dn in self._members}
        for owner in self._owners:
            counts[owner] = counts.get(owner, 0) + 1
        return counts

    def skew(self) -> float:
        """max/mean owned-slot ratio across members (1.0 = balanced)."""
        counts = [self.slot_counts()[dn] for dn in self._members]
        mean = sum(counts) / len(counts)
        if mean == 0:
            return 1.0
        return max(counts) / mean

    def balanced_assignment(self) -> Dict[int, int]:
        """Target per-member slot counts for a balanced map.

        ``num_slots // n`` each, with the remainder spread over the
        lowest member indices — deterministic, so every rebalance run
        computes the same plan.
        """
        members = self._members
        base, extra = divmod(self.num_slots, len(members))
        return {dn: base + (1 if i < extra else 0)
                for i, dn in enumerate(members)}

    # ------------------------------------------------------------------
    # introspection

    def rows(self) -> List[tuple]:
        """(slot, owner, moving_to, excluded_on) rows for sys.shard_map."""
        out = []
        for slot, owner in enumerate(self._owners):
            moving_to = self._moving.get(slot, -1)
            excluded_on = ",".join(
                f"dn{dn}" for dn in sorted(self._excluded)
                if slot in self._excluded[dn])
            out.append((slot, owner, moving_to, excluded_on))
        return out
