"""Cluster-wide table catalog.

The coordinator nodes share one catalog (in the real system it is kept
consistent by DDL replication); creating a table registers a heap on every
data node and records the schema here for routing and SQL planning.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import CatalogError
from repro.cluster.shardmap import ShardMap
from repro.storage.table import TableSchema


class Catalog:
    """Name -> schema registry, case-insensitive like SQL identifiers."""

    def __init__(self, shard_map: Optional[ShardMap] = None) -> None:
        self._schemas: Dict[str, TableSchema] = {}
        #: Bumped on every DDL mutation; cached query plans are pinned to
        #: the version they were built against and discarded on mismatch.
        self.version = 0
        #: The cluster's versioned slot map (placement + membership).  DDL
        #: replication keeps it consistent across coordinators in the real
        #: system; here the MppCluster installs it at construction.
        self.shard_map = shard_map

    @property
    def shard_map_version(self) -> int:
        """Shard-map version for plan pinning (0 when no map is bound)."""
        return self.shard_map.version if self.shard_map is not None else 0

    @staticmethod
    def _norm(name: str) -> str:
        return name.lower()

    def register(self, schema: TableSchema) -> None:
        key = self._norm(schema.name)
        if key in self._schemas:
            raise CatalogError(f"table {schema.name!r} already exists")
        self._schemas[key] = schema
        self.version += 1

    def unregister(self, name: str) -> None:
        if self._schemas.pop(self._norm(name), None) is not None:
            self.version += 1

    def schema(self, name: str) -> TableSchema:
        try:
            return self._schemas[self._norm(name)]
        except KeyError:
            raise CatalogError(f"no table {name!r}") from None

    def has(self, name: str) -> bool:
        return self._norm(name) in self._schemas

    def tables(self) -> List[str]:
        return sorted(schema.name for schema in self._schemas.values())

    def __len__(self) -> int:
        return len(self._schemas)
