"""The FI-MPPDB cluster facade.

Wires together coordinator nodes, data nodes, the GTM and the shared catalog
(the Figure 1 architecture), and hands out :class:`Session` objects through
which applications run transactions.  The cluster can run either
distributed-transaction protocol (:class:`~repro.cluster.txn.TxnMode`), which
is the single switch the Figure 3 experiment flips.

Query execution is *fragmented* over this topology: the SQL engine's planner
cuts each plan at exchange boundaries, the per-DN fragments read their data
node's shard (``GlobalTransaction.scan_shard`` /
``shard_column_store``), and only exchange traffic crosses back to the
coordinator — see :mod:`repro.exec.fragments`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, TypeVar, Union

from repro.common.errors import (
    ConfigError,
    NetworkError,
    SerializationConflict,
    TransactionError,
)
from repro.cluster.catalog import Catalog
from repro.cluster.datanode import DataNode
from repro.cluster.shardmap import ShardMap
from repro.cluster.stats import ClusterStats
from repro.cluster.txn import (
    GlobalTransaction,
    LocalTransaction,
    RetryPolicy,
    TransactionPromotionRequired,
    TxnMode,
)
from repro.core.gtm import GlobalTransactionManager
from repro.net.costing import CostContext
from repro.obs import Observability
from repro.net.latency import DEFAULT_PROFILE, EnvironmentProfile
from repro.net.resource import Resource, ResourcePool
from repro.storage.table import TableSchema
from repro.wlm import WlmConfig, WlmGovernor

T = TypeVar("T")
AnyTxn = Union[LocalTransaction, GlobalTransaction]


class MppCluster:
    """A simulated FI-MPPDB deployment."""

    def __init__(
        self,
        num_dns: int,
        num_cns: Optional[int] = None,
        mode: TxnMode = TxnMode.GTM_LITE,
        profile: EnvironmentProfile = DEFAULT_PROFILE,
        obs_enabled: bool = True,
        obs_config=None,
        wlm_enabled: bool = True,
        wlm_config: Optional[WlmConfig] = None,
        htap_enabled: bool = True,
        htap_config=None,
        name: str = "",
    ):
        if num_dns <= 0:
            raise ConfigError("num_dns must be positive")
        #: Cluster namespace.  Empty for a solo cluster (the seed behavior);
        #: set when several clusters coexist in one process (the geo layer
        #: names its regions) so shared-medium identifiers — HA fabric
        #: endpoints, cross-cluster trace node labels — stay collision-free.
        self.name = name
        self.num_dns = num_dns
        self.num_cns = num_cns if num_cns is not None else max(1, num_dns // 2)
        if self.num_cns <= 0:
            raise ConfigError("num_cns must be positive")
        self.mode = mode
        self.profile = profile
        #: Versioned hash-slot placement map (the catalog owns it; see
        #: :mod:`repro.cluster.shardmap`).  A fresh map places rows exactly
        #: where the seed's direct ``% num_dns`` did, so nothing changes
        #: until a rebalance actually moves slots.
        self.catalog = Catalog(shard_map=ShardMap(num_dns))
        #: The cluster-wide telemetry spine: every layer (GTM, data nodes,
        #: transactions, executor, SQL engine) records into this namespace.
        #: ``obs_enabled=False`` drops it entirely (telemetry-overhead
        #: benchmarking); every consumer guards for ``obs is None``.
        #: ``obs_config`` (an :class:`~repro.obs.ObsConfig`) selects the
        #: telemetry mode — sampling strides, ring capacities — and is
        #: introspectable at runtime through ``sys.obs_config``.
        self.obs = Observability(config=obs_config) if obs_enabled else None
        if self.obs is not None:
            self.obs.bind_shard_map(self.catalog.shard_map)
        self.gtm = GlobalTransactionManager(obs=self.obs)
        self.dns: List[DataNode] = [DataNode(f"dn{i}", i, obs=self.obs)
                                    for i in range(num_dns)]
        self.stats = ClusterStats(
            registry=self.obs.metrics if self.obs is not None else None)
        self.resources = ResourcePool()
        self.gtm_resource: Resource = self.resources.add("gtm")
        self.dn_resources: List[Resource] = [
            self.resources.add(f"dn{i}") for i in range(num_dns)
        ]
        self.cn_resources: List[Resource] = [
            self.resources.add(f"cn{i}") for i in range(self.num_cns)
        ]
        self._next_session = 0
        self._session_seq = 0
        self._completed_since_prune = 0
        self.lco_prune_interval = 256
        #: Set by :class:`repro.cluster.ha.HaManager` when standbys attach.
        self.ha = None
        #: Set by :meth:`repro.faults.FaultInjector.bind`.
        self.faults = None
        #: Set by :class:`repro.cluster.rebalance.RebalanceCoordinator`.
        self.rebalance = None
        #: Set by :class:`repro.geo.GeoCluster` on every member region, so
        #: layers built over one region (autonomous manager, sys views)
        #: can reach the geo runtime without a new dependency edge.
        self.geo = None
        #: Workload governance (``repro.wlm``): admission control, memory
        #: budgets and cancellation for every statement the SQL engine runs.
        #: ``wlm_enabled=False`` drops it, replaying the ungoverned engine.
        self.wlm: Optional[WlmGovernor] = None
        if wlm_enabled:
            self.wlm = WlmGovernor(
                config=wlm_config,
                clock=self.obs.clock if self.obs is not None else None,
                metrics=self.obs.metrics if self.obs is not None else None,
                waits=self.obs.waits if self.obs is not None else None,
                alerts=self.obs.alerts if self.obs is not None else None,
                faults_fn=lambda: self.faults,
            )
            if self.obs is not None:
                self.obs.bind_wlm(self.wlm)
        #: Dual-format delta-merge storage (``repro.htap``): column-oriented
        #: tables keep persistent frozen chunks + a committed-write delta per
        #: node.  ``htap_enabled=False`` drops it, replaying the per-query
        #: cold-rebuild path byte-identically.
        self.htap = None
        if htap_enabled:
            from repro.htap.manager import HtapManager

            self.htap = HtapManager(self, config=htap_config)
            if self.obs is not None:
                self.obs.bind_htap(self.htap)
        #: How coordinators ride out unresponsive participants.
        self.retry_policy = RetryPolicy()
        #: Live :class:`GlobalTransaction` handles by GXID, so failover and
        #: recovery can poison transactions stranded by a dead participant.
        self._inflight_globals: Dict[int, GlobalTransaction] = {}
        #: Shards degraded to read-only (no promotable standby), by reason.
        self._read_only_shards: Dict[int, str] = {}

    # -- membership -----------------------------------------------------

    def dn_indices(self) -> tuple:
        """Active DN indices — THE membership read for every layer.

        Retired (scaled-in) nodes keep their positional slot in
        :attr:`dns` so fabric names, resources and telemetry labels stay
        stable, but they are absent here and nothing routes to them.
        """
        shard_map = self.catalog.shard_map
        if shard_map is not None:
            return shard_map.members()
        return tuple(range(self.num_dns))

    @property
    def num_active_dns(self) -> int:
        return len(self.dn_indices())

    def active_dns(self) -> List[DataNode]:
        return [self.dns[i] for i in self.dn_indices()]

    def add_data_node(self) -> int:
        """Provision a new, empty DN online and admit it to the shard map.

        The node comes up with every table's heap created, the replicated
        tables seeded (broadcast-join fragments need the same dimension
        rows everywhere), HTAP state attached and — when an HaManager is
        bound — its own standby wired into the ship path.  It owns zero
        slots until a :class:`~repro.cluster.rebalance.RebalanceCoordinator`
        moves some to it; writes continue throughout.
        """
        index = len(self.dns)
        dn = DataNode(f"dn{index}", index, obs=self.obs)
        for table in self.catalog.tables():
            dn.create_table(self.catalog.schema(table))
        self.dns.append(dn)
        self.num_dns = len(self.dns)
        self.dn_resources.append(self.resources.add(f"dn{index}"))
        self.catalog.shard_map.add_member(index)
        if self.htap is not None:
            self.htap.ensure_node(dn)
        if self.ha is not None:
            self.ha.attach_node(index)
        self._seed_replicated(index)
        if self.obs is not None:
            self.obs.metrics.counter("cluster.dns_added").inc()
            self.obs.alerts.raise_alert(
                source="cluster", severity="info",
                message=f"dn{index} joined the cluster (0 slots until "
                        f"rebalance)",
                t_us=self.obs.clock.now_us, key=f"dn_added:dn{index}")
        return index

    def retire_data_node(self, dn_index: int) -> None:
        """Remove a *drained* DN from active membership (retire in place).

        The shard map refuses to retire a node that still owns slots —
        run ``cluster.rebalance.remove_dn(dn_index)`` to drain it online
        first.  The DataNode object stays in :attr:`dns` (indices of the
        survivors never shift) but no scan, write, HTAP tick or chaos
        helper touches it again.
        """
        self.catalog.shard_map.remove_member(dn_index)
        dn = self.dns[dn_index]
        dn.retired = True
        self._read_only_shards.pop(dn_index, None)
        if self.ha is not None:
            self.ha.detach_node(dn_index)
        if self.obs is not None:
            self.obs.metrics.counter("cluster.dns_retired").inc()
            self.obs.alerts.raise_alert(
                source="cluster", severity="info",
                message=f"dn{dn_index} drained and retired",
                t_us=self.obs.clock.now_us, key=f"dn_retired:dn{dn_index}")

    def _seed_replicated(self, dn_index: int) -> None:
        """Copy replicated tables onto a newly added node from a donor."""
        from repro.storage.table import Distribution

        target = self.dns[dn_index]
        donors = [i for i in self.dn_indices()
                  if i != dn_index and not self.dns[i].crashed]
        if not donors:
            return
        donor = self.dns[donors[0]]
        for table in self.catalog.tables():
            schema = self.catalog.schema(table)
            if schema.distribution is not Distribution.REPLICATION:
                continue
            rows = list(donor.scan(table, donor.local_snapshot()))
            if not rows:
                continue
            xid = target.begin()
            snapshot = target.local_snapshot()
            for _key, values in rows:
                target.insert(table, dict(values), xid, snapshot)
            target.commit(xid)

    # -- DDL ------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        self.catalog.register(schema)
        for dn in self.dns:
            if not dn.retired:
                dn.create_table(schema)
        if self.htap is not None:
            self.htap.register_table(schema)

    def drop_table(self, name: str) -> None:
        schema = self.catalog.schema(name)
        self.catalog.unregister(schema.name)
        if self.htap is not None:
            self.htap.unregister_table(schema.name)
        for dn in self.dns:
            if not dn.retired:
                dn.drop_table(schema.name)

    # -- sessions -----------------------------------------------------------

    def session(self, cn_index: Optional[int] = None,
                track_costs: bool = False, start_us: float = 0.0) -> "Session":
        if cn_index is None:
            cn_index = self._next_session % self.num_cns
            self._next_session += 1
        if not (0 <= cn_index < self.num_cns):
            raise ConfigError(f"cn_index {cn_index} out of range")
        ctx = None
        if track_costs:
            ctx = CostContext(self.resources, self.profile.mpp, start_us=start_us)
        self._session_seq += 1
        return Session(self, cn_index, ctx, session_id=self._session_seq)

    # -- failure handling ---------------------------------------------------

    def declare_node_dead(self, dn_index: int, reason: str = "unresponsive") -> None:
        """A data node stopped answering: fail over, then resolve in-doubt.

        With an :class:`~repro.cluster.ha.HaManager` attached, the standby is
        promoted in place (committed state restored, staged prepares
        re-instated).  If the standby cannot be promoted safely (partitioned
        while lagging) — or there is no standby at all — the shard degrades
        to read-only instead of losing acknowledged commits.  Either way,
        every PREPARED transaction is then resolved through the GTM's commit
        log, so no in-doubt state survives the failure.
        """
        if not (0 <= dn_index < self.num_dns):
            raise ConfigError(f"no data node {dn_index}")
        if self.dns[dn_index].retired:
            raise ConfigError(f"dn{dn_index} is retired")
        if self.obs is not None:
            self.obs.metrics.counter("faults.nodes_declared_dead").inc()
            self.obs.alerts.raise_alert(
                source="cluster", severity="critical",
                message=f"dn{dn_index} declared dead: {reason}",
                t_us=self.obs.clock.now_us, key=f"node_dead:dn{dn_index}")
        if self.ha is not None:
            try:
                self.ha.fail_and_promote(dn_index)
            except NetworkError as exc:
                # Promoting a lagging, partitioned standby would lose
                # acknowledged commits; serving stale reads is the lesser
                # degradation.
                self.set_shard_read_only(dn_index, reason=str(exc))
        else:
            self.set_shard_read_only(dn_index, reason="no standby configured")
        from repro.cluster.recovery import resolve_in_doubt

        resolve_in_doubt(self)

    def set_shard_read_only(self, dn_index: int, reason: str) -> None:
        """Graceful degradation: keep serving reads, refuse writes."""
        dn = self.dns[dn_index]
        dn.crashed = False       # the node restarts, but without a peer
        dn.read_only = True
        self._read_only_shards[dn_index] = reason
        self._poison_inflight(
            dn_index, f"dn{dn_index} degraded to read-only: {reason}")
        if self.obs is not None:
            self.obs.metrics.gauge("shards.read_only").set(
                len(self._read_only_shards))
            self.obs.alerts.raise_alert(
                source="cluster", severity="critical",
                message=f"shard dn{dn_index} degraded to read-only: {reason}",
                t_us=self.obs.clock.now_us, key=f"read_only:dn{dn_index}")

    def clear_shard_read_only(self, dn_index: int) -> None:
        self.dns[dn_index].read_only = False
        self._read_only_shards.pop(dn_index, None)
        if self.obs is not None:
            self.obs.metrics.gauge("shards.read_only").set(
                len(self._read_only_shards))

    def read_only_shards(self) -> Dict[int, str]:
        return dict(self._read_only_shards)

    def _poison_inflight(self, dn_index: int, reason: str) -> int:
        """Poison in-flight globals that touched a now-dead node."""
        poisoned = 0
        for txn in list(self._inflight_globals.values()):
            if dn_index in txn._local_xid:  # noqa: SLF001
                if txn.poison(reason, failed_dn=dn_index):
                    poisoned += 1
        return poisoned

    # -- maintenance -----------------------------------------------------------

    def vacuum(self) -> int:
        """Run a cluster-wide vacuum using each node's current snapshot."""
        removed = 0
        for dn in self.active_dns():
            snapshot = dn.local_snapshot()
            for table in self.catalog.tables():
                if dn.has_table(table):
                    removed += dn.heap(table).vacuum(snapshot, dn.ltm.clog)
        return removed

    def truncate_lcos(self, keep_last: int = 1024) -> int:
        return sum(dn.ltm.truncate_lco(keep_last)
                   for dn in self.active_dns())

    def maybe_prune_lcos(self) -> None:
        """Amortized LCO garbage collection, driven by commit traffic.

        Every ``lco_prune_interval`` completed transactions, drop the LCO
        prefix no live global snapshot can still need (see
        :meth:`repro.txn.manager.LocalTransactionManager.prune_lco`).
        """
        self._completed_since_prune += 1
        if self._completed_since_prune < self.lco_prune_interval:
            return
        self._completed_since_prune = 0
        horizon = self.gtm.snapshot_horizon()
        for dn in self.active_dns():
            dn.ltm.prune_lco(horizon)

    def reset_telemetry(self) -> None:
        """Zero every telemetry recorder without disturbing cluster state.

        Data, XID allocators and the catalog are untouched — only metrics,
        traces, wait events, activity history, the slow-query log, alerts,
        GTM request counters and the session-id sequence restart.  Running
        the same workload again afterwards yields identical telemetry to a
        fresh cluster running it (MVCC ids differ, telemetry does not).
        """
        if self.obs is not None:
            self.obs.reset()
        if self.faults is not None:
            self.faults.reset_history()
        if self.wlm is not None:
            self.wlm.reset_history()   # idempotent with the obs.reset path
        if self.htap is not None:
            self.htap.reset_history()  # idempotent with the obs.reset path
        if self.rebalance is not None:
            self.rebalance.reset_history()  # idempotent with obs.reset
        self.gtm.stats.reset()
        self._session_seq = 0
        self._next_session = 0


class Session:
    """One client connection, pinned to a coordinator node."""

    def __init__(self, cluster: MppCluster, cn_index: int,
                 ctx: Optional[CostContext],
                 session_id: Optional[int] = None):
        self.cluster = cluster
        self.cn_index = cn_index
        self.ctx = ctx
        #: Stable id for wait-event attribution (``sys.activity.session``).
        self.session_id = session_id

    @property
    def now_us(self) -> float:
        """The session's simulated-time cursor (0 when not tracking costs)."""
        return self.ctx.t_us if self.ctx is not None else 0.0

    def begin(self, multi_shard: bool = False) -> AnyTxn:
        """Start a transaction.

        Under the classical baseline *every* transaction goes through the
        GTM, so ``multi_shard=False`` still yields a global transaction —
        that asymmetry is exactly the paper's motivation for GTM-lite.
        """
        if self.cluster.mode is TxnMode.CLASSICAL or multi_shard:
            return GlobalTransaction(self.cluster, self.ctx, self.cn_index,
                                     session_id=self.session_id)
        return LocalTransaction(self.cluster, self.ctx, self.cn_index,
                                session_id=self.session_id)

    def run_transaction(self, body: Callable[[AnyTxn], T],
                        multi_shard: bool = False, max_retries: int = 10) -> T:
        """Execute ``body`` in a transaction with automatic retry.

        Retries on serialization conflicts, and transparently re-runs as a
        multi-shard transaction if a single-shard attempt strays across
        shards (the CN "promoting" a mis-declared transaction).
        """
        attempts = 0
        promote = multi_shard
        while True:
            attempts += 1
            txn = self.begin(multi_shard=promote)
            try:
                result = body(txn)
                txn.commit()
                return result
            except TransactionPromotionRequired:
                txn.abort()
                if promote:
                    raise
                promote = True
            except SerializationConflict:
                txn.note_conflict_stall()
                txn.abort()
                if attempts > max_retries:
                    raise
            except TransactionError:
                txn.abort()
                raise
            except Exception:
                txn.abort()
                raise
