"""Distributed transactions over the MPP cluster.

Two transaction classes mirror the paper's GTM-lite split:

* :class:`LocalTransaction` — a single-shard transaction.  Under GTM-lite it
  never talks to the GTM: the bound data node's local XID and local snapshot
  carry it end to end.
* :class:`GlobalTransaction` — a multi-shard transaction (or *any*
  transaction under the classical baseline).  It takes a GXID and a global
  snapshot at the GTM; on each data node it visits it additionally takes a
  local XID and snapshot, and — under GTM-lite — runs Algorithm 1 to merge
  the two.  Commit is two-phase: prepare everywhere, commit at the GTM,
  then confirm on each node.  The commit sequence is exposed stepwise so
  tests can stand inside the paper's anomaly windows.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.common.errors import InvalidTransactionState, TransactionError
from repro.core.classical import ClassicalSnapshot
from repro.core.merge import merge_snapshots, naive_merge
from repro.net.costing import CostContext
from repro.obs.waits import (
    WAIT_2PC_COMMIT,
    WAIT_2PC_PREPARE,
    WAIT_DN_APPLY,
    WAIT_DN_COMMIT,
    WAIT_DN_SCAN,
    WAIT_GTM_GLOBAL,
    WAIT_GTM_LOCAL,
    WAIT_LOCK_CONFLICT,
    WAIT_MERGE_UPGRADE,
)
from repro.storage.table import Distribution
from repro.txn.snapshot import Snapshot


class TransactionPromotionRequired(TransactionError):
    """A single-shard transaction touched a second shard; retry multi-shard."""


class TxnMode(enum.Enum):
    """Which distributed-transaction protocol the cluster runs."""

    GTM_LITE = "gtm_lite"
    CLASSICAL = "classical"
    # Ablations: GTM-lite with one of Algorithm 1's fixes disabled.
    GTM_LITE_NO_DOWNGRADE = "gtm_lite_no_downgrade"
    GTM_LITE_NO_UPGRADE = "gtm_lite_no_upgrade"
    GTM_LITE_NAIVE = "gtm_lite_naive"

    @property
    def is_lite(self) -> bool:
        return self is not TxnMode.CLASSICAL

    @property
    def downgrade_enabled(self) -> bool:
        return self in (TxnMode.GTM_LITE, TxnMode.GTM_LITE_NO_UPGRADE)

    @property
    def upgrade_enabled(self) -> bool:
        return self in (TxnMode.GTM_LITE, TxnMode.GTM_LITE_NO_DOWNGRADE)


class TxnState(enum.Enum):
    RUNNING = "running"
    COMMITTING = "committing"
    COMMITTED = "committed"
    ABORTED = "aborted"


class _BaseTransaction:
    """Shared plumbing: routing, schema lookup, state checks."""

    def __init__(self, cluster, ctx: Optional[CostContext], cn_index: int = 0,
                 session_id: Optional[int] = None):
        self._cluster = cluster
        self._ctx = ctx
        self._cn_index = cn_index
        self._session_id = session_id
        self.state = TxnState.RUNNING
        self._obs = getattr(cluster, "obs", None)
        self._span = None
        #: This transaction's row in ``sys.activity`` (None without obs).
        self.activity_entry = None
        self._start_us = ctx.t_us if ctx is not None else (
            self._obs.clock.now_us if self._obs is not None else 0.0)

    # -- helpers -----------------------------------------------------------

    def _mpp_model(self):
        profile = getattr(self._cluster, "profile", None)
        return getattr(profile, "mpp", None)

    def _cost(self, attr: str) -> float:
        """A simulated service time from the cost model.

        Wait-event accounting uses the cluster's cost profile even when no
        :class:`CostContext` is attached (pure-correctness runs), mirroring
        how ``gtm.snapshot_us`` is always observed.
        """
        model = self._ctx.model if self._ctx is not None else self._mpp_model()
        return float(getattr(model, attr, 0.0) or 0.0) if model is not None else 0.0

    def _wait(self, event: str, wait_us: float) -> None:
        """Attribute simulated wait time to this transaction's session."""
        if self._obs is None or wait_us <= 0.0:
            return
        self._obs.waits.record(event, wait_us, session=self._session_id)
        if self.activity_entry is not None:
            self.activity_entry.note_wait(event, wait_us)

    def _begin_activity(self, kind: str, snapshot: str) -> None:
        if self._obs is not None:
            self.activity_entry = self._obs.activity.begin(
                kind, snapshot, cn=self._cn_index, session=self._session_id,
                start_us=self._start_us)

    def _set_activity_state(self, state: str) -> None:
        if self._obs is not None and self.activity_entry is not None:
            self._obs.activity.set_state(self.activity_entry, state)

    def note_conflict_stall(self) -> None:
        """Account the work a serialization-conflict abort throws away."""
        if self._obs is None:
            return
        now = self._ctx.t_us if self._ctx is not None else self._obs.clock.now_us
        self._wait(WAIT_LOCK_CONFLICT, now - self._start_us)

    def _require_running(self) -> None:
        if self.state is not TxnState.RUNNING:
            raise InvalidTransactionState(f"transaction is {self.state.value}")

    def _schema(self, table: str):
        return self._cluster.catalog.schema(table)

    def _shard_for_row(self, table: str, row: Dict[str, object]) -> int:
        schema = self._schema(table)
        return schema.shard_of(schema.coerce_row(row), self._cluster.num_dns)

    def _shard_for_key(self, table: str, key: object) -> int:
        return self._schema(table).shard_of_key(key, self._cluster.num_dns)

    def _sync_obs(self) -> None:
        """Pull the shared sim clock forward to this client's cursor."""
        if self._obs is not None and self._ctx is not None:
            self._obs.advance_to(self._ctx.t_us)

    def _charge_cn(self) -> None:
        if self._ctx is not None:
            self._ctx.charge(self._cluster.cn_resources[self._cn_index],
                             self._ctx.model.cn_route_us)
            self._sync_obs()

    def _charge_dn(self, dn_index: int, service_us: float) -> None:
        if self._ctx is not None:
            self._ctx.charge(self._cluster.dn_resources[dn_index], service_us)
            self._sync_obs()

    def _charge_gtm(self, service_us: float) -> None:
        if self._ctx is not None:
            self._ctx.charge(self._cluster.gtm_resource, service_us)
            self._sync_obs()

    def _finish_span(self, outcome: str) -> None:
        if self._obs is None:
            return
        now = self._ctx.t_us if self._ctx is not None else self._obs.clock.now_us
        self._obs.metrics.histogram("txn.latency_us").observe(
            max(0.0, now - self._start_us))
        if self._span is not None:
            self._span.set_attribute("outcome", outcome)
            self._obs.tracer.end_span(self._span)
        if self.activity_entry is not None:
            self._obs.activity.finish(self.activity_entry, outcome, end_us=now)


class LocalTransaction(_BaseTransaction):
    """Single-shard transaction: local XID + local snapshot only."""

    def __init__(self, cluster, ctx: Optional[CostContext] = None, cn_index: int = 0,
                 session_id: Optional[int] = None):
        super().__init__(cluster, ctx, cn_index, session_id)
        self._dn_index: Optional[int] = None
        self.xid: Optional[int] = None
        self.snapshot: Optional[Snapshot] = None
        if self._obs is not None:
            self._span = self._obs.tracer.start_span(
                "txn.local", parent=None, cn=cn_index)
        self._begin_activity("local", "local")

    @property
    def is_multi_shard(self) -> bool:
        return False

    def _bind(self, dn_index: int):
        if self._dn_index is None:
            self._dn_index = dn_index
            dn = self._cluster.dns[dn_index]
            self.xid = dn.begin()
            self.snapshot = dn.local_snapshot()
            self._charge_dn(dn_index, self._ctx.model.dn_begin_us if self._ctx else 0.0)
            self._wait(WAIT_GTM_LOCAL, self._cost("dn_begin_us"))
            if self.activity_entry is not None:
                self.activity_entry.txn_id = self.xid
            return dn
        if self._dn_index != dn_index:
            raise TransactionPromotionRequired(
                f"single-shard transaction bound to DN {self._dn_index} "
                f"touched DN {dn_index}"
            )
        return self._cluster.dns[dn_index]

    # -- operations ----------------------------------------------------------

    def read(self, table: str, key: object) -> Optional[Dict[str, object]]:
        self._require_running()
        self._charge_cn()
        schema = self._schema(table)
        if schema.distribution is Distribution.REPLICATION:
            dn = self._bind(self._dn_index if self._dn_index is not None else 0)
        else:
            dn = self._bind(self._shard_for_key(table, key))
        self._charge_dn(dn.index, self._ctx.model.dn_stmt_us if self._ctx else 0.0)
        self._wait(WAIT_DN_SCAN, self._cost("dn_stmt_us"))
        return dn.read(table, key, self.snapshot, self.xid)

    def insert(self, table: str, row: Dict[str, object]) -> None:
        self._require_running()
        self._charge_cn()
        schema = self._schema(table)
        if schema.distribution is Distribution.REPLICATION:
            if self._cluster.num_dns > 1:
                raise TransactionPromotionRequired(
                    "writing a replicated table is a multi-shard operation"
                )
            dn = self._bind(0)
        else:
            dn = self._bind(self._shard_for_row(table, row))
        self._charge_dn(dn.index, self._ctx.model.dn_stmt_us if self._ctx else 0.0)
        self._wait(WAIT_DN_APPLY, self._cost("dn_stmt_us"))
        dn.insert(table, row, self.xid, self.snapshot)

    def update(self, table: str, key: object, values: Dict[str, object]) -> None:
        self._require_running()
        self._charge_cn()
        schema = self._schema(table)
        if schema.distribution is Distribution.REPLICATION and self._cluster.num_dns > 1:
            raise TransactionPromotionRequired(
                "writing a replicated table is a multi-shard operation"
            )
        dn = self._bind(self._shard_for_key(table, key)
                        if schema.distribution is not Distribution.REPLICATION else 0)
        self._charge_dn(dn.index, self._ctx.model.dn_stmt_us if self._ctx else 0.0)
        self._wait(WAIT_DN_APPLY, self._cost("dn_stmt_us"))
        dn.update(table, key, values, self.xid, self.snapshot)

    def delete(self, table: str, key: object) -> None:
        self._require_running()
        self._charge_cn()
        schema = self._schema(table)
        if schema.distribution is Distribution.REPLICATION and self._cluster.num_dns > 1:
            raise TransactionPromotionRequired(
                "writing a replicated table is a multi-shard operation"
            )
        dn = self._bind(self._shard_for_key(table, key)
                        if schema.distribution is not Distribution.REPLICATION else 0)
        self._charge_dn(dn.index, self._ctx.model.dn_stmt_us if self._ctx else 0.0)
        self._wait(WAIT_DN_APPLY, self._cost("dn_stmt_us"))
        dn.delete(table, key, self.xid, self.snapshot)

    def scan(self, table: str) -> Iterator[Tuple[object, Dict[str, object]]]:
        self._require_running()
        schema = self._schema(table)
        if schema.distribution is not Distribution.REPLICATION and self._cluster.num_dns > 1:
            raise TransactionPromotionRequired(
                f"scanning hash-distributed table {table} spans all shards"
            )
        dn = self._bind(self._dn_index if self._dn_index is not None else 0)
        return dn.scan(table, self.snapshot, self.xid)

    # -- completion --------------------------------------------------------

    def commit(self) -> None:
        self._require_running()
        self.state = TxnState.COMMITTING
        self._set_activity_state("committing")
        if self._dn_index is not None:
            dn = self._cluster.dns[self._dn_index]
            self._charge_dn(self._dn_index,
                            self._ctx.model.dn_commit_us if self._ctx else 0.0)
            self._wait(WAIT_DN_COMMIT, self._cost("dn_commit_us"))
            dn.commit(self.xid)
        self.state = TxnState.COMMITTED
        self._cluster.stats.note_commit(multi_shard=False)
        self._finish_span("committed")
        self._cluster.maybe_prune_lcos()

    def abort(self) -> None:
        if self.state in (TxnState.COMMITTED, TxnState.ABORTED):
            return
        if self._dn_index is not None:
            self._cluster.dns[self._dn_index].abort(self.xid)
        self.state = TxnState.ABORTED
        self._cluster.stats.note_abort(multi_shard=False)
        self._finish_span("aborted")


class GlobalTransaction(_BaseTransaction):
    """Multi-shard transaction: GXID + global snapshot, merged per DN."""

    def __init__(self, cluster, ctx: Optional[CostContext] = None, cn_index: int = 0,
                 session_id: Optional[int] = None):
        super().__init__(cluster, ctx, cn_index, session_id)
        self.mode: TxnMode = cluster.mode
        if self._obs is not None:
            self._span = self._obs.tracer.start_span(
                "txn.global", parent=None, cn=cn_index)
        if self.mode is TxnMode.CLASSICAL:
            snapshot_kind = "classical"
        elif self.mode is TxnMode.GTM_LITE_NAIVE:
            snapshot_kind = "local"
        else:
            snapshot_kind = "merged"
        self._begin_activity("global", snapshot_kind)
        # Simulated snapshot-acquisition cost: the GTM serializes a snapshot
        # whose size grows with the number of in-flight GXIDs.  The same
        # figure is charged to the cost context (when present) and observed
        # into the ``gtm.snapshot_us`` histogram, so telemetry exists even
        # in pure-correctness runs.
        model = cluster.profile.mpp
        snapshot_us = (model.gtm_snapshot_us
                       + model.gtm_snapshot_per_active_us
                       * cluster.gtm.active_count)
        if ctx is not None:
            # One begin interaction: GXID assignment plus the snapshot.
            self._charge_gtm(ctx.model.gtm_xid_us + snapshot_us)
        acquire_span = None
        if self._obs is not None:
            self._obs.metrics.histogram("gtm.snapshot_us").observe(snapshot_us)
            acquire_span = self._obs.tracer.start_span(
                "gtm.snapshot", parent=self._span)
        self._wait(WAIT_GTM_GLOBAL, snapshot_us)
        self.gxid = cluster.gtm.begin()
        self.global_snapshot = cluster.gtm.snapshot(for_gxid=self.gxid)
        if self.activity_entry is not None:
            self.activity_entry.txn_id = self.gxid
        if acquire_span is not None:
            acquire_span.set_attribute("gxid", self.gxid)
            acquire_span.set_attribute("active", len(self.global_snapshot.active))
            self._obs.tracer.end_span(
                acquire_span, end_us=acquire_span.start_us + snapshot_us)
        self._local_xid: Dict[int, int] = {}          # dn index -> local xid
        self._local_view: Dict[int, object] = {}       # dn index -> snapshot
        self._written: Set[int] = set()                # dn indexes with writes

    @property
    def is_multi_shard(self) -> bool:
        return True

    def touched_nodes(self) -> List[int]:
        return sorted(self._local_xid)

    # -- per-DN attach ------------------------------------------------------

    def _attach(self, dn_index: int):
        dn = self._cluster.dns[dn_index]
        if dn_index in self._local_xid:
            return dn, self._local_xid[dn_index], self._local_view[dn_index]
        lxid = dn.begin(gxid=self.gxid)
        local_snapshot = dn.local_snapshot()
        self._charge_dn(dn_index, self._ctx.model.dn_begin_us if self._ctx else 0.0)
        self._wait(WAIT_GTM_LOCAL, self._cost("dn_begin_us"))
        if self.mode is TxnMode.CLASSICAL:
            view: object = ClassicalSnapshot(self.global_snapshot, dn.ltm,
                                             self._cluster.gtm)
        elif self.mode is TxnMode.GTM_LITE_NAIVE:
            view = naive_merge(local_snapshot).snapshot
        else:
            if self._obs is not None and self.activity_entry is not None:
                self._obs.activity.enter_wait(self.activity_entry)
            outcome = merge_snapshots(
                self.global_snapshot,
                local_snapshot,
                dn.ltm,
                self._cluster.gtm,
                enable_downgrade=self.mode.downgrade_enabled,
                enable_upgrade=self.mode.upgrade_enabled,
                obs=self._obs,
                parent_span=self._span,
                session=self._session_id,
                # UPGRADE: pause until the writer's local commit confirmation
                # lands — a slim window, about one network round trip each.
                wait_us_per_upgrade=2 * self._cost("lan_hop_us"),
            )
            if self._obs is not None and self.activity_entry is not None:
                self._obs.activity.leave_wait(self.activity_entry)
            self._charge_dn(
                dn_index, self._ctx.model.dn_merge_snapshot_us if self._ctx else 0.0
            )
            if outcome.upgrade_waits:
                wait_us = 2 * self._cost("lan_hop_us") * outcome.upgrade_waits
                if self._ctx is not None:
                    self._ctx.charge_local(wait_us)
                if self.activity_entry is not None:
                    self.activity_entry.note_wait(WAIT_MERGE_UPGRADE, wait_us)
            self._cluster.stats.note_merge(outcome)
            view = outcome.snapshot
        self._local_xid[dn_index] = lxid
        self._local_view[dn_index] = view
        return dn, lxid, view

    # -- operations ---------------------------------------------------------

    def read(self, table: str, key: object) -> Optional[Dict[str, object]]:
        self._require_running()
        self._charge_cn()
        schema = self._schema(table)
        if schema.distribution is Distribution.REPLICATION:
            dn_index = min(self._local_xid) if self._local_xid else 0
        else:
            dn_index = self._shard_for_key(table, key)
        dn, lxid, view = self._attach(dn_index)
        self._charge_dn(dn_index, self._ctx.model.dn_stmt_us if self._ctx else 0.0)
        self._wait(WAIT_DN_SCAN, self._cost("dn_stmt_us"))
        return dn.read(table, key, view, lxid)

    def insert(self, table: str, row: Dict[str, object]) -> None:
        self._require_running()
        self._charge_cn()
        schema = self._schema(table)
        if schema.distribution is Distribution.REPLICATION:
            targets = range(self._cluster.num_dns)
        else:
            targets = [self._shard_for_row(table, row)]
        for dn_index in targets:
            dn, lxid, view = self._attach(dn_index)
            self._charge_dn(dn_index, self._ctx.model.dn_stmt_us if self._ctx else 0.0)
            self._wait(WAIT_DN_APPLY, self._cost("dn_stmt_us"))
            dn.insert(table, row, lxid, view)
            self._written.add(dn_index)

    def update(self, table: str, key: object, values: Dict[str, object]) -> None:
        self._require_running()
        self._charge_cn()
        schema = self._schema(table)
        if schema.distribution is Distribution.REPLICATION:
            targets = range(self._cluster.num_dns)
        else:
            targets = [self._shard_for_key(table, key)]
        for dn_index in targets:
            dn, lxid, view = self._attach(dn_index)
            self._charge_dn(dn_index, self._ctx.model.dn_stmt_us if self._ctx else 0.0)
            self._wait(WAIT_DN_APPLY, self._cost("dn_stmt_us"))
            dn.update(table, key, values, lxid, view)
            self._written.add(dn_index)

    def delete(self, table: str, key: object) -> None:
        self._require_running()
        self._charge_cn()
        schema = self._schema(table)
        if schema.distribution is Distribution.REPLICATION:
            targets = range(self._cluster.num_dns)
        else:
            targets = [self._shard_for_key(table, key)]
        for dn_index in targets:
            dn, lxid, view = self._attach(dn_index)
            self._charge_dn(dn_index, self._ctx.model.dn_stmt_us if self._ctx else 0.0)
            self._wait(WAIT_DN_APPLY, self._cost("dn_stmt_us"))
            dn.delete(table, key, lxid, view)
            self._written.add(dn_index)

    def scan(self, table: str) -> Iterator[Tuple[object, Dict[str, object]]]:
        self._require_running()
        self._charge_cn()
        schema = self._schema(table)
        if schema.distribution is Distribution.REPLICATION:
            dn, lxid, view = self._attach(0)
            yield from dn.scan(table, view, lxid)
            return
        for dn_index in range(self._cluster.num_dns):
            dn, lxid, view = self._attach(dn_index)
            self._charge_dn(dn_index, self._ctx.model.dn_stmt_us if self._ctx else 0.0)
            self._wait(WAIT_DN_SCAN, self._cost("dn_stmt_us"))
            yield from dn.scan(table, view, lxid)

    # -- completion ----------------------------------------------------------

    def commit(self) -> None:
        """Run the full commit sequence in protocol order."""
        steps = self.commit_stepwise()
        steps.prepare_all()
        steps.commit_at_gtm()
        steps.finish()

    def commit_stepwise(self) -> "CommitSteps":
        self._require_running()
        self.state = TxnState.COMMITTING
        self._set_activity_state("committing")
        return CommitSteps(self)

    def abort(self) -> None:
        if self.state in (TxnState.COMMITTED, TxnState.ABORTED):
            return
        if self._cluster.gtm.is_committed(self.gxid):
            # Past the GTM commit point the outcome is decided: the local
            # commits are inevitable and rollback is no longer possible.
            raise InvalidTransactionState(
                f"gxid {self.gxid} already committed at the GTM; cannot abort"
            )
        for dn_index, lxid in self._local_xid.items():
            self._cluster.dns[dn_index].abort(lxid)
        self._cluster.gtm.abort(self.gxid)
        self.state = TxnState.ABORTED
        self._cluster.stats.note_abort(multi_shard=True)
        self._finish_span("aborted")


class CommitSteps:
    """Explicit commit sequencing for a :class:`GlobalTransaction`.

    GTM-lite order: prepare on every written node, commit at the GTM, then
    confirm (commit prepared) on each node.  The classical baseline confirms
    on the nodes *first* and dequeues from the GTM last, which is why it has
    no anomaly window.  Tests drive these methods one at a time.
    """

    def __init__(self, txn: GlobalTransaction):
        self._txn = txn
        self._prepared = False
        self._gtm_committed = False
        self._confirmed: Set[int] = set()

    def _traced(self, name: str, **attributes):
        """Open a 2PC-phase span under the transaction's span, or None."""
        txn = self._txn
        if txn._obs is None:
            return None
        return txn._obs.tracer.start_span(name, parent=txn._span, **attributes)

    def _end(self, span) -> None:
        if span is not None:
            self._txn._obs.tracer.end_span(span)

    @property
    def pending_nodes(self) -> List[int]:
        return sorted(set(self._txn._written) - self._confirmed)

    def prepare_all(self) -> None:
        if self._prepared:
            raise InvalidTransactionState("already prepared")
        txn = self._txn
        span = self._traced("2pc.prepare", nodes=len(txn._written))
        for dn_index in sorted(txn._written):
            txn._charge_dn(dn_index,
                           txn._ctx.model.dn_prepare_us if txn._ctx else 0.0)
            txn._wait(WAIT_2PC_PREPARE, txn._cost("dn_prepare_us"))
            txn._cluster.dns[dn_index].prepare(txn._local_xid[dn_index])
        self._end(span)
        self._prepared = True
        if txn.mode is TxnMode.CLASSICAL:
            # Classical order: data nodes commit before the GTM dequeues.
            self._confirm_all()

    def commit_at_gtm(self) -> None:
        if not self._prepared:
            raise InvalidTransactionState("prepare before GTM commit")
        if self._gtm_committed:
            raise InvalidTransactionState("already committed at GTM")
        txn = self._txn
        span = self._traced("2pc.gtm_commit", gxid=txn.gxid)
        txn._charge_gtm(txn._ctx.model.gtm_commit_us if txn._ctx else 0.0)
        txn._wait(WAIT_2PC_COMMIT, txn._cost("gtm_commit_us"))
        txn._cluster.gtm.commit(txn.gxid)
        self._end(span)
        self._gtm_committed = True

    def confirm_at(self, dn_index: int) -> None:
        """Deliver the commit confirmation to one data node."""
        txn = self._txn
        if txn.mode is TxnMode.CLASSICAL:
            raise InvalidTransactionState(
                "classical protocol confirms during prepare_all"
            )
        if not self._gtm_committed:
            raise InvalidTransactionState("GTM commit must precede confirmations")
        if dn_index in self._confirmed:
            return
        if dn_index not in txn._written:
            raise InvalidTransactionState(f"node {dn_index} has nothing to confirm")
        txn._charge_dn(dn_index,
                       txn._ctx.model.dn_commit_prepared_us if txn._ctx else 0.0)
        txn._wait(WAIT_2PC_COMMIT, txn._cost("dn_commit_prepared_us"))
        txn._cluster.dns[dn_index].commit(txn._local_xid[dn_index])
        self._confirmed.add(dn_index)

    def _confirm_all(self) -> None:
        txn = self._txn
        pending = sorted(set(txn._written) - self._confirmed)
        span = self._traced("2pc.confirm", nodes=len(pending)) if pending else None
        for dn_index in pending:
            txn._charge_dn(dn_index,
                           txn._ctx.model.dn_commit_prepared_us if txn._ctx else 0.0)
            txn._wait(WAIT_2PC_COMMIT, txn._cost("dn_commit_prepared_us"))
            txn._cluster.dns[dn_index].commit(txn._local_xid[dn_index])
            self._confirmed.add(dn_index)
        self._end(span)

    def finish(self) -> None:
        """Complete whatever remains of the sequence."""
        txn = self._txn
        if txn.mode is TxnMode.CLASSICAL:
            if not self._prepared:
                self.prepare_all()
            if not self._gtm_committed:
                self.commit_at_gtm()
        else:
            if not self._prepared:
                self.prepare_all()
            if not self._gtm_committed:
                self.commit_at_gtm()
            self._confirm_all()
        # Read-only participants never prepared; release them.
        for dn_index, lxid in txn._local_xid.items():
            if dn_index not in txn._written:
                txn._cluster.dns[dn_index].commit(lxid)
        txn.state = TxnState.COMMITTED
        txn._cluster.stats.note_commit(multi_shard=True)
        txn._finish_span("committed")
        txn._cluster.maybe_prune_lcos()
