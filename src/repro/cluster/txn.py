"""Distributed transactions over the MPP cluster.

Two transaction classes mirror the paper's GTM-lite split:

* :class:`LocalTransaction` — a single-shard transaction.  Under GTM-lite it
  never talks to the GTM: the bound data node's local XID and local snapshot
  carry it end to end.
* :class:`GlobalTransaction` — a multi-shard transaction (or *any*
  transaction under the classical baseline).  It takes a GXID and a global
  snapshot at the GTM; on each data node it visits it additionally takes a
  local XID and snapshot, and — under GTM-lite — runs Algorithm 1 to merge
  the two.  Commit is two-phase: prepare everywhere, commit at the GTM,
  then confirm on each node.  The commit sequence is exposed stepwise so
  tests can stand inside the paper's anomaly windows.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.common.errors import (
    InvalidTransactionState,
    StorageError,
    TransactionAborted,
    TransactionError,
)
from repro.core.classical import ClassicalSnapshot
from repro.core.merge import merge_snapshots, naive_merge
from repro.faults.injector import (
    FP_CONFIRM_AFTER,
    FP_CONFIRM_BEFORE,
    FP_COORD_AFTER_GTM_COMMIT,
    FP_COORD_AFTER_PREPARE,
    FP_COORD_BETWEEN_CONFIRMS,
    FP_GTM_COMMIT,
    FP_PREPARE_AFTER,
    FP_PREPARE_BEFORE,
    CoordinatorCrash,
    InjectedTimeout,
)
from repro.net.costing import CostContext
from repro.obs.waits import (
    WAIT_2PC_COMMIT,
    WAIT_2PC_PREPARE,
    WAIT_DN_APPLY,
    WAIT_DN_COMMIT,
    WAIT_DN_SCAN,
    WAIT_FAULT_DELAY,
    WAIT_FAULT_FAILOVER,
    WAIT_FAULT_RETRY,
    WAIT_GTM_GLOBAL,
    WAIT_GTM_LOCAL,
    WAIT_LOCK_CONFLICT,
    WAIT_MERGE_UPGRADE,
)
from repro.storage.table import Distribution, shard_of_value
from repro.txn.snapshot import Snapshot
from repro.txn.status import TxnStatus


#: Interned coordinator node names ("cn0", "cn1", ...) so every root span
#: reuses one string object instead of formatting a fresh one per txn.
_CN_NODE_NAMES: Dict[int, str] = {}


def _cn_node(index: int) -> str:
    try:
        return _CN_NODE_NAMES[index]
    except KeyError:
        name = _CN_NODE_NAMES[index] = f"cn{index}"
        return name


@dataclass(frozen=True)
class RetryPolicy:
    """How a coordinator rides out unresponsive participants.

    Each 2PC step gets ``max_attempts`` tries; a try that times out costs
    ``timeout_us`` of simulated wall time plus an exponentially backed-off
    pause before the next.  When every attempt times out, the coordinator
    declares the node dead (``MppCluster.declare_node_dead``) and pays
    ``failover_us`` while the cluster promotes the standby (or degrades the
    shard to read-only when there is none).
    """

    max_attempts: int = 3
    timeout_us: float = 5_000.0
    backoff_base_us: float = 500.0
    backoff_cap_us: float = 8_000.0
    failover_us: float = 50_000.0

    def backoff_us(self, attempt: int) -> float:
        """Exponential backoff before attempt ``attempt + 1`` (0-based)."""
        return min(self.backoff_cap_us, self.backoff_base_us * (2 ** attempt))


class TransactionPromotionRequired(TransactionError):
    """A single-shard transaction touched a second shard; retry multi-shard."""


class TxnMode(enum.Enum):
    """Which distributed-transaction protocol the cluster runs."""

    GTM_LITE = "gtm_lite"
    CLASSICAL = "classical"
    # Ablations: GTM-lite with one of Algorithm 1's fixes disabled.
    GTM_LITE_NO_DOWNGRADE = "gtm_lite_no_downgrade"
    GTM_LITE_NO_UPGRADE = "gtm_lite_no_upgrade"
    GTM_LITE_NAIVE = "gtm_lite_naive"

    @property
    def is_lite(self) -> bool:
        return self is not TxnMode.CLASSICAL

    @property
    def downgrade_enabled(self) -> bool:
        return self in (TxnMode.GTM_LITE, TxnMode.GTM_LITE_NO_UPGRADE)

    @property
    def upgrade_enabled(self) -> bool:
        return self in (TxnMode.GTM_LITE, TxnMode.GTM_LITE_NO_DOWNGRADE)


class TxnState(enum.Enum):
    RUNNING = "running"
    COMMITTING = "committing"
    COMMITTED = "committed"
    ABORTED = "aborted"


class _BaseTransaction:
    """Shared plumbing: routing, schema lookup, state checks."""

    def __init__(self, cluster, ctx: Optional[CostContext], cn_index: int = 0,
                 session_id: Optional[int] = None):
        self._cluster = cluster
        self._ctx = ctx
        self._cn_index = cn_index
        self._session_id = session_id
        self.state = TxnState.RUNNING
        #: Set (to a reason string) when a node failure killed this
        #: transaction out from under its owner — failover poisoning,
        #: recovery's presumed abort, or read-only degradation.  Any further
        #: use raises :class:`TransactionAborted` with that reason.
        self.poisoned: Optional[str] = None
        self._obs = getattr(cluster, "obs", None)
        # Hot-path shortcuts: every statement syncs the shared sim clock and
        # records wait events, so resolve both through one attribute instead
        # of the obs bundle's two-hop chains.
        self._obs_clock = self._obs.clock if self._obs is not None else None
        self._waits = self._obs.waits if self._obs is not None else None
        #: Per-statement waits batched as ``event -> [count, total, max]``
        #: and flushed to the recorder once, at :meth:`_finish_span` — the
        #: pg_stat pattern.  ``None`` after the flush (or without obs), in
        #: which case :meth:`_wait` records directly.
        self._wait_acc: Optional[Dict[str, List[float]]] = (
            {} if self._obs is not None else None)
        self._span = None
        self._last_wait_event: Optional[str] = None
        # The three constant-cost statement waits (dn.scan / dn.apply /
        # gtm.local) are *counted* with plain integers and folded into the
        # accumulator at flush time — their per-observation value never
        # varies within a transaction, so a count reconstructs the exact
        # (count, total, max) triple at a fraction of the per-statement
        # cost.  Variable-value waits (2PC, faults, conflict stalls) still
        # go through :meth:`_wait`.
        self._nw_scan = 0
        self._nw_apply = 0
        self._nw_bind = 0
        if self._obs is not None:
            self._w_stmt = self._cost("dn_stmt_us")
            self._w_begin = self._cost("dn_begin_us")
        else:
            self._w_stmt = self._w_begin = 0.0
        #: This transaction's row in ``sys.activity`` (None without obs).
        self.activity_entry = None
        self._start_us = ctx.t_us if ctx is not None else (
            self._obs.clock.now_us if self._obs is not None else 0.0)
        # Root spans read the shared clock at creation; pull it up to this
        # client's cursor first so start times are honest.
        if self._obs_clock is not None and ctx is not None \
                and ctx.t_us > self._obs_clock.now_us:
            self._obs_clock.now_us = ctx.t_us

    # -- helpers -----------------------------------------------------------

    def _mpp_model(self):
        profile = getattr(self._cluster, "profile", None)
        return getattr(profile, "mpp", None)

    def _cost(self, attr: str) -> float:
        """A simulated service time from the cost model.

        Wait-event accounting uses the cluster's cost profile even when no
        :class:`CostContext` is attached (pure-correctness runs), mirroring
        how ``gtm.snapshot_us`` is always observed.
        """
        model = self._ctx.model if self._ctx is not None else self._mpp_model()
        return float(getattr(model, attr, 0.0) or 0.0) if model is not None else 0.0

    def _wait(self, event: str, wait_us: float) -> None:
        """Attribute simulated wait time to this transaction's session."""
        if self._waits is None or wait_us <= 0.0:
            return
        acc = self._wait_acc
        if acc is None:
            # Already flushed (a wait noted after the txn finished, e.g. a
            # post-mortem conflict stall): record straight through, and
            # note the activity entry immediately (no flush will run).
            self._waits.record(event, wait_us, self._session_id)
            entry = self.activity_entry
            if entry is not None:
                entry.wait_us += wait_us
                entry.last_wait = event
            return
        # try/except beats .get(): the same few events repeat within a
        # transaction, so the hit path is just a subscript.  The activity
        # entry's wait attribution is deferred to the flush too — only the
        # "most recent wait" marker is tracked here.
        try:
            entry = acc[event]
        except KeyError:
            acc[event] = [1, wait_us, wait_us]
        else:
            entry[0] += 1
            entry[1] += wait_us
            if wait_us > entry[2]:
                entry[2] = wait_us
        self._last_wait_event = event

    def _begin_activity(self, kind: str, snapshot: str) -> None:
        if self._obs is not None:
            self.activity_entry = self._obs.activity.begin(
                kind, snapshot, cn=self._cn_index, session=self._session_id,
                start_us=self._start_us)

    def _set_activity_state(self, state: str) -> None:
        if self._obs is not None and self.activity_entry is not None:
            self._obs.activity.set_state(self.activity_entry, state)

    def note_conflict_stall(self) -> None:
        """Account the work a serialization-conflict abort throws away."""
        if self._obs is None:
            return
        now = self._ctx.t_us if self._ctx is not None else self._obs.clock.now_us
        self._wait(WAIT_LOCK_CONFLICT, now - self._start_us)

    def _require_running(self) -> None:
        if self.poisoned is not None:
            raise TransactionAborted(self.poisoned)
        if self.state is not TxnState.RUNNING:
            raise InvalidTransactionState(f"transaction is {self.state.value}")

    def _schema(self, table: str):
        return self._cluster.catalog.schema(table)

    # Row/key routing goes through the catalog's versioned ShardMap (value
    # -> hash slot -> owning DN); clusters without one (none in practice)
    # fall back to the legacy direct modulus.  ``_route_*`` additionally
    # reports the slot's move target when a rebalance has the slot in its
    # double-write window.

    def _route_value(self, value) -> Tuple[int, Optional[int]]:
        shard_map = self._cluster.catalog.shard_map
        if shard_map is None:
            return shard_of_value(value, self._cluster.num_dns), None
        slot = shard_map.slot_of_value(value)
        return shard_map.owner_of_slot(slot), shard_map.moving_target(slot)

    def _route_row(self, table: str,
                   row: Dict[str, object]) -> Tuple[int, Optional[int]]:
        schema = self._schema(table)
        if schema.distribution is Distribution.REPLICATION:
            raise StorageError(
                f"table {schema.name} is replicated; no single shard")
        coerced = schema.coerce_row(row)
        return self._route_value(coerced[schema.distribution_column])

    def _route_key(self, table: str, key: object) -> Tuple[int, Optional[int]]:
        return self._route_value(self._schema(table).dist_value_of_key(key))

    def _shard_for_row(self, table: str, row: Dict[str, object]) -> int:
        return self._route_row(table, row)[0]

    def _shard_for_key(self, table: str, key: object) -> int:
        return self._route_key(table, key)[0]

    def _scan_filter(self, table: str, dn_index: int):
        """Row predicate hiding shard-map-excluded slots on this node.

        ``None`` — the steady-state answer — means the caller's fast path
        runs untouched.  Non-None only inside a rebalance window, where a
        node holds rows for a slot it does not (yet / any longer) own.
        """
        shard_map = self._cluster.catalog.shard_map
        if shard_map is None:
            return None
        excluded = shard_map.excluded_slots(dn_index)
        if not excluded:
            return None
        schema = self._schema(table)
        if schema.distribution is Distribution.REPLICATION:
            return None
        column = schema.distribution_column
        slot_of = shard_map.slot_of_value

        def keep(values: Dict[str, object]) -> bool:
            return slot_of(values[column]) not in excluded

        return keep

    def _sync_obs(self) -> None:
        """Pull the shared sim clock forward to this client's cursor."""
        if self._obs_clock is not None and self._ctx is not None:
            self._obs_clock.advance_to(self._ctx.t_us)

    # Statement charges (_charge_cn / _charge_dn_stmt) do NOT sync the
    # shared sim clock: nothing reads it mid-statement, and the points that
    # do read it — span start/end, the wait flush, DN commits feeding HTAP
    # capture — sync explicitly (txn begin, _finish_span, and the commit /
    # 2PC charges below, which keep the inlined advance-to).

    def _charge_cn(self) -> None:
        ctx = self._ctx
        if ctx is not None:
            ctx.charge(self._cluster.cn_resources[self._cn_index],
                       ctx.model.cn_route_us)

    def _charge_dn_stmt(self, dn_index: int, service_us: float) -> None:
        ctx = self._ctx
        if ctx is not None:
            ctx.charge(self._cluster.dn_resources[dn_index], service_us)

    def _charge_dn(self, dn_index: int, service_us: float) -> None:
        ctx = self._ctx
        if ctx is not None:
            ctx.charge(self._cluster.dn_resources[dn_index], service_us)
            clock = self._obs_clock
            if clock is not None and ctx.t_us > clock.now_us:
                clock.now_us = ctx.t_us

    def _charge_gtm(self, service_us: float) -> None:
        ctx = self._ctx
        if ctx is not None:
            ctx.charge(self._cluster.gtm_resource, service_us)
            clock = self._obs_clock
            if clock is not None and ctx.t_us > clock.now_us:
                clock.now_us = ctx.t_us

    def _finish_span(self, outcome: str) -> None:
        if self._obs is None:
            return
        # Statement charges skip the clock sync; catch the clock up before
        # anything here (span end, flush timestamps, latency) reads it.
        clock = self._obs_clock
        ctx = self._ctx
        if clock is not None and ctx is not None and ctx.t_us > clock.now_us:
            clock.now_us = ctx.t_us
        acc = self._wait_acc
        if acc is not None:
            self._wait_acc = None
            # Reconstruct the constant-cost statement waits from their
            # counters: all observations share one value, so the exact
            # triple is (n, n*w, w).
            w = self._w_stmt
            if w > 0.0:
                n = self._nw_scan
                if n:
                    acc[WAIT_DN_SCAN] = (n, n * w, w)
                n = self._nw_apply
                if n:
                    acc[WAIT_DN_APPLY] = (n, n * w, w)
            w = self._w_begin
            n = self._nw_bind
            if n and w > 0.0:
                acc[WAIT_GTM_LOCAL] = (n, n * w, w)
            if acc:
                self._waits.flush_batches(acc, self._session_id)
                entry = self.activity_entry
                if entry is not None:
                    # Deferred activity attribution: one update per txn
                    # instead of one per statement.
                    total = 0.0
                    for batch in acc.values():
                        total += batch[1]
                    entry.wait_us += total
                    entry.last_wait = self._last_wait_event
        now = self._ctx.t_us if self._ctx is not None else self._obs.clock.now_us
        self._obs.hist_txn_latency.observe(max(0.0, now - self._start_us))
        if self._span is not None:
            self._span.set_attribute("outcome", outcome)
            self._obs.tracer.end_span(self._span)
        if self.activity_entry is not None:
            self._obs.activity.finish(self.activity_entry, outcome, end_us=now)


class LocalTransaction(_BaseTransaction):
    """Single-shard transaction: local XID + local snapshot only."""

    def __init__(self, cluster, ctx: Optional[CostContext] = None, cn_index: int = 0,
                 session_id: Optional[int] = None):
        super().__init__(cluster, ctx, cn_index, session_id)
        self._dn_index: Optional[int] = None
        self._dn = None          # the bound node object (failover detection)
        self.xid: Optional[int] = None
        self.snapshot: Optional[Snapshot] = None
        if self._obs is not None:
            self._span = self._obs.tracer.start_span(
                "txn.local", parent=None, node=_cn_node(cn_index))
        self._begin_activity("local", "local")

    @property
    def is_multi_shard(self) -> bool:
        return False

    def _bind(self, dn_index: int):
        if self._dn_index is None:
            self._dn_index = dn_index
            dn = self._cluster.dns[dn_index]
            self._dn = dn
            self.xid = dn.begin()
            self.snapshot = dn.local_snapshot()
            self._charge_dn_stmt(dn_index, self._ctx.model.dn_begin_us if self._ctx else 0.0)
            self._nw_bind += 1
            self._last_wait_event = WAIT_GTM_LOCAL
            if self.activity_entry is not None:
                self.activity_entry.txn_id = self.xid
            return dn
        if self._dn_index != dn_index:
            raise TransactionPromotionRequired(
                f"single-shard transaction bound to DN {self._dn_index} "
                f"touched DN {dn_index}"
            )
        return self._bound_dn()

    def _bound_dn(self):
        """The bound node — unless failover replaced it, killing this txn."""
        dn = self._cluster.dns[self._dn_index]
        if dn is not self._dn:
            self.poisoned = (f"dn{self._dn_index} failed over; "
                             "in-flight local transaction lost")
            self.state = TxnState.ABORTED
            self._cluster.stats.note_abort(multi_shard=False)
            self._finish_span("aborted")
            raise TransactionAborted(self.poisoned)
        return dn

    def _local_write_target(self, schema, table: str, key: object) -> int:
        """Route a single-shard point write, promoting when it cannot stay
        single-shard (replicated table on a multi-node cluster, or a slot
        inside a rebalance double-write window)."""
        if schema.distribution is Distribution.REPLICATION:
            if self._cluster.num_active_dns > 1:
                raise TransactionPromotionRequired(
                    "writing a replicated table is a multi-shard operation"
                )
            return self._cluster.dn_indices()[0]
        owner, moving = self._route_key(table, key)
        if moving is not None:
            raise TransactionPromotionRequired(
                "slot is rebalancing; the write must double-write to "
                "source and target"
            )
        return owner

    # -- operations ----------------------------------------------------------

    def read(self, table: str, key: object) -> Optional[Dict[str, object]]:
        self._require_running()
        self._charge_cn()
        schema = self._schema(table)
        if schema.distribution is Distribution.REPLICATION:
            dn = self._bind(self._dn_index if self._dn_index is not None
                            else self._cluster.dn_indices()[0])
        else:
            dn = self._bind(self._shard_for_key(table, key))
        self._charge_dn_stmt(dn.index, self._ctx.model.dn_stmt_us if self._ctx else 0.0)
        self._nw_scan += 1
        self._last_wait_event = WAIT_DN_SCAN
        return dn.read(table, key, self.snapshot, self.xid)

    def insert(self, table: str, row: Dict[str, object]) -> None:
        self._require_running()
        self._charge_cn()
        schema = self._schema(table)
        if schema.distribution is Distribution.REPLICATION:
            if self._cluster.num_active_dns > 1:
                raise TransactionPromotionRequired(
                    "writing a replicated table is a multi-shard operation"
                )
            dn = self._bind(self._cluster.dn_indices()[0])
        else:
            owner, moving = self._route_row(table, row)
            if moving is not None:
                raise TransactionPromotionRequired(
                    "slot is rebalancing; the write must double-write to "
                    "source and target"
                )
            dn = self._bind(owner)
        self._charge_dn_stmt(dn.index, self._ctx.model.dn_stmt_us if self._ctx else 0.0)
        self._nw_apply += 1
        self._last_wait_event = WAIT_DN_APPLY
        dn.insert(table, row, self.xid, self.snapshot)

    def update(self, table: str, key: object, values: Dict[str, object]) -> None:
        self._require_running()
        self._charge_cn()
        schema = self._schema(table)
        dn = self._bind(self._local_write_target(schema, table, key))
        self._charge_dn_stmt(dn.index, self._ctx.model.dn_stmt_us if self._ctx else 0.0)
        self._nw_apply += 1
        self._last_wait_event = WAIT_DN_APPLY
        dn.update(table, key, values, self.xid, self.snapshot)

    def delete(self, table: str, key: object) -> None:
        self._require_running()
        self._charge_cn()
        schema = self._schema(table)
        dn = self._bind(self._local_write_target(schema, table, key))
        self._charge_dn_stmt(dn.index, self._ctx.model.dn_stmt_us if self._ctx else 0.0)
        self._nw_apply += 1
        self._last_wait_event = WAIT_DN_APPLY
        dn.delete(table, key, self.xid, self.snapshot)

    def scan(self, table: str) -> Iterator[Tuple[object, Dict[str, object]]]:
        self._require_running()
        schema = self._schema(table)
        if (schema.distribution is not Distribution.REPLICATION
                and self._cluster.num_active_dns > 1):
            raise TransactionPromotionRequired(
                f"scanning hash-distributed table {table} spans all shards"
            )
        dn = self._bind(self._dn_index if self._dn_index is not None
                        else self._cluster.dn_indices()[0])
        keep = self._scan_filter(table, dn.index)
        if keep is None:
            return dn.scan(table, self.snapshot, self.xid)
        return ((key, values)
                for key, values in dn.scan(table, self.snapshot, self.xid)
                if keep(values))

    # -- completion --------------------------------------------------------

    def commit(self) -> None:
        self._require_running()
        if self._dn_index is not None:
            dn = self._bound_dn()          # raises if the node failed over
            self.state = TxnState.COMMITTING
            self._set_activity_state("committing")
            self._charge_dn(self._dn_index,
                            self._ctx.model.dn_commit_us if self._ctx else 0.0)
            self._wait(WAIT_DN_COMMIT, self._cost("dn_commit_us"))
            dn.commit(self.xid)
        else:
            self.state = TxnState.COMMITTING
            self._set_activity_state("committing")
        self.state = TxnState.COMMITTED
        self._cluster.stats.note_commit(multi_shard=False)
        self._finish_span("committed")
        self._cluster.maybe_prune_lcos()

    def abort(self) -> None:
        if self.state in (TxnState.COMMITTED, TxnState.ABORTED):
            return
        if self._dn_index is not None:
            dn = self._cluster.dns[self._dn_index]
            if dn is self._dn:             # failover already discarded it
                dn.abort(self.xid)
        self.state = TxnState.ABORTED
        self._cluster.stats.note_abort(multi_shard=False)
        self._finish_span("aborted")


class GlobalTransaction(_BaseTransaction):
    """Multi-shard transaction: GXID + global snapshot, merged per DN."""

    def __init__(self, cluster, ctx: Optional[CostContext] = None, cn_index: int = 0,
                 session_id: Optional[int] = None):
        super().__init__(cluster, ctx, cn_index, session_id)
        self.mode: TxnMode = cluster.mode
        if self._obs is not None:
            self._span = self._obs.tracer.start_span(
                "txn.global", parent=None, node=_cn_node(cn_index))
        if self.mode is TxnMode.CLASSICAL:
            snapshot_kind = "classical"
        elif self.mode is TxnMode.GTM_LITE_NAIVE:
            snapshot_kind = "local"
        else:
            snapshot_kind = "merged"
        self._begin_activity("global", snapshot_kind)
        # Simulated snapshot-acquisition cost: the GTM serializes a snapshot
        # whose size grows with the number of in-flight GXIDs.  The same
        # figure is charged to the cost context (when present) and observed
        # into the ``gtm.snapshot_us`` histogram, so telemetry exists even
        # in pure-correctness runs.
        model = cluster.profile.mpp
        snapshot_us = (model.gtm_snapshot_us
                       + model.gtm_snapshot_per_active_us
                       * cluster.gtm.active_count)
        if ctx is not None:
            # One begin interaction: GXID assignment plus the snapshot.
            self._charge_gtm(ctx.model.gtm_xid_us + snapshot_us)
        acquire_span = None
        if self._obs is not None:
            self._obs.hist_gtm_snapshot.observe(snapshot_us)
            acquire_span = self._obs.tracer.start_span(
                "gtm.snapshot", parent=self._span)
        self._wait(WAIT_GTM_GLOBAL, snapshot_us)
        self.gxid = cluster.gtm.begin()
        self.global_snapshot = cluster.gtm.snapshot(for_gxid=self.gxid)
        if self.activity_entry is not None:
            self.activity_entry.txn_id = self.gxid
        if acquire_span is not None:
            acquire_span.set_attribute("gxid", self.gxid)
            acquire_span.set_attribute("active", len(self.global_snapshot.active))
            self._obs.tracer.end_span(
                acquire_span, end_us=acquire_span.start_us + snapshot_us)
        self._local_xid: Dict[int, int] = {}          # dn index -> local xid
        self._local_view: Dict[int, object] = {}       # dn index -> snapshot
        self._written: Set[int] = set()                # dn indexes with writes
        # The cluster tracks in-flight globals so failover and recovery can
        # poison handles whose participant died (instead of stranding them
        # with local XIDs that no longer exist on the replacement node).
        registry = getattr(cluster, "_inflight_globals", None)
        if registry is not None:
            registry[self.gxid] = self

    @property
    def is_multi_shard(self) -> bool:
        return True

    def touched_nodes(self) -> List[int]:
        return sorted(self._local_xid)

    # -- per-DN attach ------------------------------------------------------

    def _attach(self, dn_index: int):
        dn = self._cluster.dns[dn_index]
        if dn_index in self._local_xid:
            return dn, self._local_xid[dn_index], self._local_view[dn_index]
        lxid = dn.begin(gxid=self.gxid)
        local_snapshot = dn.local_snapshot()
        self._charge_dn_stmt(dn_index, self._ctx.model.dn_begin_us if self._ctx else 0.0)
        self._nw_bind += 1
        self._last_wait_event = WAIT_GTM_LOCAL
        if self.mode is TxnMode.CLASSICAL:
            view: object = ClassicalSnapshot(self.global_snapshot, dn.ltm,
                                             self._cluster.gtm)
        elif self.mode is TxnMode.GTM_LITE_NAIVE:
            view = naive_merge(local_snapshot).snapshot
        else:
            if self._obs is not None and self.activity_entry is not None:
                self._obs.activity.enter_wait(self.activity_entry)
            outcome = merge_snapshots(
                self.global_snapshot,
                local_snapshot,
                dn.ltm,
                self._cluster.gtm,
                enable_downgrade=self.mode.downgrade_enabled,
                enable_upgrade=self.mode.upgrade_enabled,
                obs=self._obs,
                parent_span=self._span,
                session=self._session_id,
                # UPGRADE: pause until the writer's local commit confirmation
                # lands — a slim window, about one network round trip each.
                wait_us_per_upgrade=2 * self._cost("lan_hop_us"),
            )
            if self._obs is not None and self.activity_entry is not None:
                self._obs.activity.leave_wait(self.activity_entry)
            self._charge_dn(
                dn_index, self._ctx.model.dn_merge_snapshot_us if self._ctx else 0.0
            )
            if outcome.upgrade_waits:
                wait_us = 2 * self._cost("lan_hop_us") * outcome.upgrade_waits
                if self._ctx is not None:
                    self._ctx.charge_local(wait_us)
                if self.activity_entry is not None:
                    self.activity_entry.note_wait(WAIT_MERGE_UPGRADE, wait_us)
            self._cluster.stats.note_merge(outcome)
            view = outcome.snapshot
        self._local_xid[dn_index] = lxid
        self._local_view[dn_index] = view
        return dn, lxid, view

    # -- operations ---------------------------------------------------------

    def read(self, table: str, key: object) -> Optional[Dict[str, object]]:
        self._require_running()
        self._charge_cn()
        schema = self._schema(table)
        if schema.distribution is Distribution.REPLICATION:
            dn_index = (min(self._local_xid) if self._local_xid
                        else self._cluster.dn_indices()[0])
        else:
            dn_index = self._shard_for_key(table, key)
        dn, lxid, view = self._attach(dn_index)
        self._charge_dn_stmt(dn_index, self._ctx.model.dn_stmt_us if self._ctx else 0.0)
        self._nw_scan += 1
        self._last_wait_event = WAIT_DN_SCAN
        return dn.read(table, key, view, lxid)

    def _apply_on(self, dn_index: int, op) -> None:
        """Charge + apply one write statement on one participant."""
        dn, lxid, view = self._attach(dn_index)
        self._charge_dn_stmt(dn_index, self._ctx.model.dn_stmt_us if self._ctx else 0.0)
        self._nw_apply += 1
        self._last_wait_event = WAIT_DN_APPLY
        op(dn, lxid, view)
        self._written.add(dn_index)

    def insert(self, table: str, row: Dict[str, object]) -> None:
        self._require_running()
        self._charge_cn()
        schema = self._schema(table)
        if schema.distribution is Distribution.REPLICATION:
            for dn_index in self._cluster.dn_indices():
                self._apply_on(dn_index, lambda dn, lxid, view:
                               dn.insert(table, row, lxid, view))
            return
        owner, moving = self._route_row(table, row)
        self._apply_on(owner, lambda dn, lxid, view:
                       dn.insert(table, row, lxid, view))
        if moving is not None:
            # Double-write window: the slot's rows are being copied to a
            # new owner; a fresh key cannot have been snapshot-copied yet,
            # so a plain insert lands it on the target too.  2PC makes the
            # pair atomic.
            self._apply_on(moving, lambda dn, lxid, view:
                           dn.insert(table, row, lxid, view))

    def update(self, table: str, key: object, values: Dict[str, object]) -> None:
        self._require_running()
        self._charge_cn()
        schema = self._schema(table)
        if schema.distribution is Distribution.REPLICATION:
            for dn_index in self._cluster.dn_indices():
                self._apply_on(dn_index, lambda dn, lxid, view:
                               dn.update(table, key, values, lxid, view))
            return
        owner, moving = self._route_key(table, key)
        self._apply_on(owner, lambda dn, lxid, view:
                       dn.update(table, key, values, lxid, view))
        if moving is not None:
            # The target may not hold the row yet (snapshot copy still in
            # flight), so the double-write is an upsert of the post-update
            # image read back from the owner (own writes are visible).
            dn, lxid, view = self._attach(owner)
            image = dn.read(table, key, view, lxid)
            if image is not None:
                self._apply_on(moving, lambda dn, lxid, view:
                               dn.update(table, key, dict(image), lxid, view)
                               if dn.read(table, key, view, lxid) is not None
                               else dn.insert(table, dict(image), lxid, view))

    def delete(self, table: str, key: object) -> None:
        self._require_running()
        self._charge_cn()
        schema = self._schema(table)
        if schema.distribution is Distribution.REPLICATION:
            for dn_index in self._cluster.dn_indices():
                self._apply_on(dn_index, lambda dn, lxid, view:
                               dn.delete(table, key, lxid, view))
            return
        owner, moving = self._route_key(table, key)
        self._apply_on(owner, lambda dn, lxid, view:
                       dn.delete(table, key, lxid, view))
        if moving is not None:
            # Delete the target's copy only if the snapshot copy (or an
            # earlier double-write) already landed it there.
            self._apply_on(moving, lambda dn, lxid, view:
                           dn.delete(table, key, lxid, view)
                           if dn.read(table, key, view, lxid) is not None
                           else None)

    def scan(self, table: str) -> Iterator[Tuple[object, Dict[str, object]]]:
        self._require_running()
        self._charge_cn()
        schema = self._schema(table)
        if schema.distribution is Distribution.REPLICATION:
            dn, lxid, view = self._attach(self._cluster.dn_indices()[0])
            yield from dn.scan(table, view, lxid)
            return
        # The data nodes scan their shards concurrently: the coordinator
        # fans the statement out and waits for the slowest node, so the
        # client's cursor advances by the max across DNs, not the serial
        # sum.  Each node's service time is still attributed individually
        # in sys.wait_events.
        indices = self._cluster.dn_indices()
        handles = [self._attach(dn_index) for dn_index in indices]
        start_us = self._ctx.t_us if self._ctx is not None else 0.0
        end_us = start_us
        for dn_index in indices:
            if self._ctx is not None:
                self._ctx.t_us = start_us
                self._charge_dn_stmt(dn_index, self._ctx.model.dn_stmt_us)
                end_us = max(end_us, self._ctx.t_us)
            self._nw_scan += 1
            self._last_wait_event = WAIT_DN_SCAN
        if self._ctx is not None:
            self._ctx.t_us = end_us
            self._sync_obs()
        for dn, lxid, view in handles:
            keep = self._scan_filter(table, dn.index)
            if keep is None:
                yield from dn.scan(table, view, lxid)
            else:
                for key, values in dn.scan(table, view, lxid):
                    if keep(values):
                        yield key, values

    def scan_shard(self, table: str,
                   dn_index: int) -> Iterator[Tuple[object, Dict[str, object]]]:
        """Scan one node's slice of ``table`` — a hash shard, or the local
        replica of a replicated table.  This is the plan-fragment scan path:
        each fragment reads only the node it runs on."""
        self._require_running()
        dn, lxid, view = self._attach(dn_index)
        self._charge_dn_stmt(dn_index, self._ctx.model.dn_stmt_us if self._ctx else 0.0)
        self._nw_scan += 1
        self._last_wait_event = WAIT_DN_SCAN
        keep = self._scan_filter(table, dn.index)
        if keep is None:
            yield from dn.scan(table, view, lxid)
        else:
            for key, values in dn.scan(table, view, lxid):
                if keep(values):
                    yield key, values

    def shard_column_store(self, table: str, dn_index: int):
        """One node's slice of ``table`` as a column-store MVCC snapshot,
        for fragments that run the vectorized kernels."""
        self._require_running()
        dn, lxid, view = self._attach(dn_index)
        self._charge_dn_stmt(dn_index, self._ctx.model.dn_stmt_us if self._ctx else 0.0)
        self._nw_scan += 1
        self._last_wait_event = WAIT_DN_SCAN
        return dn.column_store_snapshot(
            table, view, lxid, row_filter=self._scan_filter(table, dn.index))

    # -- completion ----------------------------------------------------------

    def commit(self) -> None:
        """Run the full commit sequence in protocol order."""
        steps = self.commit_stepwise()
        steps.prepare_all()
        steps.commit_at_gtm()
        steps.finish()

    def commit_stepwise(self) -> "CommitSteps":
        self._require_running()
        self.state = TxnState.COMMITTING
        self._set_activity_state("committing")
        return CommitSteps(self)

    def abort(self) -> None:
        if self.state in (TxnState.COMMITTED, TxnState.ABORTED):
            return
        if self._cluster.gtm.is_committed(self.gxid):
            # Past the GTM commit point the outcome is decided: the local
            # commits are inevitable and rollback is no longer possible.
            raise InvalidTransactionState(
                f"gxid {self.gxid} already committed at the GTM; cannot abort"
            )
        for dn_index, lxid in list(self._local_xid.items()):
            self._release_local(dn_index, lxid)
        if self._cluster.gtm.clog.is_in_doubt(self.gxid):
            self._cluster.gtm.abort(self.gxid)
        self.state = TxnState.ABORTED
        # Derive the stat split from what was actually written — a global
        # transaction that wrote one shard (or none) is not a multi-shard
        # abort, exactly as ``note_commit`` classifies the commit side.
        self._cluster.stats.note_abort(multi_shard=len(self._written) > 1)
        self._finish_span("aborted")
        self._unregister()

    # -- failure handling ---------------------------------------------------

    def _release_local(self, dn_index: int, lxid: int) -> None:
        """Roll back one participant, tolerating failover and recovery.

        A replaced node never heard of our local XID (or reuses it for a
        different transaction), and recovery may have resolved it already —
        only a still-live XID that provably belongs to this GXID is aborted.
        """
        dn = self._cluster.dns[dn_index]
        if dn.ltm.xid_map.get(self.gxid) != lxid:
            return
        if not dn.ltm.clog.knows(lxid):
            return
        if dn.ltm.clog.get(lxid) in (TxnStatus.IN_PROGRESS, TxnStatus.PREPARED):
            dn.abort(lxid)

    def _unregister(self) -> None:
        registry = getattr(self._cluster, "_inflight_globals", None)
        if registry is not None:
            registry.pop(self.gxid, None)

    def poison(self, reason: str, failed_dn: Optional[int] = None) -> bool:
        """Abort this in-flight handle because a participant node died.

        Rolls back the surviving participants (skipping ``failed_dn`` — that
        node's state died with it) and the GTM entry, then marks the handle
        so any later use raises :class:`TransactionAborted` with ``reason``.
        A transaction already committed at the GTM is *not* poisoned: its
        outcome is decided and recovery rolls the survivors forward.
        Returns True if the handle was poisoned.
        """
        if self.state in (TxnState.COMMITTED, TxnState.ABORTED):
            return False
        if self._cluster.gtm.is_committed(self.gxid):
            return False
        for dn_index, lxid in list(self._local_xid.items()):
            if dn_index == failed_dn:
                continue
            self._release_local(dn_index, lxid)
        if self._cluster.gtm.clog.is_in_doubt(self.gxid):
            self._cluster.gtm.abort(self.gxid)
        self.poisoned = reason
        self.state = TxnState.ABORTED
        self._cluster.stats.note_abort(multi_shard=len(self._written) > 1)
        self._finish_span("aborted")
        self._unregister()
        return True

    def mark_recovery_aborted(self) -> None:
        """Recovery presumed-aborted this GXID; seal the zombie handle.

        The data-node state is already resolved (recovery rolled it back),
        so only the handle itself is marked.
        """
        if self.state in (TxnState.COMMITTED, TxnState.ABORTED):
            self._unregister()
            return
        self.poisoned = (f"gxid {self.gxid} presumed aborted by recovery")
        self.state = TxnState.ABORTED
        self._cluster.stats.note_abort(multi_shard=len(self._written) > 1)
        self._finish_span("aborted")
        self._unregister()


class CommitSteps:
    """Explicit commit sequencing for a :class:`GlobalTransaction`.

    GTM-lite order: prepare on every written node, commit at the GTM, then
    confirm (commit prepared) on each node.  The classical baseline confirms
    on the nodes *first* and dequeues from the GTM last, which is why it has
    no anomaly window.  Tests drive these methods one at a time.
    """

    def __init__(self, txn: GlobalTransaction):
        self._txn = txn
        self._prepared = False
        self._gtm_committed = False
        self._confirmed: Set[int] = set()

    def _traced(self, name: str, **attributes):
        """Open a 2PC-phase span under the transaction's span, or None.

        2PC is coordinator-driven, so the phase spans are attributed to the
        CN; the per-node service time they cover is in ``sys.wait_events``.
        """
        txn = self._txn
        if txn._obs is None:
            return None
        return txn._obs.tracer.start_span(
            name, parent=txn._span, node=_cn_node(txn._cn_index),
            **attributes)

    def _end(self, span) -> None:
        if span is not None:
            self._txn._obs.tracer.end_span(span)

    @property
    def pending_nodes(self) -> List[int]:
        return sorted(set(self._txn._written) - self._confirmed)

    # -- fault plumbing -----------------------------------------------------

    def _fire(self, failpoint: str, **ctx):
        """Hit a failpoint; honor injected delays; pass exceptions through."""
        txn = self._txn
        faults = getattr(txn._cluster, "faults", None)
        if faults is None:
            return None
        outcome = faults.fire(failpoint, gxid=txn.gxid, **ctx)
        if outcome.delay_us > 0.0:
            txn._wait(WAIT_FAULT_DELAY, outcome.delay_us)
            if txn._ctx is not None:
                txn._ctx.charge_local(outcome.delay_us)
                txn._sync_obs()
        return outcome

    def _coord_fire(self, failpoint: str) -> None:
        """A failpoint modeling the *coordinator's* own death.

        :class:`CoordinatorCrash` abandons the sequence: the handle is sealed
        and unregistered, and whatever 2PC state exists stays exactly as-is
        for ``recovery.resolve_in_doubt`` to find.
        """
        try:
            self._fire(failpoint)
        except CoordinatorCrash:
            self._abandon()
            raise

    def _abandon(self) -> None:
        txn = self._txn
        txn.poisoned = "coordinator crashed mid-commit"
        txn._finish_span("abandoned")
        txn._unregister()

    def _check_crashed(self, dn_index: int) -> None:
        dn = self._txn._cluster.dns[dn_index]
        if getattr(dn, "crashed", False):
            raise InjectedTimeout(f"dn{dn_index} is down", dn_index=dn_index)

    def _stall(self, attempt: int) -> None:
        """Pay for one timed-out attempt: the timeout plus the backoff."""
        txn = self._txn
        policy = txn._cluster.retry_policy
        stall_us = policy.timeout_us + policy.backoff_us(attempt)
        txn._wait(WAIT_FAULT_RETRY, stall_us)
        if txn._obs is not None:
            txn._obs.metrics.counter("faults.retries").inc()
        if txn._ctx is not None:
            txn._ctx.charge_local(stall_us)
            txn._sync_obs()

    def _with_dn_retry(self, dn_index: int, attempt_fn, phase: str) -> None:
        """Run one per-node 2PC step under timeout/retry/escalation.

        Timeouts retry with exponential backoff up to the policy's attempt
        budget; exhaustion declares the node dead and escalates to failover
        (or read-only degradation).  After escalation, a GTM-committed
        transaction continues — recovery already rolled its write forward —
        while an undecided one aborts.
        """
        txn = self._txn
        policy = txn._cluster.retry_policy
        attempt = 0
        while True:
            try:
                attempt_fn()
                return
            except InjectedTimeout:
                self._stall(attempt)
                attempt += 1
                if attempt >= policy.max_attempts:
                    self._escalate(dn_index, phase)
                    return
            except TransactionAborted:
                # A participant refused (standby unreachable at prepare):
                # global abort, all survivors rolled back.
                if txn.poisoned is None:
                    txn.poison(f"participant dn{dn_index} refused to {phase}")
                raise

    def _escalate(self, dn_index: int, phase: str) -> None:
        """The retry budget is spent: declare the node dead and fail over."""
        txn = self._txn
        cluster = txn._cluster
        txn._wait(WAIT_FAULT_FAILOVER, cluster.retry_policy.failover_us)
        if txn._ctx is not None:
            txn._ctx.charge_local(cluster.retry_policy.failover_us)
            txn._sync_obs()
        cluster.declare_node_dead(
            dn_index, reason=f"unresponsive during 2pc {phase}")
        if cluster.gtm.is_committed(txn.gxid):
            # The commit decision was durable; recovery rolled this node's
            # write forward on the replacement (or the degraded shard).
            return
        if txn.poisoned is None:
            txn.poison(f"participant dn{dn_index} died before the commit "
                       "decision", failed_dn=dn_index)
        raise TransactionAborted(
            txn.poisoned or f"participant dn{dn_index} died")

    # -- the protocol steps -------------------------------------------------

    def _prepare_one(self, dn_index: int) -> None:
        txn = self._txn

        def attempt() -> None:
            self._fire(FP_PREPARE_BEFORE, dn=dn_index)
            self._check_crashed(dn_index)
            dn = txn._cluster.dns[dn_index]
            lxid = txn._local_xid[dn_index]
            txn._charge_dn(dn_index,
                           txn._ctx.model.dn_prepare_us if txn._ctx else 0.0)
            txn._wait(WAIT_2PC_PREPARE, txn._cost("dn_prepare_us"))
            if dn.ltm.xid_map.get(txn.gxid) != lxid:
                raise TransactionAborted(
                    f"dn{dn_index} failed over; prepare has no transaction "
                    "to act on")
            # Idempotent against a lost ack: a retried prepare that already
            # landed must not re-flip the clog (PREPARED -> PREPARED raises).
            if dn.ltm.clog.get(lxid) is not TxnStatus.PREPARED:
                dn.prepare(lxid)
            self._fire(FP_PREPARE_AFTER, dn=dn_index)

        self._with_dn_retry(dn_index, attempt, "prepare")

    def prepare_all(self) -> None:
        if self._prepared:
            raise InvalidTransactionState("already prepared")
        txn = self._txn
        span = self._traced("2pc.prepare", nodes=len(txn._written))
        try:
            for dn_index in sorted(txn._written):
                self._prepare_one(dn_index)
        finally:
            self._end(span)
        self._prepared = True
        self._coord_fire(FP_COORD_AFTER_PREPARE)
        if txn.mode is TxnMode.CLASSICAL:
            # Classical order: data nodes commit before the GTM dequeues.
            self._confirm_all()

    def commit_at_gtm(self) -> None:
        if not self._prepared:
            raise InvalidTransactionState("prepare before GTM commit")
        if self._gtm_committed:
            raise InvalidTransactionState("already committed at GTM")
        txn = self._txn
        policy = txn._cluster.retry_policy
        span = self._traced("2pc.gtm_commit", gxid=txn.gxid)
        try:
            attempt = 0
            while True:
                try:
                    # A lost GTM commit-log write looks like a timeout: the
                    # coordinator cannot tell a slow GTM from a dead one.
                    self._coord_fire(FP_GTM_COMMIT)
                    break
                except InjectedTimeout:
                    self._stall(attempt)
                    attempt += 1
                    if attempt >= policy.max_attempts:
                        # Without the GTM there is no commit decision; the
                        # coordinator is as good as dead.  Abandon in place.
                        self._abandon()
                        raise CoordinatorCrash(
                            f"gtm unreachable committing gxid {txn.gxid}")
            txn._charge_gtm(txn._ctx.model.gtm_commit_us if txn._ctx else 0.0)
            txn._wait(WAIT_2PC_COMMIT, txn._cost("gtm_commit_us"))
            txn._cluster.gtm.commit(txn.gxid)
        finally:
            self._end(span)
        self._gtm_committed = True
        self._coord_fire(FP_COORD_AFTER_GTM_COMMIT)

    def _confirm_lxid(self, dn_index: int) -> Optional[int]:
        """The local XID still awaiting this GXID's confirmation, if any.

        After a failover the replacement node carries a *different* XID for
        the GXID (re-instated from the standby's staged prepare), and
        recovery may have resolved it already — so resolve through the
        node's current xidMap and status instead of the coordinator's view.
        """
        txn = self._txn
        dn = txn._cluster.dns[dn_index]
        mapped = dn.ltm.xid_map.get(txn.gxid)
        if mapped is None or not dn.ltm.clog.knows(mapped):
            return None
        if dn.ltm.clog.get(mapped) is TxnStatus.PREPARED:
            return mapped
        return None                       # already resolved (e.g. recovery)

    def _confirm_one(self, dn_index: int) -> None:
        txn = self._txn

        def attempt() -> None:
            outcome = self._fire(FP_CONFIRM_BEFORE, dn=dn_index)
            if outcome is not None and outcome.dropped:
                # The confirmation vanished in flight and the coordinator
                # moves on believing it was delivered: the node stays
                # PREPARED — the paper's Anomaly-1 window held open until
                # UPGRADE (readers) or recovery (permanently) closes it.
                if txn._obs is not None:
                    txn._obs.metrics.counter("faults.dropped_confirms").inc()
                return
            self._check_crashed(dn_index)
            dn = txn._cluster.dns[dn_index]
            txn._charge_dn(dn_index,
                           txn._ctx.model.dn_commit_prepared_us if txn._ctx else 0.0)
            txn._wait(WAIT_2PC_COMMIT, txn._cost("dn_commit_prepared_us"))
            lxid = self._confirm_lxid(dn_index)
            if lxid is not None:
                dn.commit(lxid)
            self._fire(FP_CONFIRM_AFTER, dn=dn_index)

        self._with_dn_retry(dn_index, attempt, "confirm")
        self._confirmed.add(dn_index)

    def confirm_at(self, dn_index: int) -> None:
        """Deliver the commit confirmation to one data node."""
        txn = self._txn
        if txn.mode is TxnMode.CLASSICAL:
            raise InvalidTransactionState(
                "classical protocol confirms during prepare_all"
            )
        if not self._gtm_committed:
            raise InvalidTransactionState("GTM commit must precede confirmations")
        if dn_index in self._confirmed:
            return
        if dn_index not in txn._written:
            raise InvalidTransactionState(f"node {dn_index} has nothing to confirm")
        self._confirm_one(dn_index)

    def _confirm_all(self) -> None:
        pending = self.pending_nodes
        span = self._traced("2pc.confirm", nodes=len(pending)) if pending else None
        try:
            for n, dn_index in enumerate(pending):
                if n > 0:
                    self._coord_fire(FP_COORD_BETWEEN_CONFIRMS)
                self._confirm_one(dn_index)
        finally:
            self._end(span)

    def finish(self) -> None:
        """Complete whatever remains of the sequence."""
        txn = self._txn
        if not self._prepared:
            self.prepare_all()
        if not self._gtm_committed:
            self.commit_at_gtm()
        if txn.mode is not TxnMode.CLASSICAL:
            self._confirm_all()
        # Read-only participants never prepared; release them (unless a
        # failover already swept them away with their node).
        for dn_index, lxid in txn._local_xid.items():
            if dn_index not in txn._written:
                dn = txn._cluster.dns[dn_index]
                if dn.ltm.xid_map.get(txn.gxid) == lxid:
                    dn.commit(lxid)
        txn.state = TxnState.COMMITTED
        txn._cluster.stats.note_commit(multi_shard=True)
        txn._finish_span("committed")
        txn._unregister()
        txn._cluster.maybe_prune_lcos()
