"""The paper's primary contribution: GTM-lite distributed transactions."""

from repro.core.classical import ClassicalSnapshot
from repro.core.gtm import GlobalTransactionManager, GtmStats
from repro.core.merge import MergeOutcome, merge_snapshots, naive_merge

__all__ = [
    "GlobalTransactionManager", "GtmStats",
    "merge_snapshots", "naive_merge", "MergeOutcome",
    "ClassicalSnapshot",
]
