"""The Global Transaction Manager (GTM).

One logical server that assigns ascending global transaction ids (GXIDs) and
serves global snapshots (the list of currently active GXIDs).  Under the
classical protocol every transaction enqueues here; under GTM-lite only
multi-shard transactions do — which is the entire point of the paper's
Section II-A.

The GTM's serialized work is charged to a single :class:`~repro.net.resource.
Resource` by the cluster, which is what makes it the scalability bottleneck
in the Figure 3 baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from repro.common.errors import InvalidTransactionState
from repro.txn.snapshot import Snapshot
from repro.txn.status import StatusLog, TxnStatus
from repro.txn.xid import XidAllocator


@dataclass
class GtmStats:
    """Request counters: the GTM's traffic under a workload."""

    begins: int = 0
    snapshots: int = 0
    commits: int = 0
    aborts: int = 0

    @property
    def total_requests(self) -> int:
        return self.begins + self.snapshots + self.commits + self.aborts

    def as_dict(self) -> dict:
        return {
            "begins": self.begins,
            "snapshots": self.snapshots,
            "commits": self.commits,
            "aborts": self.aborts,
            "total": self.total_requests,
        }

    def reset(self) -> None:
        self.begins = 0
        self.snapshots = 0
        self.commits = 0
        self.aborts = 0


class GlobalTransactionManager:
    """GXID allocation, global active list and global commit log."""

    def __init__(self, obs=None) -> None:
        self._alloc = XidAllocator()
        self.clog = StatusLog()
        self._active: Set[int] = set()
        self._holder_xmin: dict = {}
        self.stats = GtmStats()
        #: Optional :class:`repro.obs.Observability`; when the cluster wires
        #: one in, request counters and the active-list gauge are mirrored
        #: into the shared metric namespace.
        self.obs = obs

    def _note(self, metric: str) -> None:
        if self.obs is not None:
            self.obs.metrics.counter(metric).inc()
            self.obs.metrics.gauge("gtm.active").set(len(self._active))

    def begin(self) -> int:
        """Assign a GXID and enqueue it on the active list."""
        gxid = self._alloc.allocate()
        self.clog.begin(gxid)
        self._active.add(gxid)
        self.stats.begins += 1
        self._note("gtm.begin")
        return gxid

    def snapshot(self, for_gxid: Optional[int] = None) -> Snapshot:
        """The global snapshot: every GXID still on the active list.

        When ``for_gxid`` is given, the GTM remembers the snapshot's xmin so
        :meth:`snapshot_horizon` can tell data nodes how far back any live
        reader might look (the LCO garbage-collection horizon).
        """
        self.stats.snapshots += 1
        self._note("gtm.snapshot")
        xmax = self._alloc.next_xid
        active = frozenset(self._active)
        xmin = min(active) if active else xmax
        if for_gxid is not None and for_gxid in self._active:
            self._holder_xmin[for_gxid] = xmin
        return Snapshot(xmin=xmin, xmax=xmax, active=active)

    def snapshot_horizon(self) -> int:
        """Oldest GXID any live global snapshot could still see as running.

        LCO entries for multi-shard transactions resolved strictly below
        the horizon can never be downgraded by a current or future merge,
        so data nodes may drop them.
        """
        if not self._holder_xmin:
            return self._alloc.next_xid
        return min(self._holder_xmin.values())

    def commit(self, gxid: int) -> None:
        """Mark committed and dequeue from the active list.

        Under GTM-lite this happens *before* the data nodes confirm their
        local commits — the ordering that opens the paper's Anomaly 1 window.
        """
        if gxid not in self._active:
            raise InvalidTransactionState(f"gxid {gxid} is not active")
        self.clog.set(gxid, TxnStatus.COMMITTED)
        self._active.discard(gxid)
        self._holder_xmin.pop(gxid, None)
        self.stats.commits += 1
        self._note("gtm.commit")

    def abort(self, gxid: int) -> None:
        if gxid not in self._active:
            raise InvalidTransactionState(f"gxid {gxid} is not active")
        self.clog.set(gxid, TxnStatus.ABORTED)
        self._active.discard(gxid)
        self._holder_xmin.pop(gxid, None)
        self.stats.aborts += 1
        self._note("gtm.abort")

    def is_committed(self, gxid: int) -> bool:
        return self.clog.knows(gxid) and self.clog.is_committed(gxid)

    @property
    def active_count(self) -> int:
        return len(self._active)
