"""The classical (baseline) GTM protocol's visibility view.

Under the Postgres-XC-style baseline every transaction — single-shard or
not — takes a GXID and a *global* snapshot.  On a data node, tuple headers
carry local XIDs, so the baseline reader translates: local XID -> GXID (via
the DN's gxid mapping), then tests the GXID against the global snapshot and
the GTM commit log.

Because the global active list only drops a transaction *after* every data
node confirmed its commit, this view is anomaly-free; the price is that the
GTM serializes a begin/snapshot/commit round trip into every transaction,
which Figure 3 shows throttling scalability.
"""

from __future__ import annotations

from repro.core.gtm import GlobalTransactionManager
from repro.txn.manager import LocalTransactionManager
from repro.txn.snapshot import Snapshot
from repro.txn.status import StatusLog
from repro.txn.xid import INVALID_XID


class ClassicalSnapshot:
    """Duck-typed snapshot: global visibility over local tuple headers."""

    def __init__(self, global_snapshot: Snapshot, ltm: LocalTransactionManager,
                 gtm: GlobalTransactionManager):
        self._global = global_snapshot
        self._ltm = ltm
        self._gtm = gtm

    @property
    def xmin(self) -> int:
        return self._global.xmin

    @property
    def xmax(self) -> int:
        return self._global.xmax

    @property
    def active(self) -> frozenset:
        return self._global.active

    def sees_as_running(self, local_xid: int) -> bool:
        gxid = self._ltm.gxid_for(local_xid)
        if gxid is None:
            # Pure-local transaction: cannot exist under the classical
            # protocol; treat its work as invisible-in-flight to be safe.
            return True
        return self._global.sees_as_running(gxid)

    def xid_visible(self, local_xid: int, clog: StatusLog,
                    own_xid: int = INVALID_XID) -> bool:
        if local_xid == INVALID_XID:
            return False
        if local_xid == own_xid:
            return True
        gxid = self._ltm.gxid_for(local_xid)
        if gxid is None:
            return False
        if self._global.sees_as_running(gxid):
            return False
        return self._gtm.is_committed(gxid)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ClassicalSnapshot(global={self._global})"
