"""The Figure 3 experiment: GTM-lite scalability vs the classical baseline.

Reproduces the paper's setup: "we deployed the database on various cluster
sizes from 1 node, 2 nodes, 4 nodes up to 8 nodes.  We modified the TPC-C
benchmark to issue 100% single-shard (SS) or 90% single-shard transactions
(MS)."  Each (cluster size, workload mix, protocol) cell runs the TPC-C-lite
simulation and reports committed-transaction throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cluster.mpp import MppCluster
from repro.cluster.txn import TxnMode
from repro.workloads.driver import SimResult, run_oltp
from repro.workloads.tpcc_lite import TpccLiteWorkload, load_tpcc

#: The paper's two workload mixes: label -> multi-shard fraction.
FIGURE3_WORKLOADS: Dict[str, float] = {"SS": 0.0, "MS": 0.1}

#: The paper's cluster sizes.
FIGURE3_NODE_COUNTS: Tuple[int, ...] = (1, 2, 4, 8)


@dataclass
class Figure3Cell:
    """One point of Figure 3."""

    nodes: int
    workload: str
    mode: TxnMode
    result: SimResult

    @property
    def throughput_tps(self) -> float:
        return self.result.throughput_tps

    def as_row(self) -> dict:
        return {
            "nodes": self.nodes,
            "workload": self.workload,
            "mode": self.mode.value,
            "throughput_tps": round(self.result.throughput_tps, 1),
            "committed": self.result.committed,
            "aborted": self.result.aborted,
            "bottleneck": self.result.bottleneck,
            "gtm_requests": self.result.gtm_requests,
        }


def run_cell(
    nodes: int,
    multi_shard_fraction: float,
    mode: TxnMode,
    warehouses_per_node: int = 4,
    clients_per_dn: int = 8,
    txns_per_client: int = 40,
    seed: int = 42,
) -> SimResult:
    """Run one (cluster size, mix, protocol) measurement."""
    cluster = MppCluster(num_dns=nodes, num_cns=max(1, nodes), mode=mode)
    num_warehouses = warehouses_per_node * nodes
    if multi_shard_fraction > 0:
        num_warehouses = max(num_warehouses, 2)
    load_tpcc(cluster, num_warehouses, seed=seed)
    workload = TpccLiteWorkload(
        num_warehouses=num_warehouses,
        multi_shard_fraction=multi_shard_fraction,
        seed=seed,
    )
    return run_oltp(
        cluster, workload,
        clients_per_dn=clients_per_dn,
        txns_per_client=txns_per_client,
    )


def figure3(
    node_counts: Sequence[int] = FIGURE3_NODE_COUNTS,
    workloads: Optional[Dict[str, float]] = None,
    modes: Iterable[TxnMode] = (TxnMode.GTM_LITE, TxnMode.CLASSICAL),
    **cell_kwargs,
) -> List[Figure3Cell]:
    """Run the full Figure 3 grid and return its cells."""
    workloads = workloads if workloads is not None else FIGURE3_WORKLOADS
    cells: List[Figure3Cell] = []
    for nodes in node_counts:
        for label, fraction in workloads.items():
            for mode in modes:
                result = run_cell(nodes, fraction, mode, **cell_kwargs)
                cells.append(Figure3Cell(nodes, label, mode, result))
    return cells


def format_figure3(cells: Sequence[Figure3Cell]) -> str:
    """Render Figure 3 as the throughput-vs-nodes table the paper plots."""
    by_series: Dict[Tuple[str, str], Dict[int, float]] = {}
    node_set = sorted({c.nodes for c in cells})
    for cell in cells:
        series = (cell.workload, cell.mode.value)
        by_series.setdefault(series, {})[cell.nodes] = cell.throughput_tps
    header = "series".ljust(24) + "".join(f"{n:>12}" for n in node_set)
    lines = [header, "-" * len(header)]
    for (workload, mode), points in sorted(by_series.items()):
        label = f"{workload}/{mode}".ljust(24)
        row = "".join(f"{points.get(n, float('nan')):>12.0f}" for n in node_set)
        lines.append(label + row)
    return "\n".join(lines)
