"""Algorithm 1 — MergeSnapshot.

A multi-shard reader under GTM-lite holds a *global* snapshot (taken at the
GTM when it began) and, on each data node it visits, a *local* snapshot
(taken when it first arrives there).  The two were taken at different times,
so their views can conflict; the paper identifies two anomalies and resolves
them by merging the snapshots:

* **Anomaly 1** — the global snapshot says a writer committed, but locally it
  is still PREPARED (the commit confirmation has not reached this node yet).
  Resolution: **UPGRADE** — wait for the local commit and treat the writer as
  committed.  Safe because a prepared transaction whose GXID committed at the
  GTM can no longer abort.
* **Anomaly 2** — the global snapshot says a writer T1 is active, but locally
  T1 (and possibly a later T3 that overwrote T1's data) already committed.
  Resolution: **DOWNGRADE** — re-hide T1 *and every later local commit that
  data-depends on it*, by walking the local commit order (LCO) and tainting
  write sets transitively.

The output is a :class:`~repro.txn.snapshot.MergedSnapshot` in the node's
local XID space, used as the visibility criterion for every tuple access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set

from repro.core.gtm import GlobalTransactionManager
from repro.obs.waits import WAIT_MERGE_UPGRADE
from repro.txn.manager import LocalTransactionManager
from repro.txn.snapshot import MergedSnapshot, Snapshot
from repro.txn.writeset import WriteSet


@dataclass
class MergeOutcome:
    """A merged snapshot plus what the merge had to do to build it."""

    snapshot: MergedSnapshot
    downgraded: Set[int] = field(default_factory=set)
    upgraded: Set[int] = field(default_factory=set)
    # UPGRADE means "pause and wait for local commit"; the cluster charges a
    # wait per upgraded transaction.  DOWNGRADE is a pure snapshot edit.
    upgrade_waits: int = 0


def merge_snapshots(
    global_snapshot: Snapshot,
    local_snapshot: Snapshot,
    ltm: LocalTransactionManager,
    gtm: GlobalTransactionManager,
    enable_downgrade: bool = True,
    enable_upgrade: bool = True,
    obs=None,
    parent_span=None,
    session=None,
    wait_us_per_upgrade: float = 0.0,
) -> MergeOutcome:
    """Run Algorithm 1 for one reader on one data node.

    ``enable_downgrade`` / ``enable_upgrade`` exist for the ablation
    benchmark: switching either off reproduces the corresponding anomaly.
    When an :class:`repro.obs.Observability` is supplied the merge emits a
    ``snapshot.merge`` span (child of ``parent_span``, normally the
    transaction's span) carrying the upgrade/downgrade counts, and — if any
    UPGRADE paused the reader — records a ``gtm.merge_upgrade`` wait event
    of ``wait_us_per_upgrade`` per upgraded writer, attributed to
    ``session``.
    """
    if obs is not None:
        span = obs.tracer.start_span("snapshot.merge", parent=parent_span,
                                     node=ltm.node_id)
        try:
            outcome = _merge(global_snapshot, local_snapshot, ltm, gtm,
                             enable_downgrade, enable_upgrade)
        except Exception:
            span.set_attribute("error", True)
            obs.tracer.end_span(span)
            raise
        span.set_attribute("downgraded", len(outcome.downgraded))
        span.set_attribute("upgraded", len(outcome.upgraded))
        span.set_attribute("upgrade_waits", outcome.upgrade_waits)
        obs.tracer.end_span(span)
        waits = getattr(obs, "waits", None)
        if waits is not None and outcome.upgrade_waits and wait_us_per_upgrade > 0.0:
            waits.record(WAIT_MERGE_UPGRADE,
                         wait_us_per_upgrade * outcome.upgrade_waits,
                         session=session)
        return outcome
    return _merge(global_snapshot, local_snapshot, ltm, gtm,
                  enable_downgrade, enable_upgrade)


def _merge(
    global_snapshot: Snapshot,
    local_snapshot: Snapshot,
    ltm: LocalTransactionManager,
    gtm: GlobalTransactionManager,
    enable_downgrade: bool,
    enable_upgrade: bool,
) -> MergeOutcome:
    forced_active: Set[int] = set()
    forced_committed: Set[int] = set()
    upgrade_waits = 0

    # Lines 1-2: globally active transactions that have a local identity are
    # candidates to re-hide.  (Locally *running* ones are already hidden by
    # the local snapshot; locally *committed* ones are found via the LCO.)
    #
    # Line 5 (downgradeTX): traverse the LCO in commit order.  A committed
    # entry is re-hidden if its global transaction was still active (or
    # unknown/future) in the global snapshot, or if it wrote data last
    # written by an already-re-hidden transaction.
    if enable_downgrade:
        tainted = WriteSet()
        for entry in ltm.lco:
            globally_invisible = (
                entry.gxid is not None
                and global_snapshot.sees_as_running(entry.gxid)
            )
            depends_on_hidden = entry.write_set.intersects(tainted)
            if globally_invisible or depends_on_hidden:
                forced_active.add(entry.local_xid)
                tainted.merge(entry.write_set)

    # Line 6 (upgradeTX): locally active-but-prepared transactions whose
    # GXID already committed at the GTM must become visible.  The reader
    # "waits for commit" — modeled by counting a wait and forcing the local
    # xid committed in the merged snapshot.
    if enable_upgrade:
        for local_xid in ltm.prepared_xids():
            gxid = ltm.gxid_for(local_xid)
            if gxid is None:
                continue
            if not global_snapshot.sees_as_running(gxid) and gtm.is_committed(gxid):
                forced_committed.add(local_xid)
                upgrade_waits += 1

    # Line 7: adjust merged xmin/xmax.  Downgraded xids must stay considered
    # "running", so the merged xmin cannot advance past them.
    merged_xmin = local_snapshot.xmin
    if forced_active:
        merged_xmin = min(merged_xmin, min(forced_active))

    merged = MergedSnapshot(
        xmin=merged_xmin,
        xmax=local_snapshot.xmax,
        active=local_snapshot.active,
        forced_active=frozenset(forced_active),
        forced_committed=frozenset(forced_committed),
    )
    return MergeOutcome(
        snapshot=merged,
        downgraded=forced_active,
        upgraded=forced_committed,
        upgrade_waits=upgrade_waits,
    )


def naive_merge(local_snapshot: Snapshot) -> MergeOutcome:
    """The broken strawman: just use the local snapshot.

    This is what a reader would do without Algorithm 1; it exhibits both
    anomalies and exists so tests and the ablation bench can demonstrate
    them.
    """
    merged = MergedSnapshot(
        xmin=local_snapshot.xmin,
        xmax=local_snapshot.xmax,
        active=local_snapshot.active,
    )
    return MergeOutcome(snapshot=merged)
