"""Simulated clocks.

All performance numbers produced by this reproduction are *deterministic
simulated* times, not wall-clock measurements.  Two clock families live here:

* :class:`SimClock` — a monotonically advancing scalar clock owned by a
  simulation.  Components advance it explicitly; nothing reads the OS clock.
* :class:`DriftingClock` — a per-device wall clock with constant skew and
  drift, used by the collaboration platform to reproduce the "time drift
  problem across devices" the paper's P2P sync algorithm must solve.
* :class:`HybridLogicalClock` — an HLC (Kulkarni et al.) implementation that
  gives causally consistent timestamps on top of drifting physical clocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError


class SimClock:
    """A monotonically advancing simulated clock measured in microseconds.

    ``now_us`` is a plain slot, not a property: the clock is read on every
    telemetry record and synced on every simulated charge, and a descriptor
    hop per read is measurable at OLTP rates.  Writers go through
    :meth:`advance` / :meth:`advance_to` / :meth:`reset`, which enforce
    monotonicity; hot paths that assign ``now_us`` directly must keep the
    same forward-only contract.
    """

    __slots__ = ("now_us",)

    def __init__(self, start_us: float = 0.0):
        self.now_us = float(start_us)

    @property
    def now_ms(self) -> float:
        return self.now_us / 1000.0

    @property
    def now_s(self) -> float:
        return self.now_us / 1_000_000.0

    def advance(self, delta_us: float) -> float:
        """Move the clock forward by ``delta_us`` and return the new time."""
        if delta_us < 0:
            raise ConfigError(f"cannot move time backwards ({delta_us} us)")
        self.now_us += delta_us
        return self.now_us

    def advance_to(self, t_us: float) -> float:
        """Move the clock forward to ``t_us`` (no-op if already past it)."""
        if t_us > self.now_us:
            self.now_us = t_us
        return self.now_us

    def reset(self, start_us: float = 0.0) -> None:
        """Restart simulated time — the one sanctioned way to move it back.

        Only for whole-simulation resets (e.g. re-running a workload on a
        reset cluster); mid-run callers must use :meth:`advance_to`.
        """
        self.now_us = float(start_us)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimClock({self.now_us:.1f}us)"


class DriftingClock:
    """A physical clock with constant offset (skew) and rate drift.

    Reading a drifting clock at true simulated time ``t`` yields
    ``t * (1 + drift_ppm * 1e-6) + skew_us``.  This models independent
    device clocks that the P2P sync layer cannot trust for ordering.
    """

    def __init__(self, truth: SimClock, skew_us: float = 0.0, drift_ppm: float = 0.0):
        self._truth = truth
        self.skew_us = float(skew_us)
        self.drift_ppm = float(drift_ppm)

    def read_us(self) -> float:
        t = self._truth.now_us
        return t * (1.0 + self.drift_ppm * 1e-6) + self.skew_us


@dataclass(frozen=True, order=True)
class HlcTimestamp:
    """A hybrid-logical-clock timestamp: (physical, logical, node)."""

    physical_us: int
    logical: int
    node_id: str = field(default="", compare=True)

    def __str__(self) -> str:
        return f"{self.physical_us}.{self.logical}@{self.node_id}"


class HybridLogicalClock:
    """Hybrid logical clock over a possibly drifting physical clock.

    Guarantees: timestamps are strictly increasing per node, and a timestamp
    generated after receiving a message is greater than the message's
    timestamp — causality survives arbitrary clock drift.
    """

    def __init__(self, node_id: str, physical: DriftingClock):
        self.node_id = node_id
        self._physical = physical
        self._last_physical = 0
        self._logical = 0

    def now(self) -> HlcTimestamp:
        """Generate a timestamp for a local (send or write) event."""
        pt = int(self._physical.read_us())
        if pt > self._last_physical:
            self._last_physical = pt
            self._logical = 0
        else:
            self._logical += 1
        return HlcTimestamp(self._last_physical, self._logical, self.node_id)

    def observe(self, remote: HlcTimestamp) -> HlcTimestamp:
        """Merge a received timestamp and generate the receive-event stamp."""
        pt = int(self._physical.read_us())
        if pt > self._last_physical and pt > remote.physical_us:
            self._last_physical = pt
            self._logical = 0
        elif remote.physical_us > self._last_physical:
            self._last_physical = remote.physical_us
            self._logical = remote.logical + 1
        elif remote.physical_us == self._last_physical:
            self._logical = max(self._logical, remote.logical) + 1
        else:
            self._logical += 1
        return HlcTimestamp(self._last_physical, self._logical, self.node_id)
