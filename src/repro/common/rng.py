"""Deterministic randomness helpers.

Every stochastic component (workload generators, data synthesizers, fault
injectors) draws from an explicit, seeded :class:`random.Random` so that
benchmarks and tests are reproducible bit-for-bit.
"""

from __future__ import annotations

import random
import string
from typing import List, Sequence, TypeVar

T = TypeVar("T")


def make_rng(seed: int) -> random.Random:
    """Return a private PRNG seeded with ``seed``."""
    return random.Random(seed)


def derive_rng(rng: random.Random, salt: str) -> random.Random:
    """Derive an independent child PRNG from ``rng`` and a label.

    Used to hand each sub-generator its own stream so the order in which
    sub-generators are invoked does not perturb each other's sequences.
    """
    return random.Random((rng.random(), salt).__hash__())


def random_string(rng: random.Random, length: int, alphabet: str = string.ascii_lowercase) -> str:
    return "".join(rng.choice(alphabet) for _ in range(length))


class ZipfGenerator:
    """Zipf-distributed integers in ``[0, n)`` with parameter ``theta``.

    Uses the standard inverse-CDF construction with a precomputed table of
    cumulative probabilities.  ``theta=0`` degenerates to uniform.
    """

    def __init__(self, rng: random.Random, n: int, theta: float = 0.99):
        if n <= 0:
            raise ValueError("n must be positive")
        if theta < 0:
            raise ValueError("theta must be non-negative")
        self._rng = rng
        self.n = n
        self.theta = theta
        weights = [1.0 / (i + 1) ** theta for i in range(n)]
        total = sum(weights)
        cum = 0.0
        self._cdf: List[float] = []
        for w in weights:
            cum += w / total
            self._cdf.append(cum)
        self._cdf[-1] = 1.0

    def next(self) -> int:
        u = self._rng.random()
        lo, hi = 0, self.n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo


def weighted_choice(rng: random.Random, items: Sequence[T], weights: Sequence[float]) -> T:
    """Pick one of ``items`` with probability proportional to ``weights``."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have equal length")
    total = float(sum(weights))
    u = rng.random() * total
    cum = 0.0
    for item, w in zip(items, weights):
        cum += w
        if u <= cum:
            return item
    return items[-1]
