"""Shared utilities: errors, simulated clocks, deterministic randomness."""

from repro.common.clock import DriftingClock, HlcTimestamp, HybridLogicalClock, SimClock
from repro.common.errors import ReproError

__all__ = ["SimClock", "DriftingClock", "HybridLogicalClock", "HlcTimestamp", "ReproError"]
