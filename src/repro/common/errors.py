"""Exception hierarchy shared by every repro subsystem.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch one base class.  Subsystems refine it: SQL front-end errors,
transaction aborts, schema-evolution violations, and so on.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """Invalid configuration value or combination."""


class NetworkError(ReproError):
    """Simulated network fabric failure (unknown endpoint, partition)."""


class StorageError(ReproError):
    """Storage-engine failure (unknown table, corrupt page, bad batch)."""


class DuplicateKeyError(StorageError):
    """A unique or primary-key constraint was violated."""


class TransactionError(ReproError):
    """Base class for transaction-management errors."""


class TransactionAborted(TransactionError):
    """The transaction was aborted and must be retried by the caller."""


class SerializationConflict(TransactionAborted):
    """Write-write conflict detected under snapshot isolation."""


class InvalidTransactionState(TransactionError):
    """Operation not legal in the transaction's current state."""


class ShardReadOnly(TransactionError):
    """The shard degraded to read-only after its node died with no standby."""


class SqlError(ReproError):
    """Base class for SQL front-end errors."""


class SqlSyntaxError(SqlError):
    """The statement could not be tokenized or parsed."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class SqlAnalysisError(SqlError):
    """The statement parsed but failed semantic analysis."""


class CatalogError(SqlError):
    """Unknown or duplicate catalog object (table, column, index)."""


class PlanningError(ReproError):
    """The optimizer could not produce a plan for a valid query."""


class ExecutionError(ReproError):
    """Runtime failure while executing a physical plan."""


class SchemaEvolutionError(ReproError):
    """Illegal or unsupported schema change (GMDB online evolution)."""


class SchemaValidationError(SchemaEvolutionError):
    """An object does not conform to the schema it claims to follow."""


class SyncError(ReproError):
    """Device-edge-cloud synchronization failure."""


class SlaViolation(ReproError):
    """Raised by the workload manager when an SLA cannot be honored."""


class AdmissionRejected(SlaViolation):
    """Overload shedding: the resource group's admission queue is full."""

    def __init__(self, message: str, group: str = "", queue_depth: int = 0):
        super().__init__(message)
        self.group = group
        self.queue_depth = queue_depth


class QueryCancelled(ReproError):
    """The statement was cancelled at a cooperative executor checkpoint."""

    def __init__(self, message: str, query_id: int = 0):
        super().__init__(message)
        self.query_id = query_id


class QueryTimeout(QueryCancelled):
    """The statement exceeded its resource group's sim-time timeout."""
