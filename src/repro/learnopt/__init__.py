"""The learning-based query optimizer (Sec. II-C)."""

from repro.learnopt.feedback import CaptureReport, CaptureSettings, FeedbackLoop
from repro.learnopt.store import PlanStore, StepRecord, step_key

__all__ = ["PlanStore", "StepRecord", "step_key",
           "FeedbackLoop", "CaptureSettings", "CaptureReport"]
