"""Producer/consumer wiring of the statistics-learning loop (Fig. 5).

* The **producer** runs after query execution: it walks the physical plan
  and, for every cardinality-bearing step whose actual row count diverged
  from the estimate by more than a threshold, writes the observation into
  the plan store — "the executor captures only those steps that have a big
  differential between actual and estimated row counts".
* The **consumer** is handed to the optimizer as its
  :class:`~repro.optimizer.cardinality.CardinalityFeedback`: before
  estimating a step it asks the store for an observed cardinality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exec.operators import PhysicalOp, walk_physical
from repro.learnopt.store import PlanStore


@dataclass
class CaptureSettings:
    """User settings/directives controlling the producer (paper: "based on
    user settings/directives, the producer selectively captures ...")."""

    enabled: bool = True
    #: Minimum relative error |actual - estimate| / max(actual, 1) to capture.
    error_threshold: float = 0.5
    #: Steps with fewer actual rows than this are not worth capturing.
    min_actual_rows: int = 0


@dataclass
class CaptureReport:
    """What one producer pass captured."""

    considered: int = 0
    captured: int = 0
    steps: List[str] = field(default_factory=list)


class FeedbackLoop:
    """Binds a plan store to a producer policy and a consumer interface."""

    def __init__(self, store: Optional[PlanStore] = None,
                 settings: Optional[CaptureSettings] = None):
        self.store = store if store is not None else PlanStore()
        self.settings = settings if settings is not None else CaptureSettings()

    # -- consumer (CardinalityFeedback protocol) ------------------------------

    def lookup(self, step_text: str) -> Optional[float]:
        return self.store.lookup(step_text)

    # -- producer ---------------------------------------------------------------

    def capture(self, root: PhysicalOp) -> CaptureReport:
        """Harvest mis-estimated steps from an executed physical plan.

        Per-DN fragment clones of one logical step share a
        ``capture_group``: their estimates and actuals are summed back into
        a single observation, so the plan store records the same
        logical-step cardinalities whether or not the plan was fragmented.
        """
        report = CaptureReport()
        if not self.settings.enabled:
            return report
        grouped: Dict[Tuple[int, str], List[float]] = {}
        order: List[Tuple[int, str]] = []
        for op in walk_physical(root):
            if op.step_text is None:
                continue
            group = op.capture_group
            if group is not None:
                key = (group, op.step_text)
                sums = grouped.get(key)
                if sums is None:
                    grouped[key] = [float(op.estimated_rows),
                                    float(op.actual_rows)]
                    order.append(key)
                else:
                    sums[0] += float(op.estimated_rows)
                    sums[1] += float(op.actual_rows)
                continue
            self._consider(report, op.step_text,
                           float(op.estimated_rows), float(op.actual_rows))
        for key in order:
            estimate, actual = grouped[key]
            self._consider(report, key[1], estimate, actual)
        return report

    def _consider(self, report: CaptureReport, step_text: str,
                  estimate: float, actual: float) -> None:
        report.considered += 1
        if actual < self.settings.min_actual_rows:
            return
        error = abs(actual - estimate) / max(actual, 1.0)
        if error > self.settings.error_threshold:
            self.store.put(step_text, estimate, actual)
            report.captured += 1
            report.steps.append(step_text)
