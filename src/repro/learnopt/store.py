"""The plan store (Fig. 5).

Captured execution statistics live here, keyed by the MD5 hash of the
canonical logical step text: "Step text could be huge for complex queries
and we avoid the potential overhead ... by using the MD5 hash value (32
bytes) of the step text" (Sec. II-C).  The store is modeled as a cache, as
the paper describes, with an LRU bound; the consumer's lookup is
opportunistic — a miss simply means the optimizer keeps its own estimate.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional


def step_key(step_text: str) -> str:
    """MD5 hex digest of a canonical step text (32 characters)."""
    return hashlib.md5(step_text.encode("utf-8")).hexdigest()


@dataclass
class StepRecord:
    """One plan-store row (cf. Table I)."""

    key: str
    step_text: str          # kept for introspection / the Table I rendering
    estimated_rows: float
    actual_rows: float
    hits: int = 0           # consumer lookups served by this record
    updates: int = 0        # times the producer refreshed it

    def as_table_row(self) -> dict:
        return {
            "step": self.step_text,
            "estimate": round(self.estimated_rows),
            "actual": round(self.actual_rows),
        }


class PlanStore:
    """MD5-keyed cache of observed step cardinalities."""

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._records: "OrderedDict[str, StepRecord]" = OrderedDict()
        self.lookups = 0
        self.hits = 0

    # -- producer side ----------------------------------------------------

    def put(self, step_text: str, estimated_rows: float,
            actual_rows: float) -> StepRecord:
        key = step_key(step_text)
        record = self._records.get(key)
        if record is None:
            record = StepRecord(key, step_text, estimated_rows, actual_rows)
            self._records[key] = record
        else:
            record.estimated_rows = estimated_rows
            record.actual_rows = actual_rows
            record.updates += 1
            self._records.move_to_end(key)
        while len(self._records) > self.capacity:
            self._records.popitem(last=False)
        return record

    # -- consumer side ------------------------------------------------------

    def lookup(self, step_text: str) -> Optional[float]:
        """Observed cardinality for a step, or None (optimizer keeps its own)."""
        self.lookups += 1
        record = self._records.get(step_key(step_text))
        if record is None:
            return None
        record.hits += 1
        self.hits += 1
        self._records.move_to_end(record.key)
        return record.actual_rows

    def get_record(self, step_text: str) -> Optional[StepRecord]:
        return self._records.get(step_key(step_text))

    # -- introspection ----------------------------------------------------------

    def records(self) -> List[StepRecord]:
        return list(self._records.values())

    def render_table(self) -> str:
        """Render the store as the paper's Table I layout."""
        rows = [r.as_table_row() for r in self._records.values()]
        if not rows:
            return "(plan store empty)"
        width = max(len(r["step"]) for r in rows)
        header = f"{'Step Description'.ljust(width)}  Estimate  Actual"
        lines = [header, "-" * len(header)]
        for r in rows:
            lines.append(f"{r['step'].ljust(width)}  {r['estimate']:>8}  {r['actual']:>6}")
        return "\n".join(lines)

    def clear(self) -> None:
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)
