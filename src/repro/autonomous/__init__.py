"""Autonomous database components (Sec. IV-A, Fig. 12)."""

from repro.autonomous.adbms import AutonomousManager, TickReport
from repro.autonomous.anomaly import AnomalyManager, EwmaDetector, HeartbeatDetector, ThresholdDetector
from repro.autonomous.change import ChangeManager, KnobDef
from repro.autonomous.infostore import InformationStore
from repro.autonomous.ml import KnnRegressor, KnobTuner, LinearRegression
from repro.autonomous.protection import AccessDenied, ProtectionManager
from repro.autonomous.workload import Priority, Sla, WorkloadManager

__all__ = ["AutonomousManager", "TickReport", "InformationStore",
           "AnomalyManager", "ThresholdDetector", "EwmaDetector",
           "HeartbeatDetector", "ChangeManager", "KnobDef",
           "WorkloadManager", "Sla", "Priority",
           "LinearRegression", "KnnRegressor", "KnobTuner"]

__all__ += ["ProtectionManager", "AccessDenied"]
