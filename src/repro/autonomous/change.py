"""The change manager (Fig. 12).

"The change manager dynamically adapts to any change in system hardware and
software" — here: a configuration-knob registry with validated online
changes, full history, rollback, and node membership events (the
self-configuring property: "addition and removal of system components or
resources without system service disruptions").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class KnobDef:
    name: str
    default: float
    minimum: float
    maximum: float
    description: str = ""

    def validate(self, value: float) -> float:
        if not (self.minimum <= value <= self.maximum):
            raise ConfigError(
                f"knob {self.name}={value} outside [{self.minimum}, {self.maximum}]")
        return float(value)


@dataclass(frozen=True)
class ChangeEvent:
    t_us: float
    kind: str              # 'knob' | 'node_added' | 'node_removed' | 'rollback'
    name: str
    old_value: Optional[object]
    new_value: Optional[object]
    reason: str = ""


class ChangeManager:
    """Validated, observable, reversible configuration changes."""

    def __init__(self) -> None:
        self._defs: Dict[str, KnobDef] = {}
        self._values: Dict[str, float] = {}
        self._nodes: Dict[str, bool] = {}        # node id -> online
        self.history: List[ChangeEvent] = []
        self._listeners: List[Callable[[ChangeEvent], None]] = []

    # -- knobs -----------------------------------------------------------

    def define_knob(self, knob: KnobDef) -> None:
        if knob.name in self._defs:
            raise ConfigError(f"knob {knob.name!r} already defined")
        self._defs[knob.name] = knob
        self._values[knob.name] = knob.default

    def get(self, name: str) -> float:
        try:
            return self._values[name]
        except KeyError:
            raise ConfigError(f"unknown knob {name!r}") from None

    def knobs(self) -> Dict[str, float]:
        return dict(self._values)

    def set(self, name: str, value: float, t_us: float = 0.0,
            reason: str = "") -> float:
        definition = self._defs.get(name)
        if definition is None:
            raise ConfigError(f"unknown knob {name!r}")
        value = definition.validate(value)
        old = self._values[name]
        if value != old:
            self._values[name] = value
            self._emit(ChangeEvent(t_us, "knob", name, old, value, reason))
        return value

    def rollback(self, name: str, t_us: float = 0.0) -> float:
        """Revert a knob to its previous value in the history."""
        previous = None
        for event in reversed(self.history):
            if event.kind == "knob" and event.name == name:
                previous = event.old_value
                break
        if previous is None:
            raise ConfigError(f"no change to roll back for {name!r}")
        old = self._values[name]
        self._values[name] = float(previous)  # type: ignore[arg-type]
        self._emit(ChangeEvent(t_us, "rollback", name, old, previous))
        return self._values[name]

    # -- membership --------------------------------------------------------------

    def node_added(self, node_id: str, t_us: float = 0.0) -> None:
        self._nodes[node_id] = True
        self._emit(ChangeEvent(t_us, "node_added", node_id, None, True))

    def node_removed(self, node_id: str, t_us: float = 0.0,
                     reason: str = "") -> None:
        if self._nodes.get(node_id):
            self._nodes[node_id] = False
            self._emit(ChangeEvent(t_us, "node_removed", node_id, True, False,
                                   reason))

    def online_nodes(self) -> List[str]:
        return sorted(n for n, up in self._nodes.items() if up)

    # -- observation -------------------------------------------------------------

    def on_change(self, listener: Callable[[ChangeEvent], None]) -> None:
        self._listeners.append(listener)

    def _emit(self, event: ChangeEvent) -> None:
        self.history.append(event)
        for listener in self._listeners:
            listener(event)
