"""The anomaly manager (Fig. 12).

"The anomaly manager detects and manages the anomalies, such as datanode
failures, slow disk or insufficient memory."

Detectors evaluate metric streams from the information store:

* :class:`ThresholdDetector` — static bound violations (e.g. memory > 90%),
* :class:`EwmaDetector` — deviation from an exponentially weighted moving
  average by more than k sigma (slow disk, latency spikes),
* :class:`HeartbeatDetector` — a node that stopped reporting (failures).

Raised anomalies carry a suggested *healing action*; the autonomous manager
routes them to the change manager (self-healing).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.autonomous.infostore import InformationStore


class Severity(enum.Enum):
    INFO = "info"
    WARNING = "warning"
    CRITICAL = "critical"


@dataclass(frozen=True)
class Anomaly:
    detector: str
    metric: str
    severity: Severity
    message: str
    t_us: float
    suggested_action: Optional[str] = None


class Detector:
    name = "detector"

    def evaluate(self, store: InformationStore, now_us: float) -> List[Anomaly]:
        raise NotImplementedError


class ThresholdDetector(Detector):
    """Fires when a metric's latest value crosses a static bound."""

    def __init__(self, metric: str, upper: Optional[float] = None,
                 lower: Optional[float] = None,
                 severity: Severity = Severity.WARNING,
                 action: Optional[str] = None):
        if upper is None and lower is None:
            raise ValueError("need an upper or lower bound")
        self.name = f"threshold[{metric}]"
        self.metric = metric
        self.upper = upper
        self.lower = lower
        self.severity = severity
        self.action = action

    def evaluate(self, store: InformationStore, now_us: float) -> List[Anomaly]:
        value = store.latest(self.metric)
        if value is None:
            return []
        if self.upper is not None and value > self.upper:
            return [Anomaly(self.name, self.metric, self.severity,
                            f"{self.metric}={value:.3f} above {self.upper}",
                            now_us, self.action)]
        if self.lower is not None and value < self.lower:
            return [Anomaly(self.name, self.metric, self.severity,
                            f"{self.metric}={value:.3f} below {self.lower}",
                            now_us, self.action)]
        return []


class EwmaDetector(Detector):
    """Fires when a sample deviates from its EWMA by more than k sigma."""

    def __init__(self, metric: str, alpha: float = 0.2, k_sigma: float = 3.0,
                 warmup: int = 10, severity: Severity = Severity.WARNING,
                 action: Optional[str] = None):
        if not (0 < alpha <= 1):
            raise ValueError("alpha must be in (0, 1]")
        self.name = f"ewma[{metric}]"
        self.metric = metric
        self.alpha = alpha
        self.k_sigma = k_sigma
        self.warmup = warmup
        self.severity = severity
        self.action = action
        self._mean: Optional[float] = None
        self._var = 0.0
        self._seen = 0
        self._consumed = 0

    def evaluate(self, store: InformationStore, now_us: float) -> List[Anomaly]:
        values = store.values(self.metric)
        fresh = values[self._consumed:]
        self._consumed = len(values)
        out: List[Anomaly] = []
        for value in fresh:
            if self._mean is None:
                self._mean = value
                self._seen = 1
                continue
            sigma = math.sqrt(self._var) if self._var > 0 else 0.0
            deviated = (self._seen >= self.warmup and sigma > 0
                        and abs(value - self._mean) > self.k_sigma * sigma)
            if deviated:
                out.append(Anomaly(
                    self.name, self.metric, self.severity,
                    f"{self.metric}={value:.3f} deviates from "
                    f"EWMA {self._mean:.3f} by more than "
                    f"{self.k_sigma} sigma ({sigma:.3f})",
                    now_us, self.action,
                ))
            # Update the EWMA after testing, so a spike does not mask itself.
            diff = value - self._mean
            self._mean += self.alpha * diff
            self._var = (1 - self.alpha) * (self._var + self.alpha * diff * diff)
            self._seen += 1
        return out


class HeartbeatDetector(Detector):
    """Fires when a component stops reporting (data node failure)."""

    def __init__(self, metric: str, timeout_us: float,
                 severity: Severity = Severity.CRITICAL,
                 action: Optional[str] = None):
        self.name = f"heartbeat[{metric}]"
        self.metric = metric
        self.timeout_us = timeout_us
        self.severity = severity
        self.action = action

    def evaluate(self, store: InformationStore, now_us: float) -> List[Anomaly]:
        samples = store.window(self.metric, now_us - self.timeout_us, now_us)
        if samples:
            return []
        if store.latest(self.metric) is None:
            return []  # never reported: not yet deployed
        return [Anomaly(self.name, self.metric, self.severity,
                        f"no {self.metric} heartbeat for {self.timeout_us}us",
                        now_us, self.action)]


class AnomalyManager:
    """Runs detectors and keeps the anomaly history."""

    def __init__(self, store: InformationStore):
        self.store = store
        self._detectors: List[Detector] = []
        self.history: List[Anomaly] = []
        self._handlers: List[Callable[[Anomaly], None]] = []

    def add_detector(self, detector: Detector) -> None:
        self._detectors.append(detector)

    def on_anomaly(self, handler: Callable[[Anomaly], None]) -> None:
        self._handlers.append(handler)

    def evaluate(self, now_us: float) -> List[Anomaly]:
        found: List[Anomaly] = []
        for detector in self._detectors:
            found.extend(detector.evaluate(self.store, now_us))
        self.history.extend(found)
        for anomaly in found:
            for handler in self._handlers:
                handler(anomaly)
        return found

    def critical_count(self) -> int:
        return sum(1 for a in self.history if a.severity is Severity.CRITICAL)
