"""The autonomous database manager: Fig. 12 assembled.

Wires the five components — information store, change manager, anomaly
manager, workload manager, in-DB ML — around an
:class:`~repro.cluster.mpp.MppCluster` and exposes the monitoring loop:
``collect()`` harvests cluster metrics into the information store, and
``tick()`` runs detection, SLA enforcement, self-healing and (optionally)
knob tuning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.autonomous.anomaly import (
    Anomaly,
    AnomalyManager,
    EwmaDetector,
    HeartbeatDetector,
    Severity,
    ThresholdDetector,
)
from repro.autonomous.change import ChangeEvent, ChangeManager, KnobDef
from repro.autonomous.infostore import InformationStore
from repro.autonomous.ml import KnobTuner, TuningResult
from repro.autonomous.workload import Priority, Sla, WorkloadManager
from repro.cluster.mpp import MppCluster
from repro.obs import InfoStoreExporter

DEFAULT_KNOBS = [
    KnobDef("max_concurrency", 32, 1, 256,
            "query slots across the cluster"),
    KnobDef("buffer_pool_mb", 1024, 64, 65536,
            "shared buffer size per data node"),
    KnobDef("vacuum_interval_s", 60, 5, 3600,
            "background vacuum cadence"),
]


@dataclass
class TickReport:
    t_us: float
    anomalies: List[Anomaly] = field(default_factory=list)
    sla_problems: List[str] = field(default_factory=list)
    concurrency_limit: int = 0
    healing_actions: List[str] = field(default_factory=list)
    tuning: Optional[TuningResult] = None
    #: HTAP merges the tick drove, and the interval after AIMD adjustment
    #: (0.0 when the cluster has no HTAP manager).
    htap_merges: int = 0
    htap_interval_us: float = 0.0
    #: Per-DN row-placement skew (max/mean slot count) observed this tick,
    #: and the slots an autonomous rebalance moved to flatten it (0 when no
    #: coordinator is attached or the skew is within threshold).
    shard_skew: float = 0.0
    rebalance_slots_moved: int = 0
    #: Geo commit-latency p95 observed this tick and the epoch interval
    #: after AIMD adjustment (0.0 when the cluster is not geo-replicated).
    geo_p95_commit_us: float = 0.0
    geo_epoch_interval_us: float = 0.0


class AutonomousManager:
    """Self-configuring / self-optimizing / self-healing controller."""

    #: Slot-count skew (max/mean) above which a tick triggers an online
    #: rebalance — 1.2 tolerates the remainder slots of a non-dividing DN
    #: count but reacts to a freshly added slot-less node (adding a 5th DN
    #: to 4 leaves the old members at exactly 1.25).
    REBALANCE_SKEW_THRESHOLD = 1.2

    def __init__(self, cluster: MppCluster, sla: Optional[Sla] = None,
                 enable_tuning: bool = False, ha=None):
        self.cluster = cluster
        #: Optional :class:`~repro.cluster.ha.HaManager`; when present,
        #: node-failure anomalies trigger an actual standby promotion
        #: (self-healing closes the loop instead of only logging).
        self.ha = ha
        self.info = InformationStore()
        #: Live engine telemetry: every ``collect()`` flushes the cluster's
        #: metric registry (txn/gtm/exec/query counters and histogram
        #: summaries) into the information store, so detectors consume real
        #: engine series instead of hand-fed ones.
        self.exporter = (InfoStoreExporter(cluster.obs.metrics, self.info)
                         if getattr(cluster, "obs", None) is not None else None)
        #: The observability-side alert sink (``sys.alerts``).  Anomaly
        #: findings and slow-query bursts both land there, deduplicated.
        self.alerts = (cluster.obs.alerts
                       if getattr(cluster, "obs", None) is not None else None)
        if self.alerts is not None:
            self.alerts.bind_store(self.info)
        self.changes = ChangeManager()
        self.anomalies = AnomalyManager(self.info)
        self.workload = WorkloadManager(
            self.info,
            sla if sla is not None else Sla("default", p95_latency_us=50_000.0),
            governor=getattr(cluster, "wlm", None),
            alerts=self.alerts,
        )
        for knob in DEFAULT_KNOBS:
            self.changes.define_knob(knob)
        for dn in cluster.dns:
            self.changes.node_added(dn.node_id)
        self.tuner = KnobTuner(DEFAULT_KNOBS) if enable_tuning else None
        self._install_default_detectors()
        self.anomalies.on_anomaly(self._heal)
        if self.alerts is not None:
            self.anomalies.on_anomaly(self.alerts.from_anomaly)
        self._healing_log: List[str] = []
        # Deltas are measured from the moment supervision starts, so
        # pre-existing traffic (e.g. bulk loads) is not misattributed.
        self._last_commits = cluster.stats.commits

    def _install_default_detectors(self) -> None:
        self.anomalies.add_detector(ThresholdDetector(
            "memory_utilization", upper=0.9, severity=Severity.WARNING,
            action="reduce buffer_pool_mb"))
        self.anomalies.add_detector(EwmaDetector(
            "disk_read_latency_us", k_sigma=4.0,
            action="probe slow disk"))
        self._heartbeat_nodes: set = set()
        for dn in self._active_dns():
            self._install_heartbeat(dn)

    def _active_dns(self):
        active = getattr(self.cluster, "active_dns", None)
        return list(active()) if active is not None else list(self.cluster.dns)

    def _install_heartbeat(self, dn) -> None:
        if dn.node_id in self._heartbeat_nodes:
            return
        self._heartbeat_nodes.add(dn.node_id)
        self.anomalies.add_detector(HeartbeatDetector(
            f"heartbeat.{dn.node_id}", timeout_us=5_000_000.0,
            action=f"failover {dn.node_id}"))

    # -- monitoring -----------------------------------------------------------

    def collect(self, now_us: float,
                extra_metrics: Optional[Dict[str, float]] = None) -> None:
        """Harvest cluster counters into the information store."""
        if self.exporter is not None:
            self.exporter.flush(now_us)
        stats = self.cluster.stats
        commits = stats.commits
        self.info.record("commits_delta", now_us, commits - self._last_commits)
        self._last_commits = commits
        self.info.record("aborts_total", now_us, stats.aborts)
        self.info.record("gtm_requests", now_us,
                         self.cluster.gtm.stats.total_requests)
        for dn in self._active_dns():
            # A DN added after supervision started gets its heartbeat
            # detector here (retired DNs stop being recorded — and are
            # deliberately not watched: silence is expected of them).
            self._install_heartbeat(dn)
            self.info.record(f"heartbeat.{dn.node_id}", now_us, 1.0)
            self.info.record(f"active_txns.{dn.node_id}", now_us,
                             dn.ltm.active_count)
        htap = getattr(self.cluster, "htap", None)
        if htap is not None:
            self.info.record("htap.freshness_lag_us", now_us,
                             htap.max_freshness_lag_us(now_us))
            self.info.record("htap.delta_rows", now_us,
                             float(htap.delta_rows()))
        if extra_metrics:
            for name, value in extra_metrics.items():
                self.info.record(name, now_us, value)

    def report_node_down(self, node_id: str) -> None:
        """Stop a node's heartbeats (used by tests / fault injection)."""
        # Nothing to do here: collect() only records heartbeats for nodes we
        # believe online; callers simply stop including the node.
        self.changes.node_removed(node_id, reason="reported down")

    # -- the autonomic loop --------------------------------------------------------

    def tick(self, now_us: float) -> TickReport:
        report = TickReport(t_us=now_us)
        self._healing_log = []
        report.anomalies = self.anomalies.evaluate(now_us)
        if self.alerts is not None:
            self.alerts.check_slow_queries(self.cluster.obs.slowlog, now_us)
        report.sla_problems = self.workload.evaluate_sla(now_us)
        report.concurrency_limit = self.workload.adjust(now_us)
        htap = getattr(self.cluster, "htap", None)
        if htap is not None:
            # Drive the merge daemon, then AIMD the merge interval against
            # the freshness SLA: halve it (and alert) while commits wait
            # too long for column visibility, relax it slowly otherwise.
            report.htap_merges = htap.maybe_tick(now_us)
            lag = htap.max_freshness_lag_us(now_us)
            interval = htap.config.merge_interval_us
            if lag > htap.config.freshness_sla_us:
                report.htap_interval_us = htap.set_interval(interval / 2)
                self._healing_log.append("tighten htap merge interval")
                if self.alerts is not None:
                    self.alerts.raise_alert(
                        source="htap", severity="warning",
                        message=(f"htap freshness lag {lag:.0f}us exceeds "
                                 f"sla {htap.config.freshness_sla_us:.0f}us"),
                        t_us=now_us, key="htap.freshness")
            else:
                report.htap_interval_us = htap.set_interval(interval * 1.25)
        geo = getattr(self.cluster, "geo", None)
        if (geo is not None and geo.enabled
                and geo.config.mode.value == "geogauss"):
            # AIMD the epoch interval against the geo commit-latency SLA:
            # a longer epoch amortizes the WAN better but every commit
            # waits longer for its seal — so halve the interval (and alert)
            # while p95 breaches, relax it slowly otherwise.
            p95 = geo.commit_latency_p95()
            interval = geo.epoch_interval_us
            if p95 is not None:
                report.geo_p95_commit_us = p95
                self.info.record("geo.p95_commit_us", now_us, p95)
                if p95 > geo.config.commit_latency_sla_us:
                    report.geo_epoch_interval_us = geo.set_epoch_interval(
                        interval / 2)
                    self._healing_log.append("tighten geo epoch interval")
                    if self.alerts is not None:
                        self.alerts.raise_alert(
                            source="geo", severity="warning",
                            message=(f"geo p95 commit {p95:.0f}us exceeds "
                                     f"sla {geo.config.commit_latency_sla_us:.0f}us"),
                            t_us=now_us, key="geo.commit_sla")
                else:
                    report.geo_epoch_interval_us = geo.set_epoch_interval(
                        interval * 1.25)
            else:
                report.geo_epoch_interval_us = interval
        rebalance = getattr(self.cluster, "rebalance", None)
        shard_map = getattr(self.cluster.catalog, "shard_map", None)
        if shard_map is not None:
            report.shard_skew = shard_map.skew()
            if (rebalance is not None
                    and report.shard_skew > self.REBALANCE_SKEW_THRESHOLD
                    and not shard_map.has_moves()):
                # Self-healing placement: a skewed slot assignment (fresh
                # DN, lopsided removal drain) is flattened online.
                report.rebalance_slots_moved = rebalance.rebalance()
                if report.rebalance_slots_moved:
                    self._healing_log.append(
                        f"rebalance {report.rebalance_slots_moved} slots "
                        f"(skew {report.shard_skew:.2f})")
                    if self.alerts is not None:
                        self.alerts.raise_alert(
                            source="autonomous", severity="info",
                            message=(f"shard skew {report.shard_skew:.2f} "
                                     "exceeded threshold; rebalanced "
                                     f"{report.rebalance_slots_moved} slots"),
                            t_us=now_us, key="autonomous.rebalance")
        report.healing_actions = list(self._healing_log)
        if self.tuner is not None:
            metric = self.info.latest("commits_delta")
            if metric is not None:
                self.tuner.observe(self.changes.knobs(), metric)
            proposal = self.tuner.propose()
            if proposal is not None:
                for name, value in proposal.knobs.items():
                    self.changes.set(name, value, now_us,
                                     reason="knob tuner proposal")
                report.tuning = proposal
        return report

    # -- self-healing ----------------------------------------------------------------

    def _heal(self, anomaly: Anomaly) -> None:
        action = anomaly.suggested_action
        if action is None:
            return
        self._healing_log.append(action)
        if action.startswith("failover "):
            node_id = action.split(" ", 1)[1]
            self.changes.node_removed(node_id, anomaly.t_us,
                                      reason=anomaly.message)
            if self.ha is not None:
                for index, dn in enumerate(self.cluster.dns):
                    if dn.node_id == node_id:
                        self.ha.fail_and_promote(index)
                        self.changes.node_added(node_id, anomaly.t_us)
                        break
        elif action == "reduce buffer_pool_mb":
            current = self.changes.get("buffer_pool_mb")
            self.changes.set("buffer_pool_mb", max(64.0, current / 2),
                             anomaly.t_us, reason=anomaly.message)
