"""Self-protection (Sec. IV-A).

"Self-protecting means ADBMSs are able to proactively identify and protect
themselves from arbitrary activities ... recognize and circumvent data,
privacy and security threats."

Three guards plus an audit trail:

* :class:`AccessGuard` — authentication-failure tracking with automatic
  lockout (brute-force circumvention),
* :class:`QueryInspector` — rejects runaway queries (estimated cost above a
  ceiling) before they execute,
* :class:`ExfiltrationMonitor` — per-principal rows-returned quota over a
  sliding window (bulk-dump detection).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.common.errors import ReproError


class AccessDenied(ReproError):
    """The protection layer refused an operation."""


@dataclass(frozen=True)
class AuditEvent:
    t_us: float
    principal: str
    kind: str          # 'auth_fail' | 'lockout' | 'query_rejected' |
                       # 'quota_exceeded' | 'unlock'
    detail: str = ""


class AuditLog:
    def __init__(self, capacity: int = 10_000):
        self._events: Deque[AuditEvent] = deque(maxlen=capacity)

    def record(self, event: AuditEvent) -> None:
        self._events.append(event)

    def events(self, kind: Optional[str] = None) -> List[AuditEvent]:
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def __len__(self) -> int:
        return len(self._events)


class AccessGuard:
    """Lock a principal out after repeated authentication failures."""

    def __init__(self, audit: AuditLog, max_failures: int = 5,
                 window_us: float = 60_000_000.0,
                 lockout_us: float = 300_000_000.0):
        self.audit = audit
        self.max_failures = max_failures
        self.window_us = window_us
        self.lockout_us = lockout_us
        self._failures: Dict[str, Deque[float]] = {}
        self._locked_until: Dict[str, float] = {}

    def is_locked(self, principal: str, now_us: float) -> bool:
        until = self._locked_until.get(principal)
        if until is None:
            return False
        if now_us >= until:
            del self._locked_until[principal]
            self.audit.record(AuditEvent(now_us, principal, "unlock"))
            return False
        return True

    def check(self, principal: str, now_us: float) -> None:
        if self.is_locked(principal, now_us):
            raise AccessDenied(f"{principal} is locked out")

    def note_failure(self, principal: str, now_us: float) -> None:
        self.audit.record(AuditEvent(now_us, principal, "auth_fail"))
        failures = self._failures.setdefault(principal, deque())
        failures.append(now_us)
        while failures and failures[0] < now_us - self.window_us:
            failures.popleft()
        if len(failures) >= self.max_failures:
            self._locked_until[principal] = now_us + self.lockout_us
            failures.clear()
            self.audit.record(AuditEvent(
                now_us, principal, "lockout",
                f"{self.max_failures} failures within {self.window_us}us"))

    def note_success(self, principal: str, now_us: float) -> None:
        self.check(principal, now_us)
        self._failures.pop(principal, None)


class QueryInspector:
    """Reject queries whose estimated cost exceeds the ceiling.

    The estimate comes from the optimizer (estimated rows of the plan's
    scans); a runaway cross join or an unfiltered scan of a huge table is
    stopped before consuming resources.
    """

    def __init__(self, audit: AuditLog, max_estimated_rows: float = 1e7):
        self.audit = audit
        self.max_estimated_rows = max_estimated_rows
        self.inspected = 0
        self.rejected = 0

    def admit(self, principal: str, estimated_rows: float,
              now_us: float, description: str = "") -> None:
        self.inspected += 1
        if estimated_rows > self.max_estimated_rows:
            self.rejected += 1
            self.audit.record(AuditEvent(
                now_us, principal, "query_rejected",
                f"estimated {estimated_rows:.0f} rows > "
                f"{self.max_estimated_rows:.0f} ({description})"))
            raise AccessDenied(
                f"query rejected: estimated {estimated_rows:.0f} rows "
                f"exceeds the {self.max_estimated_rows:.0f} ceiling")


class ExfiltrationMonitor:
    """Sliding-window rows-returned quota per principal."""

    def __init__(self, audit: AuditLog, max_rows: int = 1_000_000,
                 window_us: float = 60_000_000.0):
        self.audit = audit
        self.max_rows = max_rows
        self.window_us = window_us
        self._returned: Dict[str, Deque[Tuple[float, int]]] = {}

    def consumed(self, principal: str, now_us: float) -> int:
        history = self._returned.setdefault(principal, deque())
        while history and history[0][0] < now_us - self.window_us:
            history.popleft()
        return sum(rows for _, rows in history)

    def note_result(self, principal: str, rows: int, now_us: float) -> None:
        if self.consumed(principal, now_us) + rows > self.max_rows:
            self.audit.record(AuditEvent(
                now_us, principal, "quota_exceeded",
                f"{rows} rows would exceed {self.max_rows}/window"))
            raise AccessDenied(
                f"{principal} exceeded the {self.max_rows}-rows/"
                f"{self.window_us:.0f}us export quota")
        self._returned[principal].append((now_us, rows))


class ProtectionManager:
    """One facade bundling the guards around a SQL engine."""

    def __init__(self, max_failures: int = 5,
                 max_estimated_rows: float = 1e7,
                 max_rows_per_window: int = 1_000_000):
        self.audit = AuditLog()
        self.access = AccessGuard(self.audit, max_failures=max_failures)
        self.queries = QueryInspector(self.audit, max_estimated_rows)
        self.exfiltration = ExfiltrationMonitor(self.audit,
                                                max_rows_per_window)

    def guarded_execute(self, engine, principal: str, sql: str,
                        now_us: float):
        """Run a statement through every guard."""
        self.access.check(principal, now_us)
        from repro.sql import ast as sql_ast
        from repro.sql.parser import parse

        statement = parse(sql)
        if isinstance(statement, sql_ast.Select):
            session = engine.cluster.session()
            txn = session.begin(multi_shard=True)
            try:
                plan = engine.plan_select(statement, txn)
            finally:
                txn.commit()
            self.queries.admit(principal, plan.estimated_rows, now_us, sql[:80])
        result = engine.execute(sql)
        self.exfiltration.note_result(principal, result.rowcount, now_us)
        return result
