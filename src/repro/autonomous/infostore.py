"""The information store (Fig. 12).

"Our autonomous database system is capable of continuously monitoring the
database system and collecting information on system performance and
workloads, such as query response time and resource consumption, and stores
the information in information store."

A bounded in-memory metric store: named series of (t_us, value) samples
with window queries, summary statistics and percentiles — the substrate the
anomaly manager, workload manager and in-DB ML read from.
"""

from __future__ import annotations

import bisect
import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.common.errors import ConfigError


@dataclass
class MetricSummary:
    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float


class InformationStore:
    """Bounded per-metric sample history."""

    def __init__(self, max_samples_per_metric: int = 10_000):
        if max_samples_per_metric <= 0:
            raise ConfigError("max_samples_per_metric must be positive")
        self._max = max_samples_per_metric
        self._series: Dict[str, Deque[Tuple[float, float]]] = {}

    def record(self, metric: str, t_us: float, value: float) -> None:
        series = self._series.setdefault(metric, deque(maxlen=self._max))
        series.append((float(t_us), float(value)))

    def metrics(self) -> List[str]:
        return sorted(self._series)

    def latest(self, metric: str) -> Optional[float]:
        series = self._series.get(metric)
        if not series:
            return None
        return series[-1][1]

    def window(self, metric: str, t0_us: float,
               t1_us: float) -> List[Tuple[float, float]]:
        if t1_us < t0_us:           # inverted range: empty, not an error
            return []
        series = self._series.get(metric, ())
        return [(t, v) for t, v in series if t0_us <= t <= t1_us]

    def values(self, metric: str, last_n: Optional[int] = None) -> List[float]:
        series = self._series.get(metric)
        if not series:
            return []
        if last_n is not None:
            if last_n <= 0:         # note: data[-0:] would be the whole list
                return []
            return [v for _, v in list(series)[-last_n:]]
        return [v for _, v in series]

    def summary(self, metric: str,
                last_n: Optional[int] = None) -> Optional[MetricSummary]:
        data = self.values(metric, last_n)
        if not data:
            return None
        ordered = sorted(data)
        n = len(ordered)
        mean = sum(ordered) / n
        var = sum((v - mean) ** 2 for v in ordered) / n
        return MetricSummary(
            count=n,
            mean=mean,
            std=math.sqrt(var),
            minimum=ordered[0],
            maximum=ordered[-1],
            p50=_percentile(ordered, 0.50),
            p95=_percentile(ordered, 0.95),
            p99=_percentile(ordered, 0.99),
        )

    def rate_per_second(self, metric: str, window_us: float,
                        now_us: float) -> float:
        """Events per second over the trailing window (for counters)."""
        if window_us <= 0:
            return 0.0
        samples = self.window(metric, now_us - window_us, now_us)
        return sum(v for _, v in samples) / (window_us / 1_000_000.0)

    def clear(self, metric: Optional[str] = None) -> None:
        if metric is None:
            self._series.clear()
        else:
            self._series.pop(metric, None)


def _percentile(ordered: List[float], q: float) -> float:
    if not ordered:
        return float("nan")
    q = min(max(q, 0.0), 1.0)
    index = q * (len(ordered) - 1)
    lo = int(math.floor(index))
    hi = int(math.ceil(index))
    if lo == hi:
        return ordered[lo]
    frac = index - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac
