"""In-DB machine learning (Fig. 12).

"The In-DB machine learning component provides functionalities of analyzing
the stored information using machine-learning techniques."  Implemented
from scratch on numpy:

* :class:`LinearRegression` — ridge-regularized normal equations,
* :class:`KnnRegressor` — k-nearest-neighbour regression,
* :class:`KnobTuner` — models a performance metric as a function of
  configuration knobs from observed (knobs, metric) samples and proposes
  the best setting (the Sec. IV-A auto-configuration use case, in the
  spirit of OtterTune/BestConfig which the paper cites).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigError
from repro.autonomous.change import KnobDef


class LinearRegression:
    """Least squares with an intercept and ridge regularization."""

    def __init__(self, l2: float = 1e-6):
        self.l2 = l2
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def fit(self, X: Sequence[Sequence[float]],
            y: Sequence[float]) -> "LinearRegression":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or len(X) != len(y) or len(X) == 0:
            raise ConfigError("X must be (n, d) with matching y")
        ones = np.ones((len(X), 1))
        A = np.hstack([ones, X])
        reg = self.l2 * np.eye(A.shape[1])
        reg[0, 0] = 0.0  # do not regularize the intercept
        theta = np.linalg.solve(A.T @ A + reg, A.T @ y)
        self.intercept_ = float(theta[0])
        self.coef_ = theta[1:]
        return self

    def predict(self, X: Sequence[Sequence[float]]) -> np.ndarray:
        if self.coef_ is None:
            raise ConfigError("model is not fitted")
        X = np.asarray(X, dtype=np.float64)
        return X @ self.coef_ + self.intercept_

    def r2(self, X: Sequence[Sequence[float]], y: Sequence[float]) -> float:
        y = np.asarray(y, dtype=np.float64)
        pred = self.predict(X)
        ss_res = float(np.sum((y - pred) ** 2))
        ss_tot = float(np.sum((y - np.mean(y)) ** 2))
        if ss_tot == 0:
            return 1.0 if ss_res == 0 else 0.0
        return 1.0 - ss_res / ss_tot


class KnnRegressor:
    """k-NN regression with z-score feature normalization."""

    def __init__(self, k: int = 3):
        if k <= 0:
            raise ConfigError("k must be positive")
        self.k = k
        self._X: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._mu: Optional[np.ndarray] = None
        self._sigma: Optional[np.ndarray] = None

    def fit(self, X: Sequence[Sequence[float]],
            y: Sequence[float]) -> "KnnRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if len(X) == 0:
            raise ConfigError("empty training set")
        self._mu = X.mean(axis=0)
        self._sigma = X.std(axis=0)
        self._sigma[self._sigma == 0] = 1.0
        self._X = (X - self._mu) / self._sigma
        self._y = y
        return self

    def predict(self, X: Sequence[Sequence[float]]) -> np.ndarray:
        if self._X is None:
            raise ConfigError("model is not fitted")
        X = (np.asarray(X, dtype=np.float64) - self._mu) / self._sigma
        out = np.empty(len(X))
        k = min(self.k, len(self._X))
        for i, x in enumerate(X):
            dist = np.linalg.norm(self._X - x, axis=1)
            nearest = np.argpartition(dist, k - 1)[:k]
            out[i] = float(np.mean(self._y[nearest]))
        return out


@dataclass
class TuningResult:
    knobs: Dict[str, float]
    predicted_metric: float
    samples_used: int
    model_r2: float


class KnobTuner:
    """Learn metric = f(knobs) from history, then search for the best knobs.

    ``maximize=True`` for throughput-like metrics, False for latencies.
    The search evaluates the fitted model on random candidates inside each
    knob's legal range (BestConfig-style random search), never touching the
    real system — proposals go through the change manager.
    """

    def __init__(self, knob_defs: Sequence[KnobDef], maximize: bool = True,
                 seed: int = 1234):
        if not knob_defs:
            raise ConfigError("need at least one knob")
        self.knob_defs = list(knob_defs)
        self.maximize = maximize
        self._rng = random.Random(seed)
        self._samples: List[Tuple[List[float], float]] = []

    @property
    def knob_names(self) -> List[str]:
        return [k.name for k in self.knob_defs]

    def observe(self, knobs: Dict[str, float], metric: float) -> None:
        row = [float(knobs[k.name]) for k in self.knob_defs]
        self._samples.append((row, float(metric)))

    @property
    def sample_count(self) -> int:
        return len(self._samples)

    def propose(self, candidates: int = 512,
                min_samples: int = 5) -> Optional[TuningResult]:
        """Fit on history and return the best predicted knob setting."""
        if len(self._samples) < min_samples:
            return None
        X = [row for row, _ in self._samples]
        y = [metric for _, metric in self._samples]
        # Quadratic features capture the bell shape typical of knob response
        # curves (too small and too large both hurt).
        X_aug = [row + [v * v for v in row] for row in X]
        model = LinearRegression(l2=1e-3).fit(X_aug, y)
        r2 = model.r2(X_aug, y)

        best_row: Optional[List[float]] = None
        best_pred = -float("inf") if self.maximize else float("inf")
        for _ in range(candidates):
            row = [self._rng.uniform(k.minimum, k.maximum)
                   for k in self.knob_defs]
            pred = float(model.predict([row + [v * v for v in row]])[0])
            better = pred > best_pred if self.maximize else pred < best_pred
            if better:
                best_pred = pred
                best_row = row
        assert best_row is not None
        knobs = {k.name: v for k, v in zip(self.knob_defs, best_row)}
        return TuningResult(knobs, best_pred, len(self._samples), r2)
