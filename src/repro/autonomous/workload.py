"""The workload manager (Fig. 12).

"The workload manager monitors and controls query execution in the database
system to ensure efficient use of system resources and achieve targeted
SLA."  SLAs here follow the paper's Sec. IV-A examples: average/percentile
response time and throughput targets.

Admission itself lives in :mod:`repro.wlm` — this manager is the
*self-optimizing loop on top of it*: it watches SLA compliance in the
information store and retunes its resource group's concurrency slots with
AIMD (additive increase while the SLA holds, multiplicative decrease when it
is violated) through :meth:`~repro.wlm.governor.WlmGovernor.set_slots`.
There is one admission path: ``submit``/``finish`` here are thin adapters
over governor tickets, so queueing, priority ordering and overload shedding
behave identically whether a query arrives through this manager or through
the SQL engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.autonomous.infostore import InformationStore
from repro.wlm.governor import Ticket, WlmGovernor
from repro.wlm.groups import Priority, ResourceGroup, WlmConfig

__all__ = ["Admission", "Priority", "Sla", "WorkloadManager"]


@dataclass(frozen=True)
class Sla:
    """A service level agreement for one workload class."""

    name: str
    p95_latency_us: Optional[float] = None
    mean_latency_us: Optional[float] = None
    min_throughput_tps: Optional[float] = None

    def violated_by(self, p95: Optional[float], mean: Optional[float],
                    throughput: Optional[float]) -> List[str]:
        problems = []
        if (self.p95_latency_us is not None and p95 is not None
                and p95 > self.p95_latency_us):
            problems.append(
                f"p95 {p95:.0f}us > target {self.p95_latency_us:.0f}us")
        if (self.mean_latency_us is not None and mean is not None
                and mean > self.mean_latency_us):
            problems.append(
                f"mean {mean:.0f}us > target {self.mean_latency_us:.0f}us")
        if (self.min_throughput_tps is not None and throughput is not None
                and throughput < self.min_throughput_tps):
            problems.append(
                f"throughput {throughput:.0f} < target "
                f"{self.min_throughput_tps:.0f} tps")
        return problems


@dataclass
class Admission:
    """A granted execution slot; release it with ``finish``."""

    query_id: int
    priority: Priority
    admitted_at_us: float
    ticket: Optional[Ticket] = field(default=None, repr=False, compare=False)


class WorkloadManager:
    """SLA evaluation + AIMD slot tuning over a ``repro.wlm`` governor."""

    def __init__(self, store: InformationStore, sla: Sla,
                 initial_concurrency: int = 8,
                 min_concurrency: int = 1, max_concurrency: int = 256,
                 max_queue: int = 1000,
                 governor: Optional[WlmGovernor] = None,
                 group: Optional[str] = None,
                 alerts=None):
        self.store = store
        self.sla = sla
        self.min_concurrency = min_concurrency
        self.max_concurrency = max_concurrency
        self.max_queue = max_queue
        self.alerts = alerts
        if governor is not None:
            # Shared with a cluster: the manager tunes the existing group's
            # slots but does not reconfigure it at construction.
            self.governor = governor
            self.group = governor.group(group).name
        else:
            # Standalone (driven directly with submit/finish): wall-clock
            # admission semantics, one group sized to the initial limit.
            self.group = group if group is not None else "default"
            self.governor = WlmGovernor(
                config=WlmConfig(groups=[ResourceGroup(
                    self.group, slots=initial_concurrency,
                    queue_limit=max_queue)]),
                fast_forward=False)
        self._admissions: Dict[int, Admission] = {}
        self.admitted = 0
        self.rejected = 0
        self.sla_checks = 0
        self.sla_violations = 0
        self.adjustments: List[Tuple[float, int]] = []

    # -- admission control --------------------------------------------------

    @property
    def concurrency_limit(self) -> int:
        return self.governor.group(self.group).slots

    def submit(self, now_us: float,
               priority: Priority = Priority.NORMAL) -> Optional[Admission]:
        """Ask for an execution slot; None means queued, raises when full."""
        try:
            ticket = self.governor.submit(group=self.group, now_us=now_us,
                                          priority=priority)
        except Exception:
            self.rejected += 1
            raise
        if ticket.queued:
            return None
        return self._grant(ticket)

    def finish(self, admission: Admission, now_us: float) -> List[Admission]:
        """Release a slot; record latency; admit queued queries."""
        self._admissions.pop(admission.query_id, None)
        latency = now_us - admission.admitted_at_us
        self.store.record("query_latency_us", now_us, latency)
        self.store.record("query_completed", now_us, 1.0)
        if admission.ticket is None:
            return []
        promoted = self.governor.release(admission.ticket, now_us)
        return [self._grant(ticket) for ticket in promoted]

    def _grant(self, ticket: Ticket) -> Admission:
        admission = Admission(ticket.query_id, ticket.priority,
                              ticket.admitted_us, ticket=ticket)
        self._admissions[ticket.query_id] = admission
        self.admitted += 1
        return admission

    @property
    def running_count(self) -> int:
        return self.governor.running_count(self.group)

    @property
    def queued_count(self) -> int:
        return self.governor.queued_count(self.group)

    # -- the self-optimizing loop ----------------------------------------------

    def evaluate_sla(self, now_us: float,
                     window: int = 200) -> List[str]:
        summary = self.store.summary("query_latency_us", last_n=window)
        throughput = self.store.rate_per_second(
            "query_completed", window_us=1_000_000.0, now_us=now_us)
        self.sla_checks += 1
        if summary is None:
            return []
        problems = self.sla.violated_by(summary.p95, summary.mean, throughput)
        if problems:
            self.sla_violations += 1
        return problems

    def adjust(self, now_us: float) -> int:
        """AIMD step: shrink on violation, grow while the SLA holds."""
        problems = self.evaluate_sla(now_us)
        current = self.concurrency_limit
        if problems:
            new_limit = max(self.min_concurrency, current // 2)
        else:
            new_limit = min(self.max_concurrency, current + 1)
        if new_limit != current:
            self.governor.set_slots(self.group, new_limit, now_us=now_us)
            self.adjustments.append((now_us, new_limit))
            if self.alerts is not None:
                direction = "shrunk" if new_limit < current else "grew"
                self.alerts.raise_alert(
                    source="wlm", severity="info",
                    message=(f"workload manager {direction} group "
                             f"{self.group!r} slots {current} -> {new_limit}"
                             + (f" ({problems[0]})" if problems else "")),
                    t_us=now_us, key=f"wlm.adjust:{self.group}")
        return self.concurrency_limit
