"""The workload manager (Fig. 12).

"The workload manager monitors and controls query execution in the database
system to ensure efficient use of system resources and achieve targeted
SLA."  SLAs here follow the paper's Sec. IV-A examples: average/percentile
response time and throughput targets.

The manager implements admission control with a dynamically tuned
concurrency limit (AIMD: additive increase while the SLA holds,
multiplicative decrease when it is violated) plus priority-aware queueing —
the self-optimizing property.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.autonomous.infostore import InformationStore
from repro.common.errors import SlaViolation


@dataclass(frozen=True)
class Sla:
    """A service level agreement for one workload class."""

    name: str
    p95_latency_us: Optional[float] = None
    mean_latency_us: Optional[float] = None
    min_throughput_tps: Optional[float] = None

    def violated_by(self, p95: Optional[float], mean: Optional[float],
                    throughput: Optional[float]) -> List[str]:
        problems = []
        if (self.p95_latency_us is not None and p95 is not None
                and p95 > self.p95_latency_us):
            problems.append(
                f"p95 {p95:.0f}us > target {self.p95_latency_us:.0f}us")
        if (self.mean_latency_us is not None and mean is not None
                and mean > self.mean_latency_us):
            problems.append(
                f"mean {mean:.0f}us > target {self.mean_latency_us:.0f}us")
        if (self.min_throughput_tps is not None and throughput is not None
                and throughput < self.min_throughput_tps):
            problems.append(
                f"throughput {throughput:.0f} < target "
                f"{self.min_throughput_tps:.0f} tps")
        return problems


class Priority(enum.IntEnum):
    LOW = 0
    NORMAL = 1
    HIGH = 2


@dataclass
class Admission:
    """A granted execution slot; release it with ``finish``."""

    query_id: int
    priority: Priority
    admitted_at_us: float


class WorkloadManager:
    """Admission control + AIMD concurrency tuning against an SLA."""

    def __init__(self, store: InformationStore, sla: Sla,
                 initial_concurrency: int = 8,
                 min_concurrency: int = 1, max_concurrency: int = 256,
                 max_queue: int = 1000):
        self.store = store
        self.sla = sla
        self.concurrency_limit = initial_concurrency
        self.min_concurrency = min_concurrency
        self.max_concurrency = max_concurrency
        self.max_queue = max_queue
        self._running: Dict[int, Admission] = {}
        self._queue: Deque[Tuple[int, Priority, float]] = deque()
        self._next_id = 0
        self.admitted = 0
        self.rejected = 0
        self.sla_checks = 0
        self.sla_violations = 0
        self.adjustments: List[Tuple[float, int]] = []

    # -- admission control --------------------------------------------------

    def submit(self, now_us: float,
               priority: Priority = Priority.NORMAL) -> Optional[Admission]:
        """Ask for an execution slot; None means queued, raises when full."""
        self._next_id += 1
        query_id = self._next_id
        if len(self._running) < self.concurrency_limit:
            admission = Admission(query_id, priority, now_us)
            self._running[query_id] = admission
            self.admitted += 1
            return admission
        if len(self._queue) >= self.max_queue:
            self.rejected += 1
            raise SlaViolation(
                f"admission queue full ({self.max_queue}); shedding load")
        # Priority queue: HIGH jumps ahead of lower classes.
        self._queue.append((query_id, priority, now_us))
        self._queue = deque(sorted(self._queue, key=lambda q: (-q[1], q[2])))
        return None

    def finish(self, admission: Admission, now_us: float) -> List[Admission]:
        """Release a slot; record latency; admit queued queries."""
        self._running.pop(admission.query_id, None)
        latency = now_us - admission.admitted_at_us
        self.store.record("query_latency_us", now_us, latency)
        self.store.record("query_completed", now_us, 1.0)
        admitted: List[Admission] = []
        while self._queue and len(self._running) < self.concurrency_limit:
            query_id, priority, _ = self._queue.popleft()
            slot = Admission(query_id, priority, now_us)
            self._running[query_id] = slot
            self.admitted += 1
            admitted.append(slot)
        return admitted

    @property
    def running_count(self) -> int:
        return len(self._running)

    @property
    def queued_count(self) -> int:
        return len(self._queue)

    # -- the self-optimizing loop ----------------------------------------------

    def evaluate_sla(self, now_us: float,
                     window: int = 200) -> List[str]:
        summary = self.store.summary("query_latency_us", last_n=window)
        throughput = self.store.rate_per_second(
            "query_completed", window_us=1_000_000.0, now_us=now_us)
        self.sla_checks += 1
        if summary is None:
            return []
        problems = self.sla.violated_by(summary.p95, summary.mean, throughput)
        if problems:
            self.sla_violations += 1
        return problems

    def adjust(self, now_us: float) -> int:
        """AIMD step: shrink on violation, grow while the SLA holds."""
        problems = self.evaluate_sla(now_us)
        if problems:
            new_limit = max(self.min_concurrency, self.concurrency_limit // 2)
        else:
            new_limit = min(self.max_concurrency, self.concurrency_limit + 1)
        if new_limit != self.concurrency_limit:
            self.concurrency_limit = new_limit
            self.adjustments.append((now_us, new_limit))
        return self.concurrency_limit
