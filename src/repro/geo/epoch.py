"""Epoch batching: each region groups its commits into fixed time slices.

The GeoGauss observation (PAPERS.md) is that a multi-master geo protocol
should pay the WAN **once per epoch**, not once per transaction: a region
acknowledges nothing until the epoch certifies, but every transaction of an
epoch shares one cross-region exchange.  :class:`EpochManager` is one
region's side of that bargain — it assigns every locally-submitted
transaction to an epoch (``floor(commit_ts / interval)``, never before an
already-sealed epoch), seals epochs as simulated time passes their
boundary, and keeps the sealed batches durably so a crashed or partitioned
region can re-ship them during recovery.

Epochs are sealed *densely*: a region with nothing to say still seals an
empty batch, because the certifier needs epoch ``e`` from **every** region
before it may decide epoch ``e`` anywhere (strict epoch order is what makes
the decision a pure function every region evaluates identically).

The epoch clock is piecewise-linear, not a plain modulus: the autonomous
manager retunes the interval online (AIMD against the commit-latency SLA),
and a retune must not renumber history.  :meth:`EpochManager.rebase`
anchors the new interval at a future epoch boundary; as long as every
region rebases with identical arguments (the :class:`GeoCluster` does),
epoch numbering stays globally consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class GeoWriteOp:
    """One buffered write, replayed on every hosting region if certified."""

    kind: str                      # 'insert' | 'update' | 'delete'
    table: str
    key: object                    # primary key (also the conflict unit)
    values: Optional[Dict[str, object]]   # row for insert, delta for update
    geo_slot: int                  # -1 for replicated tables (hosted everywhere)


@dataclass
class GeoTxnRecord:
    """One transaction as it travels inside an epoch batch.

    Everything the certifier needs is here — origin, commit timestamp and
    the write-key set — so certification never reaches back to the origin
    region's live state.
    """

    txn_id: Tuple[int, int]        # (origin region, per-region sequence)
    origin: int
    kind: str                      # workload profile name ('payment', ...)
    commit_ts: float               # simulated submit-for-commit time
    ops: List[GeoWriteOp] = field(default_factory=list)
    #: Originating client session.  Ships with the record: the certifier
    #: must tell two *concurrent* writers apart from one session's
    #: *sequential* writes (already serialized at the origin), and the
    #: rule has to evaluate identically at every region.
    session_id: Optional[int] = None

    @property
    def write_keys(self) -> Tuple[Tuple[str, object], ...]:
        return tuple((op.table, op.key) for op in self.ops)


@dataclass
class EpochBatch:
    """Every transaction one region contributes to one epoch (maybe none)."""

    region: int
    epoch: int
    seal_us: float
    records: List[GeoTxnRecord] = field(default_factory=list)

    def size_bytes(self) -> int:
        # Coarse wire-size model: a fixed header plus a per-op payload.
        return 64 + sum(32 + 16 * len(r.ops) for r in self.records)


class EpochManager:
    """One region's epoch clock: open batches in front, sealed log behind."""

    def __init__(self, region: int, interval_us: float):
        self.region = region
        self.interval_us = float(interval_us)
        #: The piecewise-linear anchor: epoch ``base_epoch`` *starts* at
        #: ``base_us``; boundaries step by ``interval_us`` from there.
        self.base_epoch = 0
        self.base_us = 0.0
        #: Highest epoch sealed so far (-1: nothing sealed yet).
        self.last_sealed = -1
        #: Open (unsealed) batches by epoch number.
        self._open: Dict[int, List[GeoTxnRecord]] = {}
        #: The durable sealed log, by epoch.  Survives a region crash — a
        #: recovering region re-ships from here.
        self.sealed: Dict[int, EpochBatch] = {}
        self._next_seq = 0

    def next_txn_id(self) -> Tuple[int, int]:
        self._next_seq += 1
        return (self.region, self._next_seq)

    def start_us_of(self, epoch: int) -> float:
        return self.base_us + (epoch - self.base_epoch) * self.interval_us

    def seal_boundary_us(self, epoch: int) -> float:
        """The simulated instant epoch ``epoch`` seals (its end)."""
        return self.start_us_of(epoch + 1)

    def epoch_of(self, t_us: float) -> int:
        """The epoch a commit at ``t_us`` joins.

        A commit submitted after its natural epoch sealed (the client was
        slow relative to the epoch clock) rolls forward into the earliest
        still-open epoch instead of mutating sealed history.
        """
        if t_us <= self.base_us:
            natural = self.base_epoch
        else:
            natural = self.base_epoch + int((t_us - self.base_us)
                                            // self.interval_us)
        return max(natural, self.last_sealed + 1)

    def rebase(self, epoch: int, at_us: float, interval_us: float) -> None:
        """Re-anchor the epoch clock: ``epoch`` starts at ``at_us``.

        Called with identical arguments on every region's manager so the
        global epoch numbering never forks.  Only future epochs may be
        rebased — sealed history is immutable.
        """
        if epoch <= self.last_sealed:
            raise ValueError(
                f"cannot rebase at epoch {epoch}: {self.last_sealed} "
                "already sealed")
        self.base_epoch = epoch
        self.base_us = at_us
        self.interval_us = float(interval_us)

    def submit(self, record: GeoTxnRecord) -> int:
        """Add a locally-committed transaction to its epoch; return it."""
        epoch = self.epoch_of(record.commit_ts)
        self._open.setdefault(epoch, []).append(record)
        return epoch

    def seal_through(self, now_us: float) -> List[EpochBatch]:
        """Seal every epoch whose boundary has passed, empty ones included.

        Returns the newly sealed batches in epoch order; each is stamped
        with its *scheduled* boundary time (not ``now_us``), so timing is a
        function of the epoch clock alone, never of driver call cadence.
        """
        out: List[EpochBatch] = []
        while self.seal_boundary_us(self.last_sealed + 1) <= now_us:
            epoch = self.last_sealed + 1
            batch = EpochBatch(
                region=self.region, epoch=epoch,
                seal_us=self.seal_boundary_us(epoch),
                records=self._open.pop(epoch, []),
            )
            self.sealed[epoch] = batch
            self.last_sealed = epoch
            out.append(batch)
        return out

    def abort_open(self) -> List[GeoTxnRecord]:
        """Drop every unsealed transaction (region crash before the seal).

        Sealed batches are durable and untouched; only never-acknowledged
        open work is lost — which is exactly the protocol's promise.
        """
        lost = [r for records in self._open.values() for r in records]
        self._open.clear()
        return lost

    @property
    def open_count(self) -> int:
        return sum(len(records) for records in self._open.values())

    def max_open_ts(self) -> Optional[float]:
        """Latest commit timestamp among unsealed transactions, if any."""
        latest: Optional[float] = None
        for records in self._open.values():
            for record in records:
                if latest is None or record.commit_ts > latest:
                    latest = record.commit_ts
        return latest
