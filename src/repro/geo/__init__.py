"""`repro.geo` — geo-replicated multi-region OLTP (paper Sec. V-C).

The paper's geo-distribution challenge — multiple regions, each a full MPP
cluster, acting as one database with bounded commit latency — realized as
GeoGauss-style epoch-based multi-master commit (PAPERS.md) with
Sutra–Shapiro partial replication, plus a naive synchronous global-2PC
baseline for the benchmark to beat.

* :mod:`repro.geo.cluster` — :class:`GeoCluster` / :class:`GeoSession` /
  :class:`GeoTransaction`: the client surface and the epoch machine.
* :mod:`repro.geo.epoch` — per-region epoch batching with a retunable
  piecewise-linear epoch clock.
* :mod:`repro.geo.certify` — the pure deterministic certifier and the
  divergence-check digest.
* :mod:`repro.geo.shardmap` — geo slot placement (home + subscribers).
* :mod:`repro.geo.fabric` — the WAN between regions, partitionable per
  direction.
* :mod:`repro.geo.load` — partial-replication-aware TPC-C-lite loading.
"""

from repro.geo.certify import (
    ABORT,
    COMMIT,
    certification_order,
    certify_epoch,
    outcome_digest,
)
from repro.geo.cluster import (
    GEO_TRACE_BASE,
    GeoCluster,
    GeoCommitHandle,
    GeoConfig,
    GeoMode,
    GeoSession,
    GeoTransaction,
)
from repro.geo.epoch import EpochBatch, EpochManager, GeoTxnRecord, GeoWriteOp
from repro.geo.fabric import RegionFabric, region_endpoint
from repro.geo.load import (
    load_tpcc_geo,
    warehouses_homed_at,
    warehouses_hosted_at,
)
from repro.geo.shardmap import SLOTS_PER_REGION, GeoShardMap

__all__ = [
    "ABORT",
    "COMMIT",
    "EpochBatch",
    "EpochManager",
    "GEO_TRACE_BASE",
    "GeoCluster",
    "GeoCommitHandle",
    "GeoConfig",
    "GeoMode",
    "GeoSession",
    "GeoShardMap",
    "GeoTransaction",
    "GeoTxnRecord",
    "GeoWriteOp",
    "RegionFabric",
    "SLOTS_PER_REGION",
    "certification_order",
    "certify_epoch",
    "load_tpcc_geo",
    "outcome_digest",
    "region_endpoint",
    "warehouses_homed_at",
    "warehouses_hosted_at",
]
