"""Geo shard map: per-region placement on top of the versioned ShardMap.

Sutra & Shapiro's fault-tolerant *partial* replication (PAPERS.md) is the
placement model: every hash slot has one **home region** plus a set of
**subscriber regions**, and a region stores (and applies epochs for) only
the slots it hosts.  Reads of a non-hosted slot route to the slot's home
region over the WAN; writes can originate anywhere and are settled by the
epoch certifier identically in every hosting region.

The map extends the PR-9 :class:`~repro.cluster.shardmap.ShardMap` idea —
fixed hash slots, explicit version — one level up: slots here map to
*regions*, while each region's own ShardMap keeps mapping values to DNs
inside the region.  The two layers compose: a value hashes to a geo slot
(which regions hold it) and, within each hosting region, to a DN slot
(which node holds it there).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.shardmap import ShardMapError
from repro.storage.table import shard_of_value

#: Geo slots per region.  Coarser than the 64-per-DN intra-region map: geo
#: placement moves whole subscription sets, not node-balance units.
SLOTS_PER_REGION = 16


class GeoShardMap:
    """Fixed hash slots -> (home region, subscriber regions), versioned."""

    def __init__(self, num_regions: int,
                 replication_factor: Optional[int] = None,
                 num_slots: Optional[int] = None):
        if num_regions <= 0:
            raise ShardMapError("geo shard map needs at least one region")
        if num_slots is None:
            num_slots = num_regions * SLOTS_PER_REGION
        if num_slots < num_regions or num_slots % num_regions != 0:
            raise ShardMapError(
                f"num_slots ({num_slots}) must be a positive multiple of "
                f"num_regions ({num_regions})")
        if replication_factor is None:
            replication_factor = num_regions
        if not (1 <= replication_factor <= num_regions):
            raise ShardMapError(
                f"replication_factor ({replication_factor}) must be in "
                f"[1, {num_regions}]")
        self.num_regions = int(num_regions)
        self.num_slots = int(num_slots)
        self.replication_factor = int(replication_factor)
        #: slot -> home region.  Round-robin, so region r homes exactly
        #: ``num_slots / num_regions`` slots and a single-region map homes
        #: everything at region 0 (the degenerate seed-compatible case).
        self._home: List[int] = [s % num_regions for s in range(num_slots)]
        #: slot -> hosting regions (home first, then the next
        #: ``replication_factor - 1`` regions in ring order).
        self._hosts: List[Tuple[int, ...]] = [
            tuple((self._home[s] + k) % num_regions
                  for k in range(replication_factor))
            for s in range(num_slots)
        ]
        #: Bumped on every placement change; pinned by consumers the way
        #: the intra-region map's version is pinned by the plan cache.
        self.version = 1

    # ------------------------------------------------------------------
    # routing

    def slot_of_value(self, value) -> int:
        """Hash a distribution value to its geo slot."""
        return shard_of_value(value, self.num_slots)

    def home_region_of_slot(self, slot: int) -> int:
        return self._home[slot]

    def home_region_of_value(self, value) -> int:
        return self._home[shard_of_value(value, self.num_slots)]

    def hosting_regions(self, slot: int) -> Tuple[int, ...]:
        """Regions that store this slot (home first)."""
        return self._hosts[slot]

    def hosts(self, region: int, slot: int) -> bool:
        return region in self._hosts[slot]

    def hosts_value(self, region: int, value) -> bool:
        return region in self._hosts[shard_of_value(value, self.num_slots)]

    def slots_hosted_by(self, region: int) -> List[int]:
        return [s for s in range(self.num_slots)
                if region in self._hosts[s]]

    def slots_homed_at(self, region: int) -> List[int]:
        return [s for s, home in enumerate(self._home) if home == region]

    # ------------------------------------------------------------------
    # placement changes

    def place(self, slot: int, home: int,
              subscribers: Sequence[int] = ()) -> None:
        """Re-place one slot: new home region plus extra subscribers.

        The home region always hosts its slot; subscribers are deduplicated
        and ordered (home first, then ascending region index) so placement
        is deterministic regardless of caller ordering.
        """
        if not 0 <= slot < self.num_slots:
            raise ShardMapError(f"slot {slot} out of range")
        if not 0 <= home < self.num_regions:
            raise ShardMapError(f"region {home} out of range")
        extra = sorted({r for r in subscribers if r != home})
        for region in extra:
            if not 0 <= region < self.num_regions:
                raise ShardMapError(f"region {region} out of range")
        self._home[slot] = home
        self._hosts[slot] = (home, *extra)
        self.version += 1

    # ------------------------------------------------------------------
    # accounting / introspection

    def hosted_counts(self) -> Dict[int, int]:
        """Hosted-slot count per region (zero-filled)."""
        counts = {r: 0 for r in range(self.num_regions)}
        for hosts in self._hosts:
            for region in hosts:
                counts[region] += 1
        return counts

    def rows(self) -> List[tuple]:
        """(slot, home_region, subscribers) rows for ``sys.geo_shard_map``."""
        return [
            (slot, self._home[slot],
             ",".join(f"r{r}" for r in self._hosts[slot]))
            for slot in range(self.num_slots)
        ]
