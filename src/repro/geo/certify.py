"""Deterministic epoch certification: the multi-master commit decision.

Once a region holds epoch ``e``'s batch from **every** region, the outcome
of every transaction in the epoch is a *pure function* of that batch set —
no further messages, no coordinator.  Each region evaluates the function
independently and must reach the same verdicts; :func:`outcome_digest`
turns a region's verdict list into a checksum the divergence tests compare.

The decision rule (GeoGauss-style, PAPERS.md):

* Transactions across all batches of the epoch are ordered by
  ``(origin-region priority, commit timestamp, origin region, sequence)``
  — a total order every region derives identically.  Region priority is
  the region index, so ties between concurrent writers resolve in favor of
  the lower-numbered region rather than nondeterministically.
* Walk that order; the **first** transaction to claim a write key (table,
  primary key) in the epoch claims it for its client session, and a later
  transaction in the same epoch touching a key claimed by a *different*
  session **aborts** — first-committer-wins write-write certification
  between concurrent writers.  Writes from the **same** (origin, session)
  are exempt: one session's transactions are sequential and already
  serialized at the origin (reads see the session's pending writes), so
  its updates to a hot key stack in commit order instead of aborting.
  Epochs themselves are applied strictly in order, so cross-epoch
  conflicts cannot arise.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple
from zlib import crc32

from repro.geo.epoch import EpochBatch, GeoTxnRecord

COMMIT = "committed"
ABORT = "aborted"

#: One verdict: (txn_id, outcome) in certification order.
Verdict = Tuple[Tuple[int, int], str]


def certification_order(batches: Sequence[EpochBatch]) -> List[GeoTxnRecord]:
    """The epoch's total transaction order, identical at every region."""
    records = [r for batch in batches for r in batch.records]
    records.sort(key=lambda r: (r.origin, r.commit_ts, r.txn_id))
    return records


def certify_epoch(batches: Sequence[EpochBatch]) -> List[Verdict]:
    """Decide every transaction of one epoch.  Pure; order deterministic."""
    claimed: Dict[Tuple[str, object], Tuple[int, Optional[int]]] = {}
    verdicts: List[Verdict] = []
    for record in certification_order(batches):
        writer = (record.origin, record.session_id)
        keys = record.write_keys
        if any(key in claimed and claimed[key] != writer for key in keys):
            verdicts.append((record.txn_id, ABORT))
            continue
        for key in keys:
            claimed[key] = writer
        verdicts.append((record.txn_id, COMMIT))
    return verdicts


def outcome_digest(epoch: int, verdicts: Sequence[Verdict]) -> int:
    """A replay-stable checksum of one epoch's verdict list.

    crc32 over a canonical rendering (not ``hash()``: Python string hashing
    is salted per process, and digests must match across runs and
    interpreters — the same reason the wait sampler salts with crc32).
    """
    text = f"e{epoch}:" + ";".join(
        f"{txn_id[0]}.{txn_id[1]}={outcome}" for txn_id, outcome in verdicts)
    return crc32(text.encode("utf-8")) & 0xFFFFFFFF
