"""repro.geo — geo-replicated multi-region OLTP over the MPP engine.

A :class:`GeoCluster` stands up N regions, each a full CN+DN+GTM
:class:`~repro.cluster.mpp.MppCluster`, connects them with a WAN-modeled
:class:`~repro.geo.fabric.RegionFabric`, and runs one of two multi-region
commit protocols over the same client API:

* ``GeoMode.GEOGAUSS`` — epoch-based multi-master commit (GeoGauss,
  PAPERS.md).  Each region batches its locally-submitted transactions into
  fixed simulated-time epochs; sealed batches are exchanged once per epoch;
  a deterministic certifier orders the union and resolves write-write
  conflicts identically in every region.  A transaction's commit
  acknowledgment waits for its epoch to certify — so the WAN round trip is
  paid once per *epoch*, not twice per *transaction*.
* ``GeoMode.GLOBAL_2PC`` — the naive baseline: every transaction runs a
  synchronous prepare+commit across all hosting regions, two WAN round
  trips each, with a global lock table that turns concurrent writers into
  honest aborts.

Partial replication (Sutra & Shapiro, PAPERS.md) rides on
:class:`~repro.geo.shardmap.GeoShardMap`: every geo hash slot has a home
region and a subscriber set, regions apply only the certified writes of
slots they host, and reads of a non-hosted slot route to the slot's home
region over the WAN.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field as dc_field
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.cluster.mpp import MppCluster, Session
from repro.cluster.txn import TxnMode
from repro.common.errors import ConfigError, InvalidTransactionState
from repro.faults.injector import (
    FP_GEO_APPLY,
    FP_GEO_CERTIFY,
    FP_GEO_SHIP,
    CoordinatorCrash,
    InjectedTimeout,
)
from repro.geo.certify import COMMIT, certify_epoch, outcome_digest
from repro.geo.epoch import EpochBatch, EpochManager, GeoTxnRecord, GeoWriteOp
from repro.geo.fabric import RegionFabric
from repro.geo.shardmap import GeoShardMap
from repro.obs.tracing import TraceContext
from repro.obs.waits import (
    WAIT_GEO_APPLY,
    WAIT_GEO_CERTIFY,
    WAIT_GEO_EPOCH,
    WAIT_GEO_REMOTE_READ,
    WAIT_GEO_SHIP,
)
from repro.storage.table import Distribution, TableSchema

#: Epoch traces share one id space across every region's tracer, disjoint
#: from the per-region query/txn trace ids, so the per-region slices of one
#: epoch stitch into a single cross-region trace.
GEO_TRACE_BASE = 1 << 40


class GeoMode(enum.Enum):
    """Which multi-region commit protocol the cluster runs."""

    GEOGAUSS = "geogauss"
    GLOBAL_2PC = "global_2pc"


@dataclass
class GeoConfig:
    """Topology and protocol knobs for a :class:`GeoCluster`."""

    num_regions: int = 3
    dns_per_region: int = 2
    cns_per_region: int = 1
    mode: GeoMode = GeoMode.GEOGAUSS
    #: Epoch length.  Much smaller than the WAN RTT by design: the epoch
    #: wait it adds to commit latency is what buys the per-epoch (instead
    #: of per-transaction) WAN exchange.
    epoch_interval_us: float = 10_000.0
    #: Round trip between any two distinct regions (matches the
    #: device/cloud profile's ``internet_rtt_us``); one-way is half.
    wan_rtt_us: float = 60_000.0
    #: Regions hosting each geo slot (home + subscribers).  ``None`` means
    #: full replication: every region hosts every slot.
    replication_factor: Optional[int] = None
    #: The autonomous manager's AIMD target for p95 commit latency.
    commit_latency_sla_us: float = 150_000.0
    min_epoch_interval_us: float = 1_000.0
    max_epoch_interval_us: float = 120_000.0
    #: Per-epoch certification cost model.
    certify_base_us: float = 200.0
    certify_per_txn_us: float = 10.0
    #: Distributed-transaction protocol inside each region.
    txn_mode: TxnMode = TxnMode.GTM_LITE
    #: ``False`` degenerates to one plain, unnamed MppCluster with no geo
    #: runtime at all — the seed path, replayed result- and
    #: telemetry-identically.
    geo_enabled: bool = True

    @property
    def one_way_us(self) -> float:
        return self.wan_rtt_us / 2.0


@dataclass
class GeoCommitHandle:
    """The client's view of one geo transaction's fate.

    Under epoch commit the acknowledgment is asynchronous: ``commit()``
    returns a PENDING handle, and the handle resolves when the home region
    certifies (and applies) the transaction's epoch.
    """

    txn_id: Tuple[int, int]
    origin: int
    kind: str
    submit_us: float
    status: str = "pending"        # 'pending' | 'committed' | 'aborted'
    epoch: Optional[int] = None
    ack_us: Optional[float] = None
    reason: Optional[str] = None
    result: object = None

    @property
    def latency_us(self) -> Optional[float]:
        if self.ack_us is None:
            return None
        return max(0.0, self.ack_us - self.submit_us)


@dataclass
class GeoEpochRow:
    """One region's record of one certified epoch (a ``sys.geo_epochs`` row)."""

    epoch: int
    region: int
    txns: int
    committed: int
    aborted: int
    applied_ops: int
    seal_us: float
    certify_us: float
    apply_us: float
    digest: int

    def as_row(self) -> tuple:
        return (self.epoch, self.region, self.txns, self.committed,
                self.aborted, self.applied_ops, self.seal_us,
                self.certify_us, self.apply_us, self.digest)


class GeoCluster:
    """N regions, one logical database, one deterministic commit order."""

    def __init__(self, config: Optional[GeoConfig] = None):
        self.config = config if config is not None else GeoConfig()
        cfg = self.config
        if cfg.num_regions <= 0:
            raise ConfigError("num_regions must be positive")
        if not cfg.geo_enabled and cfg.num_regions != 1:
            raise ConfigError("geo_enabled=False requires num_regions == 1")
        self.enabled = cfg.geo_enabled
        if not self.enabled:
            # The degenerate single-region deployment IS the seed cluster:
            # unnamed (seed fabric/node names), no geo runtime bound, no
            # geo telemetry — byte-identical replays of the seed path.
            self.regions: List[MppCluster] = [MppCluster(
                num_dns=cfg.dns_per_region, num_cns=cfg.cns_per_region,
                mode=cfg.txn_mode)]
            self.shard_map = None
            self.fabric = None
            self.epochs = []
            self.faults = None
            return
        self.regions = [
            MppCluster(num_dns=cfg.dns_per_region, num_cns=cfg.cns_per_region,
                       mode=cfg.txn_mode, name=f"r{i}")
            for i in range(cfg.num_regions)
        ]
        self.shard_map = GeoShardMap(cfg.num_regions,
                                     replication_factor=cfg.replication_factor)
        self.fabric = RegionFabric(cfg.num_regions, cfg.one_way_us)
        self.epochs: List[EpochManager] = [
            EpochManager(i, cfg.epoch_interval_us)
            for i in range(cfg.num_regions)
        ]
        #: Set by :meth:`repro.faults.FaultInjector.bind`.
        self.faults = None
        self.crashed_regions: Set[int] = set()
        #: Batches held at each region awaiting certification:
        #: (holder, src, epoch) -> (batch, arrival_us).
        self._held: Dict[Tuple[int, int, int], Tuple[EpochBatch, float]] = {}
        #: Deliveries that could not complete (partition / fault / crashed
        #: receiver), retried every step: (src, dst, epoch).
        self._pending_ship: List[Tuple[int, int, int]] = []
        self._delivered: Set[Tuple[int, int, int]] = set()
        #: Per-region certification frontier and the simulated time its
        #: last epoch finished applying.
        self._certified: List[int] = [-1] * cfg.num_regions
        self._apply_end: List[float] = [0.0] * cfg.num_regions
        self._epoch_rows: List[GeoEpochRow] = []
        self._handles: Dict[Tuple[int, int], GeoCommitHandle] = {}
        #: Commit latencies of recently acknowledged transactions (both
        #: protocols), the AIMD controller's input signal.
        self.recent_latencies: Deque[float] = deque(maxlen=512)
        #: The naive-2PC global lock table: (table, key) -> (release time,
        #: holding writer).  A *different* writer whose commit window
        #: overlaps a held lock aborts; the holder's own next transaction
        #: re-extends its lock (sequential, not concurrent).
        self._locks: Dict[Tuple[str, object],
                          Tuple[float, Tuple[int, Optional[int]]]] = {}
        self._now_us = 0.0
        for i, region in enumerate(self.regions):
            region.geo = self
            if region.obs is not None:
                region.obs.bind_geo(self)
                region.obs.metrics.gauge("geo.epoch_interval_us").set(
                    cfg.epoch_interval_us)

    # ------------------------------------------------------------------
    # topology / DDL

    @property
    def num_regions(self) -> int:
        return len(self.regions)

    @property
    def obs(self):
        """Region 0's observability — where cluster-scoped recorders (the
        bound fault injector) stamp their history."""
        return self.regions[0].obs if self.regions else None

    def region(self, index: int) -> MppCluster:
        return self.regions[index]

    def create_table(self, schema: TableSchema) -> None:
        for region in self.regions:
            region.create_table(schema)

    def geo_slot_of(self, schema: TableSchema, dist_value) -> int:
        """The geo slot of one distribution value (-1: replicated table)."""
        if schema.distribution is Distribution.REPLICATION:
            return -1
        return self.shard_map.slot_of_value(dist_value)

    def hosting_regions_of(self, geo_slot: int) -> Tuple[int, ...]:
        if geo_slot < 0:
            return tuple(range(self.num_regions))
        return self.shard_map.hosting_regions(geo_slot)

    # ------------------------------------------------------------------
    # sessions

    def session(self, region: int = 0, start_us: float = 0.0):
        """A client session homed at ``region``.

        With the geo layer disabled this is a plain region session — the
        seed code path, untouched.
        """
        if not self.enabled:
            return self.regions[0].session(track_costs=True,
                                           start_us=start_us)
        return GeoSession(self, region, start_us=start_us)

    # ------------------------------------------------------------------
    # the epoch machine

    def _fire(self, failpoint: str, region: int, **ctx) -> Optional[float]:
        """Hit a geo failpoint.  Returns an extra delay, or ``None`` when
        the step must be skipped this round (timeout/drop); a coordinator
        crash takes the whole region down (open epochs lost, sealed log
        durable)."""
        if self.faults is None:
            return 0.0
        try:
            outcome = self.faults.fire(failpoint, region=region, **ctx)
        except CoordinatorCrash:
            self.crash_region(region)
            return None
        except InjectedTimeout:
            return None
        if outcome.dropped:
            return None
        return outcome.delay_us

    def step_to(self, now_us: float) -> int:
        """Advance the simulated epoch machine to ``now_us``.

        Seals every epoch whose boundary passed, ships sealed batches
        (retrying earlier failures), certifies and applies every epoch all
        of whose batches have arrived.  Returns the number of ship +
        certify events that made progress, so callers can drain to a
        fixpoint.
        """
        if not self.enabled or self.config.mode is not GeoMode.GEOGAUSS:
            return 0
        if now_us > self._now_us:
            self._now_us = now_us
        progress = 0
        progress += self._retry_ships(now_us)
        for manager in self.epochs:
            if manager.region in self.crashed_regions:
                continue
            for batch in manager.seal_through(now_us):
                for dst in range(self.num_regions):
                    if self._ship_one(batch.region, dst, batch.epoch,
                                      now_us, retry=False):
                        progress += 1
                    else:
                        self._queue_ship(batch.region, dst, batch.epoch)
        progress += self._certify_ready(now_us)
        return progress

    def _queue_ship(self, src: int, dst: int, epoch: int) -> None:
        key = (src, dst, epoch)
        if key not in self._delivered and key not in self._pending_ship:
            self._pending_ship.append(key)

    def _retry_ships(self, now_us: float) -> int:
        delivered = 0
        still_pending: List[Tuple[int, int, int]] = []
        for src, dst, epoch in self._pending_ship:
            if not self._ship_one(src, dst, epoch, now_us, retry=True):
                still_pending.append((src, dst, epoch))
            else:
                delivered += 1
        self._pending_ship = still_pending
        return delivered

    def _ship_one(self, src: int, dst: int, epoch: int,
                  now_us: float, retry: bool) -> bool:
        if src in self.crashed_regions or dst in self.crashed_regions:
            return False
        batch = self.epochs[src].sealed.get(epoch)
        if batch is None:
            return False
        if src == dst:
            # Local hand-off: the sealed batch is already durable in its
            # own region — no WAN leg, no ship failpoint.
            self._held[(dst, src, epoch)] = (batch, batch.seal_us)
            self._delivered.add((src, dst, epoch))
            return True
        delay = self._fire(FP_GEO_SHIP, src, dst=dst, epoch=epoch)
        if delay is None:
            return False
        if not self.fabric.try_ship(src, dst, batch,
                                    size_bytes=batch.size_bytes()):
            return False
        self.fabric.drain_inbox(dst)   # _held below is the arrival ledger
        one_way = self.fabric.one_way_between(src, dst)
        # A first-try delivery lands exactly one one-way hop after the
        # seal, however late the driver advanced the clock; a retried
        # delivery (partition healed, fault cleared, region recovered)
        # cannot arrive before the step that finally carried it.
        arrival = batch.seal_us + one_way + delay
        if retry:
            arrival = max(arrival, self._now_us)
        self._held[(dst, src, epoch)] = (batch, arrival)
        self._delivered.add((src, dst, epoch))
        if src != dst and batch.records:
            obs = self.regions[src].obs
            if obs is not None:
                obs.metrics.counter("geo.batches_shipped").inc()
                span = obs.tracer.start_span(
                    "geo.ship",
                    parent_ctx=TraceContext(GEO_TRACE_BASE + epoch, 0),
                    node=f"r{src}", epoch=epoch, dst=f"r{dst}")
                span.start_us = batch.seal_us
                obs.tracer.end_span(span, end_us=arrival)
        return True

    def _certify_ready(self, now_us: float) -> int:
        progress = 0
        advancing = True
        while advancing:
            advancing = False
            for region in range(self.num_regions):
                if region in self.crashed_regions:
                    continue
                if self._certify_next(region, now_us):
                    progress += 1
                    advancing = True
        return progress

    def _certify_next(self, region: int, now_us: float) -> bool:
        epoch = self._certified[region] + 1
        held = []
        for src in range(self.num_regions):
            entry = self._held.get((region, src, epoch))
            if entry is None:
                return False            # consistency over availability
            held.append(entry)
        batches = [batch for batch, _ in held]
        t_all = max(self._apply_end[region],
                    max(arrival for _, arrival in held))
        if t_all > now_us:
            return False
        delay = self._fire(FP_GEO_CERTIFY, region, epoch=epoch)
        if delay is None:
            return False
        verdicts = certify_epoch(batches)
        digest = outcome_digest(epoch, verdicts)
        certify_end = t_all + delay + self.config.certify_base_us \
            + self.config.certify_per_txn_us * len(verdicts)
        apply_delay = self._fire(FP_GEO_APPLY, region, epoch=epoch)
        if apply_delay is None:
            return False
        apply_end, applied_ops = self._apply_epoch(
            region, batches, verdicts, certify_end + apply_delay)
        committed = sum(1 for _, outcome in verdicts if outcome == COMMIT)
        self._certified[region] = epoch
        self._apply_end[region] = apply_end
        if not verdicts:
            # Empty epochs advance the frontier but leave no trace: the
            # sys.geo_epochs view and span buffers record only epochs that
            # carried transactions.
            return True
        seal_us = self.epochs[region].sealed[epoch].seal_us \
            if epoch in self.epochs[region].sealed \
            else batches[0].seal_us
        self._epoch_rows.append(GeoEpochRow(
            epoch=epoch, region=region, txns=len(verdicts),
            committed=committed, aborted=len(verdicts) - committed,
            applied_ops=applied_ops, seal_us=seal_us,
            certify_us=certify_end, apply_us=apply_end, digest=digest))
        self._trace_epoch(region, epoch, seal_us, t_all, certify_end,
                          apply_end, len(verdicts))
        self._note_certified(region, epoch, batches, verdicts, seal_us,
                             t_all, certify_end, apply_end)
        obs = self.regions[region].obs
        if obs is not None:
            obs.metrics.counter("geo.epochs_certified").inc()
            obs.advance_to(apply_end)
        return True

    def _apply_epoch(self, region: int, batches: List[EpochBatch],
                     verdicts, start_us: float) -> Tuple[float, int]:
        """Replay the epoch's certified writes this region hosts, in
        certification order, through real region transactions."""
        committed_ids = {txn_id for txn_id, outcome in verdicts
                         if outcome == COMMIT}
        by_id = {r.txn_id: r for batch in batches for r in batch.records}
        cluster = self.regions[region]
        session: Optional[Session] = None
        applied_ops = 0
        end_us = start_us
        for txn_id, outcome in verdicts:
            if txn_id not in committed_ids:
                continue
            record = by_id[txn_id]
            hosted = [op for op in record.ops
                      if op.geo_slot < 0
                      or self.shard_map.hosts(region, op.geo_slot)]
            if not hosted:
                continue
            if session is None:
                session = cluster.session(track_costs=True,
                                          start_us=start_us)

            def body(txn, ops=hosted):
                for op in ops:
                    if op.kind == "insert":
                        txn.insert(op.table, dict(op.values))
                    elif op.kind == "update":
                        txn.update(op.table, op.key, dict(op.values))
                    else:
                        txn.delete(op.table, op.key)

            session.run_transaction(body, multi_shard=True)
            applied_ops += len(hosted)
            end_us = session.ctx.t_us
        if cluster.obs is not None and applied_ops:
            cluster.obs.metrics.counter("geo.applied_ops").inc(applied_ops)
        return end_us, applied_ops

    def _trace_epoch(self, region: int, epoch: int, seal_us: float,
                     t_all: float, certify_end: float, apply_end: float,
                     txns: int) -> None:
        obs = self.regions[region].obs
        if obs is None:
            return
        ctx = TraceContext(GEO_TRACE_BASE + epoch, 0)
        root = obs.tracer.start_span("geo.epoch", parent_ctx=ctx,
                                     node=f"r{region}", epoch=epoch,
                                     txns=txns)
        root.start_us = seal_us
        certify = obs.tracer.start_span("geo.certify", parent=root,
                                        node=f"r{region}", epoch=epoch)
        certify.start_us = t_all
        obs.tracer.end_span(certify, end_us=certify_end)
        if apply_end > certify_end:
            apply_span = obs.tracer.start_span("geo.apply", parent=root,
                                               node=f"r{region}",
                                               epoch=epoch)
            apply_span.start_us = certify_end
            obs.tracer.end_span(apply_span, end_us=apply_end)
        obs.tracer.end_span(root, end_us=apply_end)

    def _note_certified(self, region: int, epoch: int,
                        batches: List[EpochBatch], verdicts, seal_us: float,
                        t_all: float, certify_end: float,
                        apply_end: float) -> None:
        """Resolve the handles of this region's own clients and attribute
        the commit-latency breakdown to wait events.

        Commits acknowledge at *certification*: the verdict is a pure
        function of the durable batch set, so once certified the outcome
        can never change and the local apply is deterministic replay.  The
        apply time is tracked separately (``WAIT_GEO_APPLY``, the
        read-visibility lag), not charged to commit latency.
        """
        obs = self.regions[region].obs
        outcome_of = dict(verdicts)
        for batch in batches:
            if batch.region != region:
                continue
            for record in batch.records:
                handle = self._handles.get(record.txn_id)
                if handle is None or handle.status != "pending":
                    continue
                committed = outcome_of.get(record.txn_id) == COMMIT
                handle.epoch = epoch
                handle.status = "committed" if committed else "aborted"
                handle.ack_us = certify_end
                if not committed:
                    handle.reason = "write-write conflict at certification"
                latency = handle.latency_us
                self.recent_latencies.append(latency)
                if obs is None:
                    continue
                session = record.session_id
                waits = obs.waits
                waits.record(WAIT_GEO_EPOCH,
                             max(0.0, seal_us - record.commit_ts), session)
                waits.record(WAIT_GEO_SHIP, max(0.0, t_all - seal_us),
                             session)
                waits.record(WAIT_GEO_CERTIFY,
                             max(0.0, certify_end - t_all), session)
                if committed:
                    waits.record(WAIT_GEO_APPLY,
                                 max(0.0, apply_end - certify_end), session)
                    obs.metrics.counter("geo.commits").inc()
                else:
                    obs.metrics.counter("geo.aborts").inc()
                obs.metrics.histogram("geo.commit_latency_us").observe(
                    latency)

    # ------------------------------------------------------------------
    # driving

    def drain(self, max_rounds: int = 10_000) -> float:
        """Settle every submitted transaction that *can* settle.

        Finds the goal — the highest epoch holding any real transaction,
        open or sealed — and advances the machine until every reachable
        region has certified through it.  Stops early when a partition or
        a crashed region blocks certification for two straight rounds
        (consistency over availability: nothing is guessed, the stalled
        epochs wait for heal/recovery).
        """
        if not self.enabled or self.config.mode is not GeoMode.GEOGAUSS:
            return self._now_us if self.enabled else 0.0
        goal = -1
        for manager in self.epochs:
            open_ts = manager.max_open_ts()
            if open_ts is not None:
                goal = max(goal, manager.epoch_of(open_ts))
            for epoch, batch in manager.sealed.items():
                if batch.records:
                    goal = max(goal, epoch)
        if goal < 0:
            return self._now_us
        stalled = 0
        for _ in range(max_rounds):
            live = [r for r in range(self.num_regions)
                    if r not in self.crashed_regions]
            laggards = [r for r in live if self._certified[r] < goal]
            if not laggards:
                break
            # Stall detection watches only the regions still behind the
            # goal: a healthy region certifying empty epochs forever must
            # not mask a partitioned peer that cannot move at all.
            before = sum(self._certified[r] for r in laggards)
            horizon = max(
                [self._now_us]
                + [arrival for _, arrival in self._held.values()]
                + [self._apply_end[r] for r in live]
                + [self.epochs[r].seal_boundary_us(goal) for r in live])
            horizon += max(m.interval_us for m in self.epochs) \
                + self.config.wan_rtt_us + self.config.certify_base_us + 1.0
            self.step_to(horizon)
            if sum(self._certified[r] for r in laggards) == before:
                stalled += 1
                if stalled >= 2:
                    break
            else:
                stalled = 0
        return self._now_us

    # ------------------------------------------------------------------
    # failures

    def partition(self, a: int, b: int, bidirectional: bool = True) -> None:
        self.fabric.partition(a, b, bidirectional=bidirectional)

    def heal(self, a: int, b: int, bidirectional: bool = True) -> None:
        self.fabric.heal(a, b, bidirectional=bidirectional)

    def crash_region(self, region: int) -> None:
        """Kill a region's epoch coordinator.

        Unsealed (never-acknowledged) transactions abort; sealed batches
        are durable and will re-ship on recovery.  Peers stall on this
        region's missing epochs — strict consistency chooses blocking over
        divergence.
        """
        if region in self.crashed_regions:
            return
        self.crashed_regions.add(region)
        for record in self.epochs[region].abort_open():
            handle = self._handles.get(record.txn_id)
            if handle is not None and handle.status == "pending":
                handle.status = "aborted"
                handle.ack_us = self._now_us
                handle.reason = "region crashed before its epoch sealed"
        obs = self.regions[region].obs
        if obs is not None:
            obs.metrics.counter("geo.region_crashes").inc()
            obs.alerts.raise_alert(
                source="geo", severity="critical",
                message=f"region r{region} epoch coordinator crashed",
                t_us=obs.clock.now_us, key=f"geo.crash:r{region}")

    def recover_region(self, region: int,
                       now_us: Optional[float] = None) -> None:
        """Bring a crashed region back: seal the elapsed epochs (empty) and
        re-ship everything peers have not acknowledged."""
        if region not in self.crashed_regions:
            return
        self.crashed_regions.discard(region)
        now = now_us if now_us is not None else self._now_us
        manager = self.epochs[region]
        for batch in manager.seal_through(now):
            pass                       # sealed empty; queued just below
        for epoch in sorted(manager.sealed):
            for dst in range(self.num_regions):
                self._queue_ship(region, dst, epoch)
        # Peers' batches shipped while this region was down went pending;
        # nothing else to do — the next step retries them.
        obs = self.regions[region].obs
        if obs is not None:
            obs.alerts.raise_alert(
                source="geo", severity="info",
                message=f"region r{region} recovered",
                t_us=obs.clock.now_us, key=f"geo.recover:r{region}")

    def recover_all(self, now_us: Optional[float] = None) -> None:
        """Post-chaos sweep: heal links, revive regions, settle epochs."""
        if not self.enabled:
            return
        if self.faults is not None:
            self.faults.disarm_all()
        self.fabric.heal_all()
        for region in sorted(self.crashed_regions):
            self.recover_region(region, now_us=now_us)
        self.drain()

    # ------------------------------------------------------------------
    # tuning (the autonomous manager's lever)

    def set_epoch_interval(self, interval_us: float) -> float:
        """Retune the epoch length, anchored at the next global boundary.

        Every region rebases with identical arguments so epoch numbering
        never forks.  Clamped to the config's [min, max] band.
        """
        cfg = self.config
        interval_us = min(cfg.max_epoch_interval_us,
                          max(cfg.min_epoch_interval_us, interval_us))
        if not self.enabled or self.config.mode is not GeoMode.GEOGAUSS:
            return interval_us
        if interval_us != self.epochs[0].interval_us:
            rebase_epoch = max(m.last_sealed for m in self.epochs) + 1
            at_us = max(m.start_us_of(rebase_epoch) for m in self.epochs)
            for manager in self.epochs:
                manager.rebase(rebase_epoch, at_us, interval_us)
            for region in self.regions:
                if region.obs is not None:
                    region.obs.metrics.gauge("geo.epoch_interval_us").set(
                        interval_us)
        cfg.epoch_interval_us = interval_us
        return interval_us

    @property
    def epoch_interval_us(self) -> float:
        if self.enabled and self.config.mode is GeoMode.GEOGAUSS:
            return self.epochs[0].interval_us
        return self.config.epoch_interval_us

    def commit_latency_p95(self) -> Optional[float]:
        if not self.recent_latencies:
            return None
        from repro.wlm.driver import percentile

        return percentile(list(self.recent_latencies), 95.0)

    # ------------------------------------------------------------------
    # introspection (the sys.geo_* views)

    def handle(self, txn_id: Tuple[int, int]) -> Optional[GeoCommitHandle]:
        return self._handles.get(txn_id)

    def handles(self) -> List[GeoCommitHandle]:
        return [self._handles[k] for k in sorted(self._handles)]

    def certified_epoch(self, region: int) -> int:
        return self._certified[region]

    def epoch_digests(self, epoch: int) -> Dict[int, int]:
        return {row.region: row.digest for row in self._epoch_rows
                if row.epoch == epoch}

    def assert_converged(self) -> None:
        """Raise if any epoch certified by 2+ regions disagrees anywhere."""
        by_epoch: Dict[int, Dict[int, int]] = {}
        for row in self._epoch_rows:
            by_epoch.setdefault(row.epoch, {})[row.region] = row.digest
        for epoch, digests in sorted(by_epoch.items()):
            if len(set(digests.values())) > 1:
                raise AssertionError(
                    f"epoch {epoch} diverged across regions: {digests}")

    def region_rows(self) -> List[tuple]:
        """``sys.geo_regions`` rows."""
        rows = []
        hosted = self.shard_map.hosted_counts()
        for i, region in enumerate(self.regions):
            commits = aborts = 0
            for handle in self._handles.values():
                if handle.origin != i:
                    continue
                if handle.status == "committed":
                    commits += 1
                elif handle.status == "aborted":
                    aborts += 1
            rows.append((
                i, f"r{i}", i, region.num_dns, hosted.get(i, 0),
                self._certified[i] if self.config.mode is GeoMode.GEOGAUSS
                else -1,
                commits, aborts,
                self.epochs[i].open_count if self.epochs else 0,
                1 if i in self.crashed_regions else 0,
            ))
        return rows

    def epoch_rows(self) -> List[tuple]:
        """``sys.geo_epochs`` rows, ordered by (epoch, region)."""
        return [row.as_row() for row in sorted(
            self._epoch_rows, key=lambda r: (r.epoch, r.region))]

    def shard_rows(self) -> List[tuple]:
        """``sys.geo_shard_map`` rows."""
        return self.shard_map.rows()

    # ------------------------------------------------------------------
    # the naive global-2PC baseline

    def _commit_2pc(self, handle: GeoCommitHandle,
                    record: GeoTxnRecord) -> None:
        """Synchronous per-transaction cross-region 2PC.

        One WAN round trip to prepare every hosting region, one more to
        commit — per transaction.  The global lock table holds every
        written key for the full window; a writer overlapping a held lock
        aborts during its prepare round.
        """
        cfg = self.config
        submit = record.commit_ts
        involved: Set[int] = {record.origin}
        for op in record.ops:
            involved.update(self.hosting_regions_of(op.geo_slot))
        remote = any(r != record.origin for r in involved)
        round_trip = cfg.wan_rtt_us if remote else 0.0
        writer = (record.origin, record.session_id)
        conflicted = False
        for key in record.write_keys:
            held = self._locks.get(key)
            if held is not None and held[0] > submit and held[1] != writer:
                conflicted = True
                break
        if conflicted:
            handle.status = "aborted"
            handle.ack_us = submit + round_trip   # the prepare round says no
            handle.reason = "lock conflict during global prepare"
        else:
            ack = submit + 2 * round_trip
            for key in record.write_keys:
                self._locks[key] = (ack, writer)
            for region in sorted(involved):
                self._apply_2pc(region, record)
            handle.status = "committed"
            handle.ack_us = ack
        obs = self.regions[record.origin].obs
        latency = handle.latency_us
        self.recent_latencies.append(latency)
        if obs is not None:
            if handle.status == "committed":
                obs.metrics.counter("geo.commits").inc()
            else:
                obs.metrics.counter("geo.aborts").inc()
            obs.metrics.histogram("geo.commit_latency_us").observe(latency)

    def _apply_2pc(self, region: int, record: GeoTxnRecord) -> None:
        hosted = [op for op in record.ops
                  if op.geo_slot < 0
                  or self.shard_map.hosts(region, op.geo_slot)]
        if not hosted:
            return
        cluster = self.regions[region]
        session = cluster.session(track_costs=True,
                                  start_us=record.commit_ts)

        def body(txn):
            for op in hosted:
                if op.kind == "insert":
                    txn.insert(op.table, dict(op.values))
                elif op.kind == "update":
                    txn.update(op.table, op.key, dict(op.values))
                else:
                    txn.delete(op.table, op.key)

        session.run_transaction(body, multi_shard=True)

    # ------------------------------------------------------------------
    # internal: commit submission (both protocols)

    def _submit(self, handle: GeoCommitHandle, record: GeoTxnRecord,
                session_id) -> None:
        record.session_id = session_id    # threaded through to the waits
        self._handles[record.txn_id] = handle
        if self.config.mode is GeoMode.GLOBAL_2PC:
            self._commit_2pc(handle, record)
            return
        if record.origin in self.crashed_regions:
            handle.status = "aborted"
            handle.reason = "home region is down"
            handle.ack_us = record.commit_ts
            return
        handle.epoch = self.epochs[record.origin].submit(record)


class GeoSession:
    """One client connection, homed at one region of a :class:`GeoCluster`."""

    def __init__(self, geo: GeoCluster, region: int, start_us: float = 0.0):
        if not (0 <= region < geo.num_regions):
            raise ConfigError(f"region {region} out of range")
        self.geo = geo
        self.region = region
        #: The underlying home-region session: its cost context is this
        #: client's simulated clock, and local reads run through it at LAN
        #: cost exactly as a single-region client's would.
        self.local = geo.regions[region].session(track_costs=True,
                                                 start_us=start_us)
        #: The session's *pending* writes — submitted to an epoch but not
        #: yet certified: (table, key) -> (kind, data, handle).  The next
        #: transaction of this session reads through this overlay, so
        #: sequential transactions chain (read-your-pending-writes) even
        #: though the region's storage only reflects certified epochs.
        #: Entries evaporate once their handle resolves: committed writes
        #: are then in storage, aborted ones never existed.
        self._pending: Dict[Tuple[str, object],
                            Tuple[str, Optional[dict],
                                  Optional[GeoCommitHandle]]] = {}

    @property
    def now_us(self) -> float:
        return self.local.now_us

    def wait_until(self, t_us: float) -> float:
        """Advance this client's simulated clock — a driver's think time
        while the epoch machine runs in the background."""
        if self.local.ctx is not None:
            return self.local.ctx.wait_until(t_us)
        return self.now_us

    def begin(self) -> "GeoTransaction":
        return GeoTransaction(self)

    def run_transaction(self, body, multi_shard: bool = False
                        ) -> GeoCommitHandle:
        """Execute ``body`` and submit the commit; returns the handle.

        ``multi_shard`` is accepted for drop-in parity with
        :meth:`repro.cluster.mpp.Session.run_transaction`; geo transactions
        buffer their writes, so the distinction is resolved at apply time.
        """
        txn = self.begin()
        try:
            result = body(txn)
        except Exception:
            txn.abort()
            raise
        handle = txn.commit()
        handle.result = result
        return handle


class GeoTransaction:
    """Snapshot reads at the home region, buffered writes, epoch commit.

    Implements the same ``read``/``update``/``insert``/``delete`` surface
    as the intra-region transactions, so TPC-C-lite bodies run unchanged.
    Reads see certified state plus the transaction's own buffered writes;
    writes travel as concrete row images/deltas inside the epoch batch, so
    every hosting region applies byte-identical values.
    """

    def __init__(self, session: GeoSession):
        self.session = session
        self.geo = session.geo
        self.state = "running"
        self._ops: List[GeoWriteOp] = []
        #: Read-your-writes overlay: (table, key) -> (kind, data) with kind
        #: 'row' (full image), 'delta' (accumulated update columns), or
        #: 'del'.  Seeded from the session's still-pending writes so this
        #: transaction sees its predecessors; resolved entries are pruned
        #: (committed → now in storage, aborted → never happened).
        self._overlay: Dict[Tuple[str, object],
                            Tuple[str, Optional[dict]]] = {}
        self._written: Set[Tuple[str, object]] = set()
        for key, (kind, data, handle) in list(session._pending.items()):
            if handle is not None and handle.status != "pending":
                del session._pending[key]
                continue
            self._overlay[key] = (kind, data)
        #: Lazily-opened read transactions, one per region touched.
        self._read_txns: Dict[int, object] = {}
        self._start_us = session.now_us

    # -- plumbing ----------------------------------------------------------

    def _require_running(self) -> None:
        if self.state != "running":
            raise InvalidTransactionState(f"geo transaction is {self.state}")

    def _schema(self, table: str) -> TableSchema:
        return self.geo.regions[self.session.region].catalog.schema(table)

    def _read_txn(self, region: int):
        txn = self._read_txns.get(region)
        if txn is None:
            if region == self.session.region:
                txn = self.session.local.begin(multi_shard=True)
            else:
                txn = self.geo.regions[region].session(
                    track_costs=False).begin(multi_shard=True)
            self._read_txns[region] = txn
        return txn

    def _home_hosts(self, schema: TableSchema, geo_slot: int) -> bool:
        return geo_slot < 0 or self.geo.shard_map.hosts(
            self.session.region, geo_slot)

    def _slot_of_key(self, schema: TableSchema, key: object) -> int:
        if schema.distribution is Distribution.REPLICATION:
            return -1
        return self.geo.geo_slot_of(schema, schema.dist_value_of_key(key))

    # -- operations --------------------------------------------------------

    def read(self, table: str, key: object):
        self._require_running()
        entry = self._overlay.get((table, key))
        if entry is not None:
            kind, data = entry
            if kind == "del":
                return None
            if kind == "row":
                return dict(data)
            base = self._read_base(table, key)       # kind == 'delta'
            if base is None:
                return None
            merged = dict(base)
            merged.update(data)
            return merged
        return self._read_base(table, key)

    def _read_base(self, table: str, key: object):
        schema = self._schema(table)
        geo_slot = self._slot_of_key(schema, key)
        if self._home_hosts(schema, geo_slot):
            return self._read_txn(self.session.region).read(table, key)
        # Remote-shard read: routed to the slot's home region, one WAN
        # round trip charged to this client's clock.
        owner = self.geo.shard_map.home_region_of_slot(geo_slot)
        rtt = self.geo.config.wan_rtt_us
        local = self.session.local
        if local.ctx is not None:
            local.ctx.charge_local(rtt)
        obs = self.geo.regions[self.session.region].obs
        if obs is not None:
            obs.waits.record(WAIT_GEO_REMOTE_READ, rtt,
                             local.session_id)
            obs.metrics.counter("geo.remote_reads").inc()
        return self._read_txn(owner).read(table, key)

    def _buffer(self, op: GeoWriteOp) -> None:
        self._ops.append(op)
        key = (op.table, op.key)
        self._written.add(key)
        if op.kind == "insert":
            self._overlay[key] = ("row", dict(op.values))
        elif op.kind == "delete":
            self._overlay[key] = ("del", None)
        else:
            prior = self._overlay.get(key)
            if prior is not None and prior[0] in ("row", "delta"):
                merged = dict(prior[1])
                merged.update(op.values)
                self._overlay[key] = (prior[0], merged)
            else:
                self._overlay[key] = ("delta", dict(op.values))

    def insert(self, table: str, row: Dict[str, object]) -> None:
        self._require_running()
        schema = self._schema(table)
        coerced = schema.coerce_row(dict(row))
        key = coerced[schema.primary_key]
        if schema.distribution is Distribution.REPLICATION:
            geo_slot = -1
        else:
            geo_slot = self.geo.geo_slot_of(
                schema, coerced[schema.distribution_column])
        self._buffer(GeoWriteOp("insert", table, key, coerced, geo_slot))

    def update(self, table: str, key: object,
               values: Dict[str, object]) -> None:
        self._require_running()
        schema = self._schema(table)
        geo_slot = self._slot_of_key(schema, key)
        self._buffer(GeoWriteOp("update", table, key, dict(values), geo_slot))

    def delete(self, table: str, key: object) -> None:
        self._require_running()
        schema = self._schema(table)
        geo_slot = self._slot_of_key(schema, key)
        self._buffer(GeoWriteOp("delete", table, key, None, geo_slot))

    # -- completion --------------------------------------------------------

    def _close_reads(self) -> None:
        for txn in self._read_txns.values():
            txn.commit()               # read-only: releases the snapshots
        self._read_txns.clear()

    def commit(self) -> GeoCommitHandle:
        self._require_running()
        self.state = "committed"       # submitted; the handle carries fate
        self._close_reads()
        commit_ts = self.session.now_us
        manager = self.geo.epochs[self.session.region] \
            if self.geo.epochs else None
        if not self._ops:
            # Read-only: nothing to certify, acknowledged at LAN latency.
            txn_id = manager.next_txn_id() if manager is not None \
                else (self.session.region, 0)
            handle = GeoCommitHandle(
                txn_id=txn_id, origin=self.session.region, kind="read_only",
                submit_us=commit_ts, status="committed", ack_us=commit_ts)
            return handle
        txn_id = manager.next_txn_id()
        record = GeoTxnRecord(txn_id=txn_id, origin=self.session.region,
                              kind="write", commit_ts=commit_ts,
                              ops=self._ops)
        handle = GeoCommitHandle(txn_id=txn_id, origin=self.session.region,
                                 kind="write", submit_us=commit_ts)
        self.geo._submit(handle, record, self.session.local.session_id)
        # Publish this transaction's written keys into the session overlay
        # so the session's next transaction reads through them while the
        # epoch is in flight.
        for key in self._written:
            kind, data = self._overlay[key]
            self.session._pending[key] = (kind, data, handle)
        return handle

    def abort(self) -> None:
        if self.state != "running":
            return
        self.state = "aborted"
        for txn in self._read_txns.values():
            txn.abort()
        self._read_txns.clear()
        self._ops.clear()
        self._overlay.clear()
