"""The inter-region WAN: region endpoints over :class:`repro.net.Fabric`.

One endpoint per region (``"r0"``, ``"r1"``, …), full-mesh links carrying
the configured one-way WAN latency, every endpoint tagged with its region
so :meth:`~repro.net.fabric.Fabric.hop_us` answers the WAN/LAN question.
Epoch batches travel through :meth:`RegionFabric.ship`, which enforces
direction-aware partitions (a batch into a cut link raises, the caller's
durable resend queue takes over) and counts messages/bytes for the
``sys.geo_regions`` accounting.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.errors import NetworkError
from repro.net.fabric import Fabric


def region_endpoint(region: int) -> str:
    return f"r{region}"


class RegionFabric:
    """WAN connectivity between the regions of one :class:`GeoCluster`."""

    def __init__(self, num_regions: int, one_way_us: float,
                 intra_region_hop_us: float = 25.0):
        self.num_regions = int(num_regions)
        self.one_way_us = float(one_way_us)
        self.fabric = Fabric(intra_region_hop_us=intra_region_hop_us,
                             inter_region_hop_us=one_way_us)
        #: Batches delivered to each region, in arrival order:
        #: region -> [(src_region, payload)].
        self.inboxes: Dict[int, List[Tuple[int, object]]] = {
            r: [] for r in range(self.num_regions)}
        for r in range(self.num_regions):
            name = region_endpoint(r)
            self.fabric.register(name, self._make_handler(r))
            self.fabric.set_region(name, name)
        for a in range(self.num_regions):
            for b in range(a + 1, self.num_regions):
                self.fabric.connect(region_endpoint(a), region_endpoint(b),
                                    one_way_us)

    def _make_handler(self, region: int):
        def handler(src: str, payload: object):
            self.inboxes[region].append((int(src[1:]), payload))
            return None
        return handler

    # ------------------------------------------------------------------
    # connectivity

    def reachable(self, src: int, dst: int) -> bool:
        if src == dst:
            return True
        return self.fabric.reachable(region_endpoint(src),
                                     region_endpoint(dst))

    def partition(self, a: int, b: int, bidirectional: bool = True) -> None:
        """Cut the a→b WAN link (and b→a unless ``bidirectional=False``)."""
        self.fabric.disconnect(region_endpoint(a), region_endpoint(b),
                               bidirectional=bidirectional)

    def heal(self, a: int, b: int, bidirectional: bool = True) -> None:
        self.fabric.reconnect(region_endpoint(a), region_endpoint(b),
                              bidirectional=bidirectional)

    def heal_all(self) -> None:
        for a in range(self.num_regions):
            for b in range(self.num_regions):
                if a != b and not self.reachable(a, b):
                    self.fabric.reconnect(region_endpoint(a),
                                          region_endpoint(b),
                                          bidirectional=False)

    def one_way_between(self, src: int, dst: int) -> float:
        if src == dst:
            return 0.0
        return self.fabric.hop_us(region_endpoint(src), region_endpoint(dst))

    # ------------------------------------------------------------------
    # shipping

    def ship(self, src: int, dst: int, payload: object,
             size_bytes: int = 0) -> None:
        """Deliver one epoch batch dst-ward, or raise on a cut link."""
        if src == dst:
            self.inboxes[dst].append((src, payload))
            return
        self.fabric.send(region_endpoint(src), region_endpoint(dst), payload,
                         size_bytes=size_bytes)

    def try_ship(self, src: int, dst: int, payload: object,
                 size_bytes: int = 0) -> bool:
        try:
            self.ship(src, dst, payload, size_bytes=size_bytes)
        except NetworkError:
            return False
        return True

    def drain_inbox(self, region: int) -> List[Tuple[int, object]]:
        batch = self.inboxes[region]
        self.inboxes[region] = []
        return batch

    @property
    def messages_sent(self) -> int:
        return self.fabric.messages_sent

    @property
    def bytes_sent(self) -> int:
        return self.fabric.bytes_sent
