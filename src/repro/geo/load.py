"""Geo-aware TPC-C-lite loading: each region gets only what it hosts.

The single-cluster loader (:func:`repro.workloads.tpcc_lite.load_tpcc`)
populates every warehouse; under partial replication a region must hold
only the warehouses whose geo slot it hosts (plus the replicated ``item``
catalog, which every region stores in full).  Loading runs per region from
the same seed, so replicated rows — notably randomized item prices — are
byte-identical everywhere.
"""

from __future__ import annotations

from typing import List

from repro.common.rng import make_rng
from repro.workloads.tpcc_lite import (
    _CUSTOMERS_PER_DISTRICT,
    _DISTRICTS_PER_WAREHOUSE,
    _ITEMS,
    customer_key,
    district_key,
    stock_key,
    tpcc_schemas,
)


def warehouses_homed_at(geo, region: int, num_warehouses: int) -> List[int]:
    """Warehouses whose geo slot is *homed* at ``region`` — the natural
    home-warehouse set for clients attached there."""
    return [w for w in range(num_warehouses)
            if geo.shard_map.home_region_of_value(w) == region]


def warehouses_hosted_at(geo, region: int, num_warehouses: int) -> List[int]:
    """Warehouses ``region`` stores (home or subscriber)."""
    return [w for w in range(num_warehouses)
            if geo.shard_map.hosts_value(region, w)]


def load_tpcc_geo(geo, num_warehouses: int, seed: int = 7) -> None:
    """Create the TPC-C-lite tables on every region and load each region
    with the replicated ``item`` catalog plus its hosted warehouses only.

    Bulk load: runs outside cost tracking and outside the epoch pipeline,
    exactly as the single-cluster loader runs outside the GTM fast path.
    """
    for region_index, region in enumerate(geo.regions):
        # Fresh schema instances per region: each catalog owns its own.
        for schema in tpcc_schemas():
            region.create_table(schema)
        rng = make_rng(seed)
        session = region.session(track_costs=False)

        txn = session.begin(multi_shard=True)
        for i_id in range(_ITEMS):
            txn.insert("item", {"i_id": i_id, "i_name": f"item-{i_id}",
                                "i_price": round(rng.uniform(1.0, 100.0), 2)})
        txn.commit()

        for w_id in range(num_warehouses):
            if geo.enabled and not geo.shard_map.hosts_value(region_index,
                                                             w_id):
                continue
            txn = session.begin(multi_shard=True)
            txn.insert("warehouse", {"w_id": w_id, "w_ytd": 0.0,
                                     "w_name": f"wh-{w_id}"})
            for d_id in range(_DISTRICTS_PER_WAREHOUSE):
                txn.insert("district", {
                    "d_key": district_key(w_id, d_id), "w_id": w_id,
                    "d_id": d_id, "d_ytd": 0.0, "d_next_o_id": 1,
                })
                for c_id in range(_CUSTOMERS_PER_DISTRICT):
                    txn.insert("customer", {
                        "c_key": customer_key(w_id, d_id, c_id),
                        "w_id": w_id, "d_id": d_id, "c_id": c_id,
                        "c_balance": 0.0, "c_ytd_payment": 0.0,
                        "c_name": f"cust-{w_id}-{d_id}-{c_id}",
                    })
            for i_id in range(_ITEMS):
                txn.insert("stock", {
                    "s_key": stock_key(w_id, i_id), "w_id": w_id,
                    "i_id": i_id, "s_quantity": 1000, "s_ytd": 0,
                })
            txn.commit()
