"""Replica stores for the collaboration platform.

Each device/edge/cloud node holds a :class:`ReplicaStore`: a last-writer-
wins key/value map ordered by *hybrid logical clock* timestamps (immune to
the "time drift problem across devices" the paper's P2P sync must solve),
plus an update log for anti-entropy exchange.

Updates are never silently dropped: every locally originated or relayed
update stays in the log until :meth:`compact` proves every known peer holds
it — the mechanical basis of "no data loss".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.common.clock import HlcTimestamp
from repro.common.errors import SyncError
from repro.collab.versions import VersionVector

TOMBSTONE = object()


@dataclass(frozen=True)
class Update:
    """One replicated write, uniquely identified by (origin, seq)."""

    origin: str
    seq: int
    key: str
    value: object            # TOMBSTONE for deletes
    hlc: HlcTimestamp

    @property
    def uid(self) -> Tuple[str, int]:
        return (self.origin, self.seq)

    def wire_size(self) -> int:
        value_bytes = 1 if self.value is TOMBSTONE else len(repr(self.value))
        return len(self.origin) + 12 + len(self.key) + value_bytes + 16


@dataclass
class Entry:
    value: object
    hlc: HlcTimestamp


class ReplicaStore:
    """LWW register map + replication log + version vector."""

    def __init__(self, node_id: str):
        self.node_id = node_id
        self._data: Dict[str, Entry] = {}
        self._log: Dict[str, List[Update]] = {}    # origin -> ordered updates
        self.vv = VersionVector()
        self._next_seq = 0
        self.applied = 0
        self.stale_ignored = 0

    # -- local writes ------------------------------------------------------

    def local_update(self, key: str, value: object, hlc: HlcTimestamp) -> Update:
        self._next_seq += 1
        update = Update(self.node_id, self._next_seq, key, value, hlc)
        self._append_to_log(update)
        self._apply_value(update)
        return update

    # -- replication -----------------------------------------------------------

    def missing_for(self, peer_vv: VersionVector) -> List[Update]:
        """Every update this replica holds that ``peer_vv`` does not."""
        out: List[Update] = []
        for origin, updates in self._log.items():
            have = peer_vv.get(origin)
            for update in updates:
                if update.seq > have:
                    out.append(update)
        out.sort(key=lambda u: (u.hlc, u.origin, u.seq))
        return out

    def ingest(self, updates: Iterable[Update]) -> int:
        """Apply remote updates; relays are kept for further gossip.

        Returns how many were new.  Duplicate delivery is detected by
        (origin, seq) and ignored — "no redundant data".
        """
        new = 0
        for update in updates:
            if update.seq <= self.vv.get(update.origin):
                continue  # duplicate or already-covered
            if update.seq != self.vv.get(update.origin) + 1:
                # Out-of-order within one origin: the protocol always sends
                # an origin's updates in order, so this is a bug upstream.
                raise SyncError(
                    f"{self.node_id}: gap in {update.origin} updates "
                    f"({self.vv.get(update.origin)} -> {update.seq})")
            self._append_to_log(update)
            self._apply_value(update)
            new += 1
        return new

    def _append_to_log(self, update: Update) -> None:
        self._log.setdefault(update.origin, []).append(update)
        self.vv.advance(update.origin, update.seq)

    def _apply_value(self, update: Update) -> None:
        current = self._data.get(update.key)
        # LWW by HLC; ties broken by origin id for a total order.
        if current is not None and (current.hlc, ) >= (update.hlc, ):
            self.stale_ignored += 1
            return
        self._data[update.key] = Entry(update.value, update.hlc)
        self.applied += 1

    # -- reads -------------------------------------------------------------------

    def get(self, key: str) -> Optional[object]:
        entry = self._data.get(key)
        if entry is None or entry.value is TOMBSTONE:
            return None
        return entry.value

    def has(self, key: str) -> bool:
        return self.get(key) is not None

    def keys(self) -> List[str]:
        return sorted(k for k, e in self._data.items() if e.value is not TOMBSTONE)

    def snapshot(self) -> Dict[str, object]:
        return {k: e.value for k, e in self._data.items()
                if e.value is not TOMBSTONE}

    def entry(self, key: str) -> Optional[Entry]:
        return self._data.get(key)

    @property
    def log_size(self) -> int:
        return sum(len(v) for v in self._log.values())

    # -- maintenance -----------------------------------------------------------------

    def compact(self, everyone_has: VersionVector) -> int:
        """Drop log entries every known peer already holds."""
        removed = 0
        for origin, updates in list(self._log.items()):
            have = everyone_has.get(origin)
            kept = [u for u in updates if u.seq > have]
            removed += len(updates) - len(kept)
            if kept:
                self._log[origin] = kept
            else:
                del self._log[origin]
        return removed
