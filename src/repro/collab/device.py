"""Nodes of the collaboration platform: devices, edge servers, the cloud.

Every node follows the Fig. 13 stack: a communication endpoint (the
fabric), a distributed-data layer (the replica store + sync protocol) and a
small compute layer (downloadable user functions).  Devices have a broad
spectrum of capabilities ("Heterogeneous"): a storage budget models smart
sensors and watches; nodes over budget offload their oldest keys to a
configured *backing peer* (resource sharing — "smart watches ... can
benefit from other peer devices like smart phones").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.clock import DriftingClock, HybridLogicalClock, SimClock
from repro.common.errors import SyncError
from repro.collab.store import TOMBSTONE, ReplicaStore, Update
from repro.collab.versions import VersionVector


class NodeKind(enum.Enum):
    DEVICE = "device"
    EDGE = "edge"
    CLOUD = "cloud"


@dataclass
class Subscription:
    """A query-based event subscription ("Real-time" property)."""

    predicate: Callable[[str, object], bool]
    callback: Callable[[str, object], None]


UserFunction = Callable[["CollabNode", dict], object]


class CollabNode:
    """One participant in the distributed data collaboration platform."""

    def __init__(self, node_id: str, kind: NodeKind, truth: SimClock,
                 skew_us: float = 0.0, drift_ppm: float = 0.0,
                 storage_budget: Optional[int] = None):
        self.node_id = node_id
        self.kind = kind
        self.hlc = HybridLogicalClock(
            node_id, DriftingClock(truth, skew_us, drift_ppm))
        self.store = ReplicaStore(node_id)
        self.storage_budget = storage_budget
        self.backing_peer: Optional["CollabNode"] = None
        self._subscriptions: List[Subscription] = []
        self._functions: Dict[str, UserFunction] = {}
        # Keys whose value payload was evicted locally (resource sharing):
        # replication metadata stays intact, reads go to the backing peer.
        self._evicted: set = set()
        self._write_clock = 0
        self._last_written: Dict[str, int] = {}
        self.offloaded_keys: List[str] = []

    # -- data API (the "Ubiquitous" uniform interface) --------------------------

    def put(self, key: str, value: object) -> Update:
        update = self.store.local_update(key, value, self.hlc.now())
        self._evicted.discard(key)   # a fresh write re-materializes the key
        self._write_clock += 1
        self._last_written[key] = self._write_clock
        self._fire_subscriptions(key, value)
        self._enforce_budget()
        return update

    def get(self, key: str) -> Optional[object]:
        if key in self._evicted:
            # Transparent read-through to the peer holding offloaded data.
            if self.backing_peer is not None:
                return self.backing_peer.get(key)
            return None
        return self.store.get(key)

    def delete(self, key: str) -> Update:
        update = self.store.local_update(key, TOMBSTONE, self.hlc.now())
        self._fire_subscriptions(key, None)
        return update

    def keys(self) -> List[str]:
        return self.store.keys()

    # -- subscriptions --------------------------------------------------------------

    def subscribe(self, predicate: Callable[[str, object], bool],
                  callback: Callable[[str, object], None]) -> Subscription:
        subscription = Subscription(predicate, callback)
        self._subscriptions.append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        if subscription in self._subscriptions:
            self._subscriptions.remove(subscription)

    def _fire_subscriptions(self, key: str, value: object) -> None:
        for subscription in self._subscriptions:
            try:
                if subscription.predicate(key, value):
                    subscription.callback(key, value)
            except Exception:
                continue  # a broken subscriber must not break replication

    # -- replication hooks (called by the sync protocol) -----------------------------

    def digest(self) -> VersionVector:
        return self.store.vv.copy()

    def updates_for(self, peer_vv: VersionVector) -> List[Update]:
        return self.store.missing_for(peer_vv)

    def ingest(self, updates: List[Update]) -> int:
        before = {u.key for u in updates if u.seq > self.store.vv.get(u.origin)}
        # Merge every received timestamp into the local HLC so later local
        # writes causally dominate them, regardless of physical clock skew.
        for update in updates:
            self.hlc.observe(update.hlc)
        new = self.store.ingest(updates)
        for key in before:
            self._fire_subscriptions(key, self.store.get(key))
        self._enforce_budget()
        return new

    # -- compute layer (downloadable user functions) ----------------------------------

    def install_function(self, name: str, fn: UserFunction) -> None:
        """Install a user-defined function (possibly downloaded from a peer)."""
        self._functions[name] = fn

    def download_function(self, name: str, source: "CollabNode") -> None:
        """Fetch a function from the cloud or a neighboring node."""
        fn = source._functions.get(name)
        if fn is None:
            raise SyncError(f"{source.node_id} has no function {name!r}")
        self._functions[name] = fn

    def invoke(self, name: str, args: Optional[dict] = None) -> object:
        fn = self._functions.get(name)
        if fn is None:
            raise SyncError(f"{self.node_id} has no function {name!r}")
        return fn(self, args or {})

    def function_names(self) -> List[str]:
        return sorted(self._functions)

    # -- resource sharing ----------------------------------------------------------------

    def local_key_count(self) -> int:
        """Keys whose value payload is held locally (counts against budget)."""
        return sum(1 for k in self.store.keys() if k not in self._evicted)

    def _enforce_budget(self) -> None:
        """Evict value payloads beyond the budget.

        Eviction is strictly node-local: replication metadata (log, version
        vector) is untouched, so the protocol's no-loss/no-duplicate
        guarantees hold; reads of an evicted key go to the backing peer,
        which as a full replica holds (or will receive) the value.
        """
        if self.storage_budget is None:
            return
        resident = [k for k in self.store.keys() if k not in self._evicted]
        # Least-recently-written first (never-written = oldest of all).
        resident.sort(key=lambda k: (self._last_written.get(k, 0), k))
        while len(resident) > self.storage_budget:
            victim = resident.pop(0)
            self._evicted.add(victim)
            self.offloaded_keys.append(victim)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CollabNode({self.node_id!r}, {self.kind.value})"
