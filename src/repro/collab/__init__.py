"""Device-edge-cloud data collaboration platform (Sec. IV-B, Fig. 13)."""

from repro.collab.consistency import ConsistencyLevel, ConsistentSession
from repro.collab.device import CollabNode, NodeKind
from repro.collab.platform import Collection, CollabPlatform, SyncPolicy, collection
from repro.collab.store import ReplicaStore, Update
from repro.collab.versions import VersionVector

__all__ = ["CollabPlatform", "SyncPolicy", "Collection", "collection",
           "CollabNode", "NodeKind", "ReplicaStore", "Update", "VersionVector"]

__all__ += ["ConsistentSession", "ConsistencyLevel"]
