"""The distributed data collaboration platform (Fig. 13) and MBaaS on top.

Builds the device/edge/cloud topology over the simulated fabric with the
paper's latency ratios (Bluetooth/ad-hoc D2D "at least 10X faster" than
Internet-to-cloud), and provides:

* **P2P anti-entropy sync** — digest exchange, exact missing-update
  transfer (no loss, no duplicates), eventual consistency;
* **sync policies** — ``P2P`` (any reachable pair), ``CLOUD_ONLY`` (the
  current-MBaaS baseline: devices only sync through the cloud) and
  ``LEADER`` (a designated node, e.g. the home WiFi router, relays);
* an **MBaaS collection API** for application code.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.clock import SimClock
from repro.common.errors import ConfigError, NetworkError, SyncError
from repro.collab.device import CollabNode, NodeKind
from repro.collab.store import Update
from repro.collab.versions import VersionVector
from repro.net.fabric import Fabric
from repro.net.latency import CollabCostModel


class SyncPolicy(enum.Enum):
    P2P = "p2p"
    CLOUD_ONLY = "cloud_only"
    LEADER = "leader"


@dataclass
class SyncStats:
    sessions: int = 0
    updates_transferred: int = 0
    bytes_transferred: int = 0
    duplicates_avoided: int = 0

    def reset(self) -> None:
        self.sessions = 0
        self.updates_transferred = 0
        self.bytes_transferred = 0
        self.duplicates_avoided = 0


class CollabPlatform:
    """Topology + synchronization engine."""

    def __init__(self, cost: Optional[CollabCostModel] = None,
                 policy: SyncPolicy = SyncPolicy.P2P):
        self.cost = cost if cost is not None else CollabCostModel()
        self.policy = policy
        self.clock = SimClock()
        self.fabric = Fabric(self.clock)
        self.nodes: Dict[str, CollabNode] = {}
        self.leader_id: Optional[str] = None
        self.stats = SyncStats()

    # -- topology ---------------------------------------------------------

    def add_node(self, node_id: str, kind: NodeKind, skew_us: float = 0.0,
                 drift_ppm: float = 0.0,
                 storage_budget: Optional[int] = None) -> CollabNode:
        if node_id in self.nodes:
            raise ConfigError(f"node {node_id!r} already exists")
        node = CollabNode(node_id, kind, self.clock, skew_us, drift_ppm,
                          storage_budget)
        self.nodes[node_id] = node
        self.fabric.register(node_id, lambda src, msg: None)
        # Wire default links: everything reaches the cloud over the
        # Internet; devices reach edges at edge latency.
        for other in self.nodes.values():
            if other is node:
                continue
            latency = self._default_latency(node, other)
            if latency is not None:
                self.fabric.connect(node_id, other.node_id, latency)
        return node

    def _default_latency(self, a: CollabNode, b: CollabNode) -> Optional[float]:
        kinds = {a.kind, b.kind}
        if NodeKind.CLOUD in kinds:
            return self.cost.internet_rtt_us / 2
        if NodeKind.EDGE in kinds:
            return self.cost.edge_rtt_us / 2
        return None   # device-device proximity is explicit (ad-hoc range)

    def connect_nearby(self, a: str, b: str) -> None:
        """Put two devices in direct (Bluetooth / ad-hoc WLAN) range."""
        self.fabric.connect(a, b, self.cost.d2d_rtt_us / 2)

    def disconnect(self, a: str, b: str) -> None:
        self.fabric.disconnect(a, b)

    def reconnect(self, a: str, b: str) -> None:
        self.fabric.reconnect(a, b)

    def set_leader(self, node_id: str) -> None:
        if node_id not in self.nodes:
            raise ConfigError(f"unknown node {node_id!r}")
        self.leader_id = node_id

    def node(self, node_id: str) -> CollabNode:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise ConfigError(f"unknown node {node_id!r}") from None

    # -- one sync session ---------------------------------------------------------

    def sync_pair(self, a_id: str, b_id: str) -> Tuple[int, int]:
        """Bidirectional anti-entropy between two reachable nodes.

        Protocol: A sends its digest; B replies with exactly the updates A
        misses plus B's digest; A ingests, then sends exactly what B misses.
        Returns (updates A received, updates B received).
        """
        if not self.fabric.reachable(a_id, b_id):
            raise NetworkError(f"{b_id!r} not reachable from {a_id!r}")
        a, b = self.node(a_id), self.node(b_id)
        self.stats.sessions += 1

        digest_a = a.digest()
        self.fabric.send(a_id, b_id, ("digest", digest_a),
                         size_bytes=digest_a.wire_size())
        for_a = b.updates_for(digest_a)
        digest_b = b.digest()
        size = sum(u.wire_size() for u in for_a) + digest_b.wire_size()
        self.fabric.send(b_id, a_id, ("updates", for_a, digest_b),
                         size_bytes=size)
        got_a = a.ingest(for_a)
        self.stats.duplicates_avoided += len(for_a) - got_a

        for_b = a.updates_for(digest_b)
        size = sum(u.wire_size() for u in for_b)
        self.fabric.send(a_id, b_id, ("updates", for_b, a.digest()),
                         size_bytes=size)
        got_b = b.ingest(for_b)
        self.stats.duplicates_avoided += len(for_b) - got_b

        self.stats.updates_transferred += got_a + got_b
        self.stats.bytes_transferred += sum(u.wire_size() for u in for_a)
        self.stats.bytes_transferred += sum(u.wire_size() for u in for_b)
        return got_a, got_b

    # -- rounds / convergence ---------------------------------------------------------

    def _sync_pairs(self) -> List[Tuple[str, str]]:
        ids = sorted(self.nodes)
        if self.policy is SyncPolicy.CLOUD_ONLY:
            clouds = [n for n in ids if self.nodes[n].kind is NodeKind.CLOUD]
            if not clouds:
                raise ConfigError("CLOUD_ONLY policy needs a cloud node")
            cloud = clouds[0]
            return [(n, cloud) for n in ids if n != cloud]
        if self.policy is SyncPolicy.LEADER:
            if self.leader_id is None:
                raise ConfigError("LEADER policy needs set_leader()")
            return [(n, self.leader_id) for n in ids if n != self.leader_id]
        pairs = []
        for a, b in itertools.combinations(ids, 2):
            if self.fabric.reachable(a, b):
                pairs.append((a, b))
        return pairs

    def sync_round(self) -> int:
        """One round over the policy's pair list; returns updates moved."""
        moved = 0
        for a, b in self._sync_pairs():
            if self.fabric.reachable(a, b):
                got_a, got_b = self.sync_pair(a, b)
                moved += got_a + got_b
        return moved

    def converge(self, max_rounds: int = 32) -> int:
        """Sync rounds until no updates move; returns rounds used."""
        for round_no in range(1, max_rounds + 1):
            if self.sync_round() == 0:
                return round_no
        raise SyncError(f"no convergence within {max_rounds} rounds")

    def is_consistent(self) -> bool:
        """All nodes hold identical visible data."""
        snapshots = [n.store.snapshot() for n in self.nodes.values()]
        return all(s == snapshots[0] for s in snapshots[1:])

    def compact_logs(self) -> int:
        """Drop log entries every node already holds (safe GC)."""
        floor = None
        for node in self.nodes.values():
            if floor is None:
                floor = node.store.vv.copy()
            else:
                floor = _vv_min(floor, node.store.vv)
        if floor is None:
            return 0
        return sum(node.store.compact(floor) for node in self.nodes.values())


def _vv_min(a: VersionVector, b: VersionVector) -> VersionVector:
    nodes = {n for n, _ in a.items()} | {n for n, _ in b.items()}
    return VersionVector({n: min(a.get(n), b.get(n)) for n in nodes})


class Collection:
    """MBaaS-style named collection bound to one node."""

    def __init__(self, node: CollabNode, name: str):
        self._node = node
        self._prefix = f"{name}/"

    def put(self, doc_id: str, value: object) -> None:
        self._node.put(self._prefix + doc_id, value)

    def get(self, doc_id: str) -> Optional[object]:
        return self._node.get(self._prefix + doc_id)

    def delete(self, doc_id: str) -> None:
        self._node.delete(self._prefix + doc_id)

    def ids(self) -> List[str]:
        return [k[len(self._prefix):] for k in self._node.keys()
                if k.startswith(self._prefix)]

    def watch(self, callback) -> None:
        """Subscribe to changes of any document in the collection."""
        prefix = self._prefix
        self._node.subscribe(
            lambda key, _value: key.startswith(prefix),
            lambda key, value: callback(key[len(prefix):], value),
        )


def collection(node: CollabNode, name: str) -> Collection:
    return Collection(node, name)
