"""Version vectors for the P2P sync protocol.

Each node numbers its own updates 1, 2, 3, ...; a version vector maps node
id -> highest contiguous sequence known.  Comparing vectors tells a pair of
replicas *exactly* which updates the other is missing — that exactness is
what gives the paper's guarantee of "no data loss and no redundant data".
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Tuple


class VersionVector:
    def __init__(self, counters: Mapping[str, int] = ()):
        self._counters: Dict[str, int] = dict(counters)
        for node, seq in self._counters.items():
            if seq < 0:
                raise ValueError(f"negative sequence for {node!r}")

    def get(self, node: str) -> int:
        return self._counters.get(node, 0)

    def advance(self, node: str, seq: int) -> None:
        """Record that updates from ``node`` up to ``seq`` are held."""
        if seq > self._counters.get(node, 0):
            self._counters[node] = seq

    def merge(self, other: "VersionVector") -> None:
        for node, seq in other._counters.items():
            self.advance(node, seq)

    def dominates(self, other: "VersionVector") -> bool:
        """True if this vector has everything ``other`` has."""
        return all(self.get(node) >= seq for node, seq in other.items())

    def items(self) -> Iterator[Tuple[str, int]]:
        return iter(self._counters.items())

    def copy(self) -> "VersionVector":
        return VersionVector(self._counters)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counters)

    def wire_size(self) -> int:
        """Approximate serialized digest size in bytes."""
        return 4 + sum(len(node) + 8 for node in self._counters)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VersionVector):
            return NotImplemented
        mine = {n: s for n, s in self._counters.items() if s > 0}
        theirs = {n: s for n, s in other._counters.items() if s > 0}
        return mine == theirs

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{n}:{s}" for n, s in sorted(self._counters.items()))
        return f"VV({inner})"
