"""Configurable consistency policies (Sec. IV-B).

The paper's platform promises "data consistency guarantees with
configurable policies for various scenarios".  On top of the eventually
consistent replication core, this module implements the classic *session
guarantees* plus a strong mode:

* ``EVENTUAL`` — read whatever the local replica has (the base protocol),
* ``READ_YOUR_WRITES`` — a session's reads reflect its own earlier writes,
* ``MONOTONIC_READS`` — a session never observes an older state than one it
  already observed,
* ``BOUNDED_STALENESS`` — reads reflect every update the session knows to
  be older than a time bound,
* ``STRONG`` — reads are served by (or synchronized with) a designated
  leader, giving linearizable reads under a single-leader write pattern.

Guarantees are enforced by comparing version vectors; when a replica is
behind, the session triggers an on-demand sync (counted, so tests and
benchmarks can show the cost of stronger levels).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import SyncError
from repro.collab.platform import CollabPlatform
from repro.collab.versions import VersionVector


class ConsistencyLevel(enum.Enum):
    EVENTUAL = "eventual"
    READ_YOUR_WRITES = "read_your_writes"
    MONOTONIC_READS = "monotonic_reads"
    BOUNDED_STALENESS = "bounded_staleness"
    STRONG = "strong"


@dataclass
class SessionStats:
    reads: int = 0
    writes: int = 0
    syncs_triggered: int = 0


class ConsistentSession:
    """A client session carrying guarantee state across devices.

    The session may issue operations on *any* node (the paper's "accessing
    data anywhere and anytime ... on any user devices"); the guarantee
    follows the session, not the device.
    """

    def __init__(self, platform: CollabPlatform,
                 level: ConsistencyLevel = ConsistencyLevel.EVENTUAL,
                 staleness_bound_us: float = 0.0,
                 max_sync_rounds: int = 8):
        self.platform = platform
        self.level = level
        self.staleness_bound_us = staleness_bound_us
        self.max_sync_rounds = max_sync_rounds
        self._write_vv = VersionVector()   # updates this session produced
        self._read_vv = VersionVector()    # replica states this session saw
        #: HLC session token: the session's causal past.  Carried across
        #: devices so a later write on another device always dominates the
        #: session's earlier writes in last-writer-wins ordering ("writes
        #: follow writes/reads"), regardless of device clock skew.
        self._hlc_token = None
        self.stats = SessionStats()

    # -- operations -----------------------------------------------------------

    def write(self, node_id: str, key: str, value: object) -> None:
        if self.level is ConsistencyLevel.STRONG:
            self._require_leader()
            # Writes go to the leader so reads-at-leader are linearizable.
            target = self.platform.node(self.platform.leader_id)
        else:
            target = self.platform.node(node_id)
        if self._hlc_token is not None:
            # Hand the session's causal past to the device before stamping.
            target.hlc.observe(self._hlc_token)
        update = target.put(key, value)
        self._hlc_token = update.hlc
        self._write_vv.advance(update.origin, update.seq)
        self.stats.writes += 1

    def read(self, node_id: str, key: str) -> object:
        self.stats.reads += 1
        if self.level is ConsistencyLevel.STRONG:
            self._require_leader()
            node_id = self.platform.leader_id
        node = self.platform.node(node_id)
        required = self._required_vv()
        if required is not None:
            self._await(node_id, required)
        value = node.get(key)
        self._read_vv.merge(node.store.vv)
        entry = node.store.entry(key)
        if entry is not None and (self._hlc_token is None
                                  or entry.hlc > self._hlc_token):
            self._hlc_token = entry.hlc   # "writes follow reads"
        return value

    # -- internals ---------------------------------------------------------------

    def _required_vv(self) -> Optional[VersionVector]:
        if self.level is ConsistencyLevel.READ_YOUR_WRITES:
            return self._write_vv
        if self.level is ConsistencyLevel.MONOTONIC_READS:
            return self._read_vv
        if self.level is ConsistencyLevel.BOUNDED_STALENESS:
            # Everything the session has seen or written counts as "known";
            # the bound is enforced by syncing whenever the replica lags.
            combined = self._write_vv.copy()
            combined.merge(self._read_vv)
            return combined
        return None

    def _await(self, node_id: str, required: VersionVector) -> None:
        """Bring ``node_id`` up to ``required`` via on-demand syncs.

        First pulls from direct neighbors; if the updates live further
        away, escalates to platform-wide gossip rounds (multi-hop).
        """
        node = self.platform.node(node_id)
        for _ in range(self.max_sync_rounds):
            if node.store.vv.dominates(required):
                return
            self.stats.syncs_triggered += 1
            for peer in sorted(self.platform.fabric.neighbors(node_id)):
                try:
                    self.platform.sync_pair(node_id, peer)
                except SyncError:
                    continue
                if node.store.vv.dominates(required):
                    return
            # Direct neighbors were not enough: gossip one full round so
            # updates can travel multi-hop toward this replica.
            moved = self.platform.sync_round()
            if node.store.vv.dominates(required):
                return
            if moved == 0:
                break   # the network has converged and still lacks them
        raise SyncError(
            f"{self.level.value}: replica {node_id} cannot reach the "
            f"required state (partitioned from the writes?)")

    def _require_leader(self) -> None:
        if self.platform.leader_id is None:
            raise SyncError("STRONG consistency needs a leader; call "
                            "platform.set_leader() first")
