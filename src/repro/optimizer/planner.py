"""Physical planning: optimized logical plans -> executable operator trees.

Performs the classic lowering decisions:

* join implementation — hash join for equi-joins (keys extracted from the
  condition), nested loop otherwise;
* exchange placement — the MPP cost model decides whether the build side of
  a join is broadcast (small side) or both sides are redistributed on the
  join key, and a gather feeds the coordinator at the root;
* cardinality annotation — every operator carries the estimate that the
  learning optimizer later compares against ``actual_rows``.

With ``fragmented=True`` (the engine's default on a multi-DN cluster) the
planner additionally *cuts the plan at exchange boundaries* into per-DN
fragments, the shape of FI-MPPDB's (and Greenplum's slice/motion) execution:

* scans, filters, projections, per-DN limits and partial aggregates are
  pushed below the exchange and cloned once per data node, each clone
  reading only its shard;
* distribution is tracked as a :class:`~repro.exec.fragments.Locus`;
  co-located equi joins (both sides hash-partitioned on the join key) run
  inside the fragments with no data movement, small sides are broadcast
  into the probe side's fragments, and everything else is
  redistributed/gathered to the coordinator;
* aggregation over partitioned input splits into ``PPartialAgg`` (DN) and
  ``PFinalAgg`` (CN), so only group-grain rows cross the gather exchange;
* the top-level gather is elided for plans whose output is already on the
  coordinator or replicated (and entirely on single-DN clusters).

The cut is purely physical: logical ``step_text`` forms are untouched, so
learning-optimizer plan-store keys are identical with and without
fragmenting (per-DN clones share a ``capture_group`` and are summed back
into one observation per logical step).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.errors import PlanningError
from repro.exec.fragments import (
    REPLICATED,
    SINGLETON,
    FragmentBuilder,
    Locus,
    ScanBinding,
    compile_predicates,
)
from repro.exec.operators import (
    PDistinct,
    PUnionAll,
    PExchange,
    PFilter,
    PFinalAgg,
    PFragment,
    PHashAggregate,
    PHashJoin,
    PLimit,
    PNestedLoopJoin,
    PPartialAgg,
    PProject,
    PScan,
    PSort,
    PTableFunction,
    PValues,
    PhysicalOp,
)
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.expr import (
    BoundBinary,
    BoundColumn,
    BoundExpr,
    combine_conjuncts,
    conjuncts,
)
from repro.optimizer.folding import fold_plan
from repro.optimizer.joinorder import reorder_joins
from repro.optimizer.logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalTableFunction,
    LogicalUnion,
    LogicalValues,
)
from repro.optimizer.rules import push_down_filters, shift_columns
from repro.storage.table import Distribution

BROADCAST_THRESHOLD = 0.1

ScanSource = Callable[[], Iterable[tuple]]


class PhysicalPlanner:
    def __init__(
        self,
        estimator: CardinalityEstimator,
        scan_source: Callable[[str, LogicalScan], ScanSource],
        table_function_rows: Optional[
            Callable[[str, Tuple[object, ...]], ScanSource]] = None,
        insert_exchanges: bool = True,
        num_dns: int = 1,
        table_schema: Optional[Callable[[str], object]] = None,
        cost_model=None,
        fragmented: bool = False,
        dn_indices: Optional[Sequence[int]] = None,
    ):
        self.estimator = estimator
        self.scan_source = scan_source
        self.table_function_rows = table_function_rows
        self.insert_exchanges = insert_exchanges
        #: Active DN indices fragments are scheduled on.  With a shard map
        #: the membership can be sparse (retired indices absent) and grow
        #: (added DNs) — the engine passes ``cluster.dn_indices()`` so
        #: fragment fan-out follows live membership, not ``range(num_dns)``.
        if dn_indices is not None:
            self.dn_indices: Tuple[int, ...] = tuple(dn_indices)
            self.num_dns = max(1, len(self.dn_indices))
        else:
            self.num_dns = max(1, int(num_dns))
            self.dn_indices = tuple(range(self.num_dns))
        #: ``table -> TableSchema`` resolver; required for fragmenting
        #: (distribution metadata drives the cut).
        self.table_schema = table_schema
        #: :class:`repro.net.latency.MppCostModel` the exchanges charge.
        self.cost_model = cost_model
        self.fragmented = fragmented
        self._capture_seq = 0
        self._fragment_seq = 0

    # -- pipeline ---------------------------------------------------------

    def optimize(self, plan: LogicalPlan) -> LogicalPlan:
        plan = fold_plan(plan)
        plan = push_down_filters(plan)
        plan = reorder_joins(plan, self.estimator)
        return plan

    def plan(self, logical: LogicalPlan) -> PhysicalOp:
        optimized = self.optimize(logical)
        if self._fragmenting:
            if self.num_dns == 1:
                # Single data node: everything is local, no exchange at all.
                return self._lower(optimized)
            build, locus = self._lower_dist(optimized)
            if locus.is_partitioned:
                est = self.estimator.estimate(optimized)
                return self._exchange("gather", build, est)()
            # Output is already coordinator-side (or replicated, served from
            # one node): the top-level gather would move nothing.
            return build(None)
        root = self._lower(optimized)
        if self.insert_exchanges:
            root = PExchange("gather", root, estimated_rows=root.estimated_rows)
        return root

    @property
    def _fragmenting(self) -> bool:
        return (self.fragmented and self.insert_exchanges
                and self.table_schema is not None)

    def _next_capture_group(self) -> int:
        self._capture_seq += 1
        return self._capture_seq

    def _next_fragment_group(self) -> int:
        self._fragment_seq += 1
        return self._fragment_seq

    # -- lowering ------------------------------------------------------------

    def _lower(self, plan: LogicalPlan) -> PhysicalOp:
        est = self.estimator.estimate(plan)
        if isinstance(plan, LogicalScan):
            source = self.scan_source(plan.table, plan)
            rows = source.rows if isinstance(source, ScanBinding) else source
            return PScan(
                plan.table,
                rows,
                plan.schema,
                predicate=plan.predicate,
                estimated_rows=est,
                step_text=plan.step_text(),
                remote_sources=self._remote_sources(plan.table),
                cost_model=self.cost_model,
            )
        if isinstance(plan, LogicalTableFunction):
            if self.table_function_rows is None:
                raise PlanningError(
                    f"no table-function runtime for {plan.name!r}"
                )
            provider = self.table_function_rows(plan.name, plan.args)
            return PTableFunction(plan.name, provider, plan.schema,
                                  estimated_rows=est,
                                  step_text=plan.step_text())
        if isinstance(plan, LogicalValues):
            return PValues(plan.rows, plan.schema)
        if isinstance(plan, LogicalFilter):
            child = self._lower(plan.child)
            return PFilter(child, plan.predicate, estimated_rows=est,
                           step_text=plan.step_text())
        if isinstance(plan, LogicalProject):
            child = self._lower(plan.child)
            return PProject(child, plan.exprs, plan.schema, estimated_rows=est)
        if isinstance(plan, LogicalAggregate):
            child = self._lower(plan.child)
            return PHashAggregate(child, plan.group_exprs, plan.aggs,
                                  plan.schema, estimated_rows=est,
                                  step_text=plan.step_text())
        if isinstance(plan, LogicalDistinct):
            child = self._lower(plan.child)
            return PDistinct(child, estimated_rows=est,
                             step_text=plan.step_text())
        if isinstance(plan, LogicalSort):
            child = self._lower(plan.child)
            return PSort(child, plan.keys, estimated_rows=est)
        if isinstance(plan, LogicalLimit):
            child = self._lower(plan.child)
            return PLimit(child, plan.limit, estimated_rows=est,
                          step_text=plan.step_text())
        if isinstance(plan, LogicalUnion):
            children = [self._lower(b) for b in plan.branches]
            return PUnionAll(children, plan.schema, estimated_rows=est,
                             step_text=plan.step_text())
        if isinstance(plan, LogicalJoin):
            return self._lower_join(plan, est)
        raise PlanningError(f"cannot lower {type(plan).__name__}")

    def _lower_join(self, plan: LogicalJoin, est: float) -> PhysicalOp:
        left = self._lower(plan.left)
        right = self._lower(plan.right)
        n_left = len(plan.left.schema)
        equi, residual = _split_equi_keys(plan.condition, n_left)

        if self.insert_exchanges:
            left, right = self._place_exchanges(left, right, bool(equi))

        if equi and plan.kind in ("inner", "left"):
            left_keys = [pair[0] for pair in equi]
            right_keys = [shift_columns(pair[1], -n_left) for pair in equi]
            return PHashJoin(
                plan.kind, left, right, left_keys, right_keys,
                combine_conjuncts(residual), plan.schema,
                estimated_rows=est, step_text=plan.step_text(),
            )
        return PNestedLoopJoin(plan.kind, left, right, plan.condition,
                               plan.schema, estimated_rows=est,
                               step_text=plan.step_text())

    def _place_exchanges(self, left: PhysicalOp, right: PhysicalOp,
                         is_equi: bool) -> Tuple[PhysicalOp, PhysicalOp]:
        """MPP data movement: broadcast the small build side, else shuffle."""
        lrows = max(left.estimated_rows, 1.0)
        rrows = max(right.estimated_rows, 1.0)
        if rrows <= BROADCAST_THRESHOLD * lrows:
            return left, PExchange("broadcast", right, rrows)
        if lrows <= BROADCAST_THRESHOLD * rrows:
            return PExchange("broadcast", left, lrows), right
        if is_equi:
            return (PExchange("redistribute", left, lrows),
                    PExchange("redistribute", right, rrows))
        return left, PExchange("broadcast", right, rrows)

    # -- fragmented (distributed) lowering --------------------------------
    #
    # ``_lower_dist`` returns ``(build, locus)``: ``build(dn_index)``
    # freshly instantiates the subtree for one execution site (``None`` =
    # the gather-all/coordinator instantiation used by broadcasts), and
    # ``locus`` says where the output rows live.  Builders always construct
    # new operator instances, so a broadcast side re-instantiated inside
    # every fragment never shares row counters between sites.

    def _exchange(self, kind: str, builder: FragmentBuilder,
                  est: float) -> Callable[[], PExchange]:
        """A maker for ``kind`` exchange collecting one fragment per DN."""
        gid = self._next_fragment_group()

        def make() -> PExchange:
            frags = [PFragment(builder(i), dn_index=i, group_id=gid)
                     for i in self.dn_indices]
            return PExchange(kind, frags, estimated_rows=est,
                             cost_model=self.cost_model)

        return make

    def _materialize(self, builder: FragmentBuilder, locus: Locus,
                     est: float) -> Callable[[], PhysicalOp]:
        """A maker for this subplan's rows on the coordinator."""
        if locus.is_partitioned:
            return self._exchange("gather", builder, est)
        return lambda: builder(None)

    def _remote_sources(self, table: str) -> int:
        """Shards a coordinator-side scan of ``table`` drains over the wire.

        Zero when the planner lacks distribution metadata or the cluster is
        a single node (the scan is effectively local); one for replicated
        tables (any single copy serves the read); ``num_dns`` for
        hash-distributed tables (the coordinator must pull every shard).
        """
        if self.table_schema is None or self.num_dns <= 1:
            return 0
        schema_t = self.table_schema(table)
        if schema_t is None:
            return 0
        if schema_t.distribution is Distribution.REPLICATION:
            return 1
        return self.num_dns

    def _make_scan(self, plan: LogicalScan, est: float,
                   dn_index: Optional[int]) -> PScan:
        source = self.scan_source(plan.table, plan, dn_index)
        rows = source.rows if isinstance(source, ScanBinding) else source
        vector_store = getattr(source, "column_store", None)
        table_schema = getattr(source, "table_schema", None)
        vector_preds = None
        if vector_store is not None:
            vector_preds = compile_predicates(plan.predicate, plan.schema)
        return PScan(
            plan.table, rows, plan.schema,
            predicate=plan.predicate,
            estimated_rows=est,
            step_text=plan.step_text(),
            # Keep the store even when the predicate didn't compile to
            # vector specs: the row path gates on vector_preds as well, and
            # the batch executor can still scan the store and evaluate the
            # full predicate with its compiled batch expression.
            vector_store=vector_store,
            vector_preds=vector_preds,
            table_schema=table_schema,
            remote_sources=0 if dn_index is not None
            else self._remote_sources(plan.table),
            cost_model=self.cost_model,
        )

    def _lower_dist(self, plan: LogicalPlan) -> Tuple[FragmentBuilder, Locus]:
        est = self.estimator.estimate(plan)
        num = self.num_dns

        if isinstance(plan, LogicalScan):
            schema_t = self.table_schema(plan.table)
            if schema_t.distribution is Distribution.REPLICATION:
                def build(dn: Optional[int], plan=plan, est=est) -> PhysicalOp:
                    return self._make_scan(plan, est, dn)

                return build, REPLICATED
            key = ktype = None
            for info in plan.schema:
                if info.name == schema_t.distribution_column:
                    key = info.qualified.upper()
                    ktype = info.data_type
                    break
            gid = self._next_capture_group()
            per = est / num

            def build(dn: Optional[int], plan=plan, est=est, per=per,
                      gid=gid) -> PhysicalOp:
                if dn is None:
                    return self._make_scan(plan, est, None)
                scan = self._make_scan(plan, per, dn)
                scan.capture_group = gid
                return scan

            return build, Locus("hash", key, ktype)

        if isinstance(plan, LogicalTableFunction):
            if self.table_function_rows is None:
                raise PlanningError(
                    f"no table-function runtime for {plan.name!r}")

            def build(dn: Optional[int], plan=plan, est=est) -> PhysicalOp:
                provider = self.table_function_rows(plan.name, plan.args)
                return PTableFunction(plan.name, provider, plan.schema,
                                      estimated_rows=est,
                                      step_text=plan.step_text())

            return build, SINGLETON

        if isinstance(plan, LogicalValues):
            def build(dn: Optional[int], plan=plan) -> PhysicalOp:
                return PValues(plan.rows, plan.schema)

            return build, SINGLETON

        if isinstance(plan, LogicalFilter):
            cb, cl = self._lower_dist(plan.child)
            gid = self._next_capture_group()
            per = est / num

            def build(dn: Optional[int], plan=plan, est=est, per=per,
                      gid=gid, cb=cb, cl=cl) -> PhysicalOp:
                partitioned = dn is not None and cl.is_partitioned
                op = PFilter(cb(dn), plan.predicate,
                             estimated_rows=per if partitioned else est,
                             step_text=plan.step_text())
                if partitioned:
                    op.capture_group = gid
                return op

            return build, cl

        if isinstance(plan, LogicalProject):
            cb, cl = self._lower_dist(plan.child)
            locus = cl
            if cl.is_partitioned:
                key = self._project_key(plan, cl.key)
                locus = Locus("hash", key, cl.key_type if key else None)
            per = est / num

            def build(dn: Optional[int], plan=plan, est=est, per=per,
                      cb=cb, cl=cl) -> PhysicalOp:
                partitioned = dn is not None and cl.is_partitioned
                return PProject(cb(dn), plan.exprs, plan.schema,
                                estimated_rows=per if partitioned else est)

            return build, locus

        if isinstance(plan, LogicalAggregate):
            return self._lower_aggregate_dist(plan, est)

        if isinstance(plan, LogicalDistinct):
            cb, cl = self._lower_dist(plan.child)
            inner = self._materialize(cb, cl,
                                      self.estimator.estimate(plan.child))

            def build(dn: Optional[int], plan=plan, est=est,
                      inner=inner) -> PhysicalOp:
                return PDistinct(inner(), estimated_rows=est,
                                 step_text=plan.step_text())

            return build, SINGLETON

        if isinstance(plan, LogicalSort):
            cb, cl = self._lower_dist(plan.child)
            inner = self._materialize(cb, cl,
                                      self.estimator.estimate(plan.child))

            def build(dn: Optional[int], plan=plan, est=est,
                      inner=inner) -> PhysicalOp:
                return PSort(inner(), plan.keys, estimated_rows=est)

            return build, SINGLETON

        if isinstance(plan, LogicalLimit):
            cb, cl = self._lower_dist(plan.child)
            if cl.is_partitioned:
                # Per-DN limits below the gather bound what each node ships;
                # the coordinator's limit enforces the real cutoff.  The
                # per-DN clones carry no step_text — they are a physical
                # bound, not the logical LIMIT step.
                def pbuild(dn: Optional[int], plan=plan,
                           est=est, cb=cb) -> PhysicalOp:
                    return PLimit(cb(dn), plan.limit, estimated_rows=est)

                inner = self._exchange("gather", pbuild, est)
            else:
                inner = (lambda cb=cb: cb(None))

            def build(dn: Optional[int], plan=plan, est=est,
                      inner=inner) -> PhysicalOp:
                return PLimit(inner(), plan.limit, estimated_rows=est,
                              step_text=plan.step_text())

            return build, SINGLETON

        if isinstance(plan, LogicalUnion):
            makers = []
            for branch in plan.branches:
                bb, bl = self._lower_dist(branch)
                makers.append(self._materialize(
                    bb, bl, self.estimator.estimate(branch)))

            def build(dn: Optional[int], plan=plan, est=est,
                      makers=makers) -> PhysicalOp:
                return PUnionAll([m() for m in makers], plan.schema,
                                 estimated_rows=est,
                                 step_text=plan.step_text())

            return build, SINGLETON

        if isinstance(plan, LogicalJoin):
            return self._lower_join_dist(plan, est)

        raise PlanningError(f"cannot lower {type(plan).__name__}")

    @staticmethod
    def _project_key(plan: LogicalProject, key: Optional[str]) -> Optional[str]:
        """The partitioning key's name after projection, if it survives."""
        if key is None:
            return None
        for expr, info in zip(plan.exprs, plan.schema):
            if isinstance(expr, BoundColumn) and expr.text() == key:
                return info.qualified.upper()
        return None

    def _lower_aggregate_dist(self, plan: LogicalAggregate,
                              est: float) -> Tuple[FragmentBuilder, Locus]:
        cb, cl = self._lower_dist(plan.child)
        child_est = self.estimator.estimate(plan.child)
        if cl.is_partitioned and not any(a.distinct for a in plan.aggs):
            # Two-phase aggregation: partials on the data nodes, merge on
            # the coordinator.  Only group-grain rows cross the gather.
            per_est = min(est, max(child_est / self.num_dns, 1.0))
            exch_est = min(child_est, est * self.num_dns)

            def pbuild(dn: Optional[int], plan=plan,
                       per_est=per_est, cb=cb) -> PhysicalOp:
                return PPartialAgg(cb(dn), plan.group_exprs, plan.aggs,
                                   plan.schema, estimated_rows=per_est)

            exch = self._exchange("gather", pbuild, exch_est)

            def build(dn: Optional[int], plan=plan, est=est,
                      exch=exch) -> PhysicalOp:
                return PFinalAgg(exch(), len(plan.group_exprs), plan.aggs,
                                 plan.schema, estimated_rows=est,
                                 step_text=plan.step_text())

            return build, SINGLETON
        # DISTINCT aggregates (or non-partitioned input): single-phase on
        # the coordinator over whatever gather the child needs.
        inner = self._materialize(cb, cl, child_est)

        def build(dn: Optional[int], plan=plan, est=est,
                  inner=inner) -> PhysicalOp:
            return PHashAggregate(inner(), plan.group_exprs, plan.aggs,
                                  plan.schema, estimated_rows=est,
                                  step_text=plan.step_text())

        return build, SINGLETON

    @staticmethod
    def _colocated(ll: Locus, rl: Locus, left_keys, right_keys) -> bool:
        """Both sides hash-partitioned on a matching equi-key pair.

        Co-location means *same slot assignment*: every hash-distributed
        table routes value -> slot -> owning DN through the cluster's one
        ShardMap, so two sides keyed on equal values always share a node
        regardless of how slots are spread across members.  The type check
        guards the slot hash's type sensitivity: ints route by modulo,
        everything else by repr-hash, so a cross-type equi-join of
        identical values could still land in different slots.
        """
        if ll.kind != "hash" or rl.kind != "hash":
            return False
        if ll.key is None or rl.key is None or ll.key_type != rl.key_type:
            return False
        for lk, rk in zip(left_keys, right_keys):
            if (isinstance(lk, BoundColumn) and isinstance(rk, BoundColumn)
                    and lk.text() == ll.key and rk.text() == rl.key):
                return True
        return False

    def _lower_join_dist(self, plan: LogicalJoin,
                         est: float) -> Tuple[FragmentBuilder, Locus]:
        num = self.num_dns
        lb, ll = self._lower_dist(plan.left)
        rb, rl = self._lower_dist(plan.right)
        n_left = len(plan.left.schema)
        equi, residual = _split_equi_keys(plan.condition, n_left)
        lrows = max(self.estimator.estimate(plan.left), 1.0)
        rrows = max(self.estimator.estimate(plan.right), 1.0)
        hashable = bool(equi) and plan.kind in ("inner", "left")
        left_keys = [pair[0] for pair in equi]
        right_keys = [shift_columns(pair[1], -n_left) for pair in equi]
        residual_c = combine_conjuncts(residual)
        gid = self._next_capture_group()
        per_est = est / num

        def join_of(left: PhysicalOp, right: PhysicalOp, op_est: float,
                    group: bool = False) -> PhysicalOp:
            if hashable:
                op = PHashJoin(plan.kind, left, right, left_keys, right_keys,
                               residual_c, plan.schema, estimated_rows=op_est,
                               step_text=plan.step_text())
            else:
                op = PNestedLoopJoin(plan.kind, left, right, plan.condition,
                                     plan.schema, estimated_rows=op_est,
                                     step_text=plan.step_text())
            if group:
                op.capture_group = gid
            return op

        def per_dn_build(out_locus: Locus) -> Tuple[FragmentBuilder, Locus]:
            def build(dn: Optional[int]) -> PhysicalOp:
                if dn is None:
                    return join_of(lb(None), rb(None), est)
                return join_of(lb(dn), rb(dn), per_est, group=True)

            return build, out_locus

        # 1. Co-located equi join: both sides partitioned on the join key —
        #    matching rows are already on the same node, no exchange at all.
        if hashable and self._colocated(ll, rl, left_keys, right_keys):
            return per_dn_build(Locus("hash", ll.key, ll.key_type))

        # 2. A replicated side joins in place on every node.  (A replicated
        #    *left* side of a LEFT join may not run per-DN: unmatched left
        #    rows would be emitted once per node.)
        if (ll.kind == "hash" and rl.kind == "replicated"
                and plan.kind in ("inner", "left", "cross")):
            return per_dn_build(Locus("hash", ll.key, ll.key_type))
        if (ll.kind == "replicated" and rl.kind == "hash"
                and plan.kind in ("inner", "cross")):
            return per_dn_build(Locus("hash", rl.key, rl.key_type))
        if ll.kind == "replicated" and rl.kind == "replicated":
            def build(dn: Optional[int]) -> PhysicalOp:
                return join_of(lb(dn), rb(dn), est)

            return build, REPLICATED

        # 3. Broadcast a small build side into the probe side's fragments
        #    (also the only per-DN option for non-equi conditions).
        if (ll.kind == "hash" and plan.kind in ("inner", "left", "cross")
                and (rrows <= BROADCAST_THRESHOLD * lrows or not equi)):
            def build(dn: Optional[int]) -> PhysicalOp:
                if dn is None:
                    return join_of(lb(None), rb(None), est)
                bcast = PExchange("broadcast", rb(None),
                                  estimated_rows=rrows,
                                  cost_model=self.cost_model)
                return join_of(lb(dn), bcast, per_est, group=True)

            return build, Locus("hash", ll.key, ll.key_type)

        # 4. Mirrored: broadcast a small left side (inner joins only — the
        #    broadcast copy would duplicate LEFT-join null padding).
        if (rl.kind == "hash" and plan.kind in ("inner", "cross")
                and lrows <= BROADCAST_THRESHOLD * rrows):
            def build(dn: Optional[int]) -> PhysicalOp:
                if dn is None:
                    return join_of(lb(None), rb(None), est)
                bcast = PExchange("broadcast", lb(None),
                                  estimated_rows=lrows,
                                  cost_model=self.cost_model)
                return join_of(bcast, rb(dn), per_est, group=True)

            return build, Locus("hash", rl.key, rl.key_type)

        # 5. Comparable equi sides: redistribute both out of their
        #    fragments and join above the exchanges.
        if equi and ll.kind == "hash" and rl.kind == "hash":
            lmk = self._exchange("redistribute", lb, lrows)
            rmk = self._exchange("redistribute", rb, rrows)

            def build(dn: Optional[int]) -> PhysicalOp:
                return join_of(lmk(), rmk(), est)

            return build, SINGLETON

        # 6. Fallback: materialize both sides on the coordinator.
        lmk = self._materialize(lb, ll, lrows)
        rmk = self._materialize(rb, rl, rrows)

        def build(dn: Optional[int]) -> PhysicalOp:
            return join_of(lmk(), rmk(), est)

        return build, SINGLETON


def _split_equi_keys(condition: Optional[BoundExpr], n_left: int):
    """Split a join condition into equi-key pairs and residual factors.

    Returns ``(pairs, residual)`` where each pair is (left_expr, right_expr)
    with the right expression still indexed in combined-row space.
    """
    pairs: List[Tuple[BoundExpr, BoundExpr]] = []
    residual: List[BoundExpr] = []
    for factor in conjuncts(condition):
        if isinstance(factor, BoundBinary) and factor.op == "=":
            left_refs = set(factor.left.references())
            right_refs = set(factor.right.references())
            if (left_refs and right_refs
                    and all(i < n_left for i in left_refs)
                    and all(i >= n_left for i in right_refs)):
                pairs.append((factor.left, factor.right))
                continue
            if (left_refs and right_refs
                    and all(i >= n_left for i in left_refs)
                    and all(i < n_left for i in right_refs)):
                pairs.append((factor.right, factor.left))
                continue
        residual.append(factor)
    return pairs, residual
