"""Physical planning: optimized logical plans -> executable operator trees.

Performs the classic lowering decisions:

* join implementation — hash join for equi-joins (keys extracted from the
  condition), nested loop otherwise;
* exchange placement — the MPP cost model decides whether the build side of
  a join is broadcast (small side) or both sides are redistributed on the
  join key, and a gather feeds the coordinator at the root;
* cardinality annotation — every operator carries the estimate that the
  learning optimizer later compares against ``actual_rows``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.common.errors import PlanningError
from repro.exec.operators import (
    PDistinct,
    PUnionAll,
    PExchange,
    PFilter,
    PHashAggregate,
    PHashJoin,
    PLimit,
    PNestedLoopJoin,
    PProject,
    PScan,
    PSort,
    PTableFunction,
    PValues,
    PhysicalOp,
)
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.expr import (
    BoundBinary,
    BoundColumn,
    BoundExpr,
    combine_conjuncts,
    conjuncts,
)
from repro.optimizer.folding import fold_plan
from repro.optimizer.joinorder import reorder_joins
from repro.optimizer.logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalTableFunction,
    LogicalUnion,
    LogicalValues,
)
from repro.optimizer.rules import push_down_filters, shift_columns

BROADCAST_THRESHOLD = 0.1

ScanSource = Callable[[], Iterable[tuple]]


class PhysicalPlanner:
    def __init__(
        self,
        estimator: CardinalityEstimator,
        scan_source: Callable[[str, LogicalScan], ScanSource],
        table_function_rows: Optional[
            Callable[[str, Tuple[object, ...]], ScanSource]] = None,
        insert_exchanges: bool = True,
    ):
        self.estimator = estimator
        self.scan_source = scan_source
        self.table_function_rows = table_function_rows
        self.insert_exchanges = insert_exchanges

    # -- pipeline ---------------------------------------------------------

    def optimize(self, plan: LogicalPlan) -> LogicalPlan:
        plan = fold_plan(plan)
        plan = push_down_filters(plan)
        plan = reorder_joins(plan, self.estimator)
        return plan

    def plan(self, logical: LogicalPlan) -> PhysicalOp:
        optimized = self.optimize(logical)
        root = self._lower(optimized)
        if self.insert_exchanges:
            root = PExchange("gather", root, estimated_rows=root.estimated_rows)
        return root

    # -- lowering ------------------------------------------------------------

    def _lower(self, plan: LogicalPlan) -> PhysicalOp:
        est = self.estimator.estimate(plan)
        if isinstance(plan, LogicalScan):
            return PScan(
                plan.table,
                self.scan_source(plan.table, plan),
                plan.schema,
                predicate=plan.predicate,
                estimated_rows=est,
                step_text=plan.step_text(),
            )
        if isinstance(plan, LogicalTableFunction):
            if self.table_function_rows is None:
                raise PlanningError(
                    f"no table-function runtime for {plan.name!r}"
                )
            provider = self.table_function_rows(plan.name, plan.args)
            return PTableFunction(plan.name, provider, plan.schema,
                                  estimated_rows=est,
                                  step_text=plan.step_text())
        if isinstance(plan, LogicalValues):
            return PValues(plan.rows, plan.schema)
        if isinstance(plan, LogicalFilter):
            child = self._lower(plan.child)
            return PFilter(child, plan.predicate, estimated_rows=est,
                           step_text=plan.step_text())
        if isinstance(plan, LogicalProject):
            child = self._lower(plan.child)
            return PProject(child, plan.exprs, plan.schema, estimated_rows=est)
        if isinstance(plan, LogicalAggregate):
            child = self._lower(plan.child)
            return PHashAggregate(child, plan.group_exprs, plan.aggs,
                                  plan.schema, estimated_rows=est,
                                  step_text=plan.step_text())
        if isinstance(plan, LogicalDistinct):
            child = self._lower(plan.child)
            return PDistinct(child, estimated_rows=est,
                             step_text=plan.step_text())
        if isinstance(plan, LogicalSort):
            child = self._lower(plan.child)
            return PSort(child, plan.keys, estimated_rows=est)
        if isinstance(plan, LogicalLimit):
            child = self._lower(plan.child)
            return PLimit(child, plan.limit, estimated_rows=est,
                          step_text=plan.step_text())
        if isinstance(plan, LogicalUnion):
            children = [self._lower(b) for b in plan.branches]
            return PUnionAll(children, plan.schema, estimated_rows=est,
                             step_text=plan.step_text())
        if isinstance(plan, LogicalJoin):
            return self._lower_join(plan, est)
        raise PlanningError(f"cannot lower {type(plan).__name__}")

    def _lower_join(self, plan: LogicalJoin, est: float) -> PhysicalOp:
        left = self._lower(plan.left)
        right = self._lower(plan.right)
        n_left = len(plan.left.schema)
        equi, residual = _split_equi_keys(plan.condition, n_left)

        if self.insert_exchanges:
            left, right = self._place_exchanges(left, right, bool(equi))

        if equi and plan.kind in ("inner", "left"):
            left_keys = [pair[0] for pair in equi]
            right_keys = [shift_columns(pair[1], -n_left) for pair in equi]
            return PHashJoin(
                plan.kind, left, right, left_keys, right_keys,
                combine_conjuncts(residual), plan.schema,
                estimated_rows=est, step_text=plan.step_text(),
            )
        return PNestedLoopJoin(plan.kind, left, right, plan.condition,
                               plan.schema, estimated_rows=est,
                               step_text=plan.step_text())

    def _place_exchanges(self, left: PhysicalOp, right: PhysicalOp,
                         is_equi: bool) -> Tuple[PhysicalOp, PhysicalOp]:
        """MPP data movement: broadcast the small build side, else shuffle."""
        lrows = max(left.estimated_rows, 1.0)
        rrows = max(right.estimated_rows, 1.0)
        if rrows <= BROADCAST_THRESHOLD * lrows:
            return left, PExchange("broadcast", right, rrows)
        if lrows <= BROADCAST_THRESHOLD * rrows:
            return PExchange("broadcast", left, lrows), right
        if is_equi:
            return (PExchange("redistribute", left, lrows),
                    PExchange("redistribute", right, rrows))
        return left, PExchange("broadcast", right, rrows)


def _split_equi_keys(condition: Optional[BoundExpr], n_left: int):
    """Split a join condition into equi-key pairs and residual factors.

    Returns ``(pairs, residual)`` where each pair is (left_expr, right_expr)
    with the right expression still indexed in combined-row space.
    """
    pairs: List[Tuple[BoundExpr, BoundExpr]] = []
    residual: List[BoundExpr] = []
    for factor in conjuncts(condition):
        if isinstance(factor, BoundBinary) and factor.op == "=":
            left_refs = set(factor.left.references())
            right_refs = set(factor.right.references())
            if (left_refs and right_refs
                    and all(i < n_left for i in left_refs)
                    and all(i >= n_left for i in right_refs)):
                pairs.append((factor.left, factor.right))
                continue
            if (left_refs and right_refs
                    and all(i >= n_left for i in left_refs)
                    and all(i < n_left for i in right_refs)):
                pairs.append((factor.right, factor.left))
                continue
        residual.append(factor)
    return pairs, residual
