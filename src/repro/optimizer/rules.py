"""Rewrite rules: column remapping, predicate pushdown.

The MPP optimizer's rewrite engine (Sec. II-C mentions "establishing a query
rewrite engine") — here, the two rewrites that matter for the reproduced
experiments: pushing filters into scans (so canonical SCAN steps carry their
predicates, as in Table I) and below joins (so join ordering sees minimal
inputs).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.optimizer.expr import (
    BoundBinary,
    BoundCase,
    BoundColumn,
    BoundExpr,
    BoundInList,
    BoundIsNull,
    BoundScalarCall,
    BoundUnary,
    combine_conjuncts,
    conjuncts,
)
from repro.optimizer.logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalUnion,
)


def remap_columns(expr: BoundExpr, mapping: Dict[int, int]) -> BoundExpr:
    """Rebuild ``expr`` with column indexes translated through ``mapping``."""
    if isinstance(expr, BoundColumn):
        return BoundColumn(mapping[expr.index], expr.qualified_name, expr.data_type)
    if isinstance(expr, BoundBinary):
        return BoundBinary(expr.op, remap_columns(expr.left, mapping),
                           remap_columns(expr.right, mapping), expr.data_type)
    if isinstance(expr, BoundUnary):
        return BoundUnary(expr.op, remap_columns(expr.operand, mapping),
                          expr.data_type)
    if isinstance(expr, BoundIsNull):
        return BoundIsNull(remap_columns(expr.operand, mapping), expr.negated)
    if isinstance(expr, BoundInList):
        return BoundInList(remap_columns(expr.needle, mapping),
                           tuple(remap_columns(i, mapping) for i in expr.items),
                           expr.negated)
    if isinstance(expr, BoundCase):
        whens = tuple((remap_columns(c, mapping), remap_columns(r, mapping))
                      for c, r in expr.whens)
        default = (remap_columns(expr.default, mapping)
                   if expr.default is not None else None)
        return BoundCase(whens, default, expr.data_type)
    if isinstance(expr, BoundScalarCall):
        return BoundScalarCall(expr.name,
                               tuple(remap_columns(a, mapping) for a in expr.args),
                               expr.fn, expr.data_type)
    return expr  # constants


def shift_columns(expr: BoundExpr, delta: int) -> BoundExpr:
    """Shift every column index in ``expr`` by ``delta``."""
    mapping = {i: i + delta for i in set(expr.references())}
    return remap_columns(expr, mapping)


def push_down_filters(plan: LogicalPlan) -> LogicalPlan:
    """Recursively push filter conjuncts toward the scans."""
    if isinstance(plan, LogicalFilter):
        child = push_down_filters(plan.child)
        return _push_predicate(child, conjuncts(plan.predicate))
    # Rebuild interior nodes over optimized children.
    if isinstance(plan, LogicalScan):
        return plan
    if isinstance(plan, LogicalJoin):
        left = push_down_filters(plan.left)
        right = push_down_filters(plan.right)
        return LogicalJoin(plan.kind, left, right, plan.condition,
                           schema=plan.schema)
    if isinstance(plan, LogicalProject):
        return LogicalProject(push_down_filters(plan.child), plan.exprs,
                              schema=plan.schema)
    if isinstance(plan, LogicalAggregate):
        return LogicalAggregate(push_down_filters(plan.child), plan.group_exprs,
                                plan.aggs, schema=plan.schema)
    if isinstance(plan, LogicalSort):
        return LogicalSort(push_down_filters(plan.child), plan.keys,
                           schema=plan.schema)
    if isinstance(plan, LogicalLimit):
        return LogicalLimit(push_down_filters(plan.child), plan.limit,
                            schema=plan.schema)
    if isinstance(plan, LogicalDistinct):
        return LogicalDistinct(push_down_filters(plan.child), schema=plan.schema)
    if isinstance(plan, LogicalUnion):
        return LogicalUnion([push_down_filters(b) for b in plan.branches],
                            schema=plan.schema)
    return plan


def _push_predicate(child: LogicalPlan, factors: List[BoundExpr]) -> LogicalPlan:
    """Push conjuncts into ``child`` as deep as legal; wrap the rest."""
    if not factors:
        return child
    if isinstance(child, LogicalScan):
        merged = conjuncts(child.predicate) + factors
        return LogicalScan(child.table, schema=child.schema,
                           predicate=combine_conjuncts(merged))
    if isinstance(child, LogicalFilter):
        return _push_predicate(child.child, conjuncts(child.predicate) + factors)
    if isinstance(child, LogicalJoin):
        n_left = len(child.left.schema)
        left_factors: List[BoundExpr] = []
        right_factors: List[BoundExpr] = []
        residual: List[BoundExpr] = []
        for factor in factors:
            refs = set(factor.references())
            if refs and all(i < n_left for i in refs):
                left_factors.append(factor)
            elif refs and all(i >= n_left for i in refs):
                right_factors.append(factor)
            else:
                residual.append(factor)
        if child.kind == "left":
            # Right-side and cross-side conjuncts cannot move below an outer
            # join without changing NULL-extension semantics.
            residual.extend(right_factors)
            right_factors = []
        left = _push_predicate(child.left, left_factors)
        right = _push_predicate(
            child.right, [shift_columns(f, -n_left) for f in right_factors])
        condition = child.condition
        kind = child.kind
        if residual and kind in ("inner", "cross"):
            merged = conjuncts(condition) + residual
            condition = combine_conjuncts(merged)
            residual = []
            if kind == "cross" and condition is not None:
                kind = "inner"
        new_join = LogicalJoin(kind, left, right, condition, schema=child.schema)
        if residual:
            return LogicalFilter(new_join, combine_conjuncts(residual),
                                 schema=new_join.schema)
        return new_join
    rebuilt = push_down_filters(child)
    predicate = combine_conjuncts(factors)
    return LogicalFilter(rebuilt, predicate, schema=rebuilt.schema)
