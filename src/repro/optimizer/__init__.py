"""Cost-based optimizer: logical plans, statistics, join ordering, lowering."""

from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.planner import PhysicalPlanner
from repro.optimizer.stats import StatsManager, TableStats, analyze_rows

__all__ = ["CardinalityEstimator", "PhysicalPlanner", "StatsManager",
           "TableStats", "analyze_rows"]
