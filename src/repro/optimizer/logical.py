"""Logical query plans.

The binder produces these; the optimizer estimates cardinalities on them,
reorders joins, and lowers them to physical operators.  Every node carries a
*schema* — the ordered list of output columns with their qualified names —
and can render the paper's canonical *logical step text* (prefix expressions
over logical operators; Table I) used by the learning optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.optimizer.expr import BoundExpr
from repro.storage.types import DataType


@dataclass(frozen=True)
class ColumnInfo:
    """One output column of a plan node.

    ``qualifier`` is the binding name used for reference resolution (table
    alias / CTE name); ``canonical`` is the stable fully-qualified name used
    in canonical step texts, so aliasing does not fragment the plan store.
    """

    name: str                       # bare column name (or alias)
    qualifier: Optional[str]        # binding name it came from, if any
    data_type: Optional[DataType] = None
    canonical: Optional[str] = None  # e.g. "olap.t1.b1"

    @property
    def qualified(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


Schema = List[ColumnInfo]


class LogicalPlan:
    """Base class for logical plan nodes."""

    schema: Schema

    def children(self) -> Sequence["LogicalPlan"]:
        return ()

    def step_text(self) -> str:
        """Canonical prefix-form step definition (the paper's Table I)."""
        raise NotImplementedError

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [pad + self.describe()]
        for child in self.children():
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        return type(self).__name__


@dataclass
class LogicalScan(LogicalPlan):
    table: str
    schema: Schema = field(default_factory=list)
    predicate: Optional[BoundExpr] = None    # pushed-down filter

    def step_text(self) -> str:
        if self.predicate is not None:
            return f"SCAN({self.table.upper()}, PREDICATE({self.predicate.text()}))"
        return f"SCAN({self.table.upper()})"

    def describe(self) -> str:
        if self.predicate is not None:
            return f"Scan {self.table} [{self.predicate.text()}]"
        return f"Scan {self.table}"


@dataclass
class LogicalTableFunction(LogicalPlan):
    """A multi-model table function (gtimeseries / ggraph / gspatial)."""

    name: str
    args: Tuple[object, ...]
    schema: Schema = field(default_factory=list)
    rows_hint: int = 100

    def step_text(self) -> str:
        rendered = ",".join(repr(a).upper() for a in self.args)
        return f"TFUNC({self.name.upper()}({rendered}))"

    def describe(self) -> str:
        return f"TableFunction {self.name}{self.args!r}"


@dataclass
class LogicalValues(LogicalPlan):
    rows: List[tuple]
    schema: Schema = field(default_factory=list)

    def step_text(self) -> str:
        return f"VALUES({len(self.rows)})"

    def describe(self) -> str:
        return f"Values [{len(self.rows)} rows]"


@dataclass
class LogicalFilter(LogicalPlan):
    child: LogicalPlan
    predicate: BoundExpr
    schema: Schema = field(default_factory=list)

    def children(self) -> Sequence[LogicalPlan]:
        return (self.child,)

    def step_text(self) -> str:
        return f"FILTER({self.child.step_text()}, PREDICATE({self.predicate.text()}))"

    def describe(self) -> str:
        return f"Filter [{self.predicate.text()}]"


@dataclass
class LogicalProject(LogicalPlan):
    child: LogicalPlan
    exprs: List[BoundExpr]
    schema: Schema = field(default_factory=list)

    def children(self) -> Sequence[LogicalPlan]:
        return (self.child,)

    def step_text(self) -> str:
        # Projection does not change cardinality; the canonical step passes
        # through to the child so equivalent queries share store entries.
        return self.child.step_text()

    def describe(self) -> str:
        return "Project [" + ", ".join(e.text() for e in self.exprs) + "]"


@dataclass
class LogicalJoin(LogicalPlan):
    kind: str                     # 'inner', 'left', 'cross'
    left: LogicalPlan
    right: LogicalPlan
    condition: Optional[BoundExpr] = None
    schema: Schema = field(default_factory=list)

    def children(self) -> Sequence[LogicalPlan]:
        return (self.left, self.right)

    def step_text(self) -> str:
        # Join children are ordered lexicographically so commuted joins
        # share one canonical form (the paper: "we apply some order ... on
        # join children").
        left, right = self.left.step_text(), self.right.step_text()
        if right < left:
            left, right = right, left
        pred = (f", PREDICATE({self.condition.text()})"
                if self.condition is not None else "")
        return f"JOIN({left}, {right}{pred})"

    def describe(self) -> str:
        cond = f" on {self.condition.text()}" if self.condition is not None else ""
        return f"Join {self.kind}{cond}"


@dataclass(frozen=True)
class AggSpec:
    """One aggregate computation: func(arg) with optional DISTINCT."""

    func: str                      # count, sum, avg, min, max
    arg: Optional[BoundExpr]       # None for count(*)
    distinct: bool = False

    def text(self) -> str:
        inner = "*" if self.arg is None else self.arg.text()
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.func.upper()}({prefix}{inner})"


@dataclass
class LogicalAggregate(LogicalPlan):
    child: LogicalPlan
    group_exprs: List[BoundExpr]
    aggs: List[AggSpec]
    schema: Schema = field(default_factory=list)

    def children(self) -> Sequence[LogicalPlan]:
        return (self.child,)

    def step_text(self) -> str:
        groups = ",".join(sorted(g.text() for g in self.group_exprs))
        return f"AGG({self.child.step_text()}, GROUPBY({groups}))"

    def describe(self) -> str:
        groups = ", ".join(g.text() for g in self.group_exprs)
        aggs = ", ".join(a.text() for a in self.aggs)
        return f"Aggregate group=[{groups}] aggs=[{aggs}]"


@dataclass
class LogicalDistinct(LogicalPlan):
    child: LogicalPlan
    schema: Schema = field(default_factory=list)

    def children(self) -> Sequence[LogicalPlan]:
        return (self.child,)

    def step_text(self) -> str:
        return f"DISTINCT({self.child.step_text()})"

    def describe(self) -> str:
        return "Distinct"


@dataclass
class LogicalSort(LogicalPlan):
    child: LogicalPlan
    keys: List[Tuple[BoundExpr, bool]]     # (expr, descending)
    schema: Schema = field(default_factory=list)

    def children(self) -> Sequence[LogicalPlan]:
        return (self.child,)

    def step_text(self) -> str:
        # Sorting never changes cardinality.
        return self.child.step_text()

    def describe(self) -> str:
        keys = ", ".join(f"{e.text()}{' DESC' if d else ''}" for e, d in self.keys)
        return f"Sort [{keys}]"


@dataclass
class LogicalLimit(LogicalPlan):
    child: LogicalPlan
    limit: int
    schema: Schema = field(default_factory=list)

    def children(self) -> Sequence[LogicalPlan]:
        return (self.child,)

    def step_text(self) -> str:
        return f"LIMIT({self.child.step_text()}, {self.limit})"

    def describe(self) -> str:
        return f"Limit {self.limit}"


@dataclass
class LogicalUnion(LogicalPlan):
    """UNION ALL of schema-compatible branches (dedup via LogicalDistinct)."""

    branches: List[LogicalPlan]
    schema: Schema = field(default_factory=list)

    def children(self) -> Sequence[LogicalPlan]:
        return tuple(self.branches)

    def step_text(self) -> str:
        parts = sorted(b.step_text() for b in self.branches)
        return f"UNION({', '.join(parts)})"

    def describe(self) -> str:
        return f"UnionAll [{len(self.branches)} branches]"


def walk(plan: LogicalPlan):
    """Yield every node of ``plan`` top-down."""
    yield plan
    for child in plan.children():
        yield from walk(child)
