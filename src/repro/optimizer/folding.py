"""Expression simplification rewrites.

Part of the MPP optimizer's "query rewrite engine" (Sec. II-C): constant
folding and trivial-predicate elimination run before pushdown so that
downstream rules and the canonical step texts see normalized expressions.

* ``1 + 2`` -> ``3``; ``upper('ab')`` -> ``'AB'`` (pure functions only),
* ``x AND TRUE`` -> ``x``; ``x AND FALSE`` -> ``FALSE``; same for OR,
* ``NOT NOT x`` -> ``x``,
* CASE with a constant condition collapses to the matching arm,
* a filter whose predicate folds to TRUE disappears; to FALSE, the subtree
  is replaced by an empty relation.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.errors import ExecutionError
from repro.optimizer.expr import (
    BoundBinary,
    BoundCase,
    BoundColumn,
    BoundConst,
    BoundExpr,
    BoundInList,
    BoundIsNull,
    BoundScalarCall,
    BoundUnary,
)
from repro.optimizer.logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalUnion,
    LogicalValues,
)

#: Functions safe to evaluate at plan time (pure, deterministic).
_FOLDABLE_FUNCTIONS = {"abs", "lower", "upper", "length", "round", "floor",
                       "ceil", "coalesce"}


def fold_expr(expr: BoundExpr) -> BoundExpr:
    """Return an equivalent, maximally folded expression."""
    if isinstance(expr, (BoundConst, BoundColumn)):
        return expr
    if isinstance(expr, BoundBinary):
        left = fold_expr(expr.left)
        right = fold_expr(expr.right)
        folded = BoundBinary(expr.op, left, right, expr.data_type)
        if isinstance(left, BoundConst) and isinstance(right, BoundConst):
            return _evaluate(folded)
        if expr.op == "and":
            return _fold_and(left, right, folded)
        if expr.op == "or":
            return _fold_or(left, right, folded)
        return folded
    if isinstance(expr, BoundUnary):
        operand = fold_expr(expr.operand)
        if expr.op == "not" and isinstance(operand, BoundUnary) \
                and operand.op == "not":
            return operand.operand
        folded = BoundUnary(expr.op, operand, expr.data_type)
        if isinstance(operand, BoundConst):
            return _evaluate(folded)
        return folded
    if isinstance(expr, BoundIsNull):
        operand = fold_expr(expr.operand)
        folded = BoundIsNull(operand, expr.negated)
        if isinstance(operand, BoundConst):
            return _evaluate(folded)
        return folded
    if isinstance(expr, BoundInList):
        needle = fold_expr(expr.needle)
        items = tuple(fold_expr(i) for i in expr.items)
        folded = BoundInList(needle, items, expr.negated)
        if isinstance(needle, BoundConst) and all(
                isinstance(i, BoundConst) for i in items):
            return _evaluate(folded)
        return folded
    if isinstance(expr, BoundCase):
        whens = []
        for cond, result in expr.whens:
            cond = fold_expr(cond)
            result = fold_expr(result)
            if isinstance(cond, BoundConst):
                if cond.value:
                    if not whens:
                        return result   # first arm always taken
                    # A always-true arm terminates the chain as the default.
                    return BoundCase(tuple(whens), result, expr.data_type)
                continue                # never taken: drop the arm
            whens.append((cond, result))
        default = fold_expr(expr.default) if expr.default is not None else None
        if not whens:
            return default if default is not None else BoundConst(None)
        return BoundCase(tuple(whens), default, expr.data_type)
    if isinstance(expr, BoundScalarCall):
        args = tuple(fold_expr(a) for a in expr.args)
        folded = BoundScalarCall(expr.name, args, expr.fn, expr.data_type)
        if expr.name in _FOLDABLE_FUNCTIONS and all(
                isinstance(a, BoundConst) for a in args):
            return _evaluate(folded)
        return folded
    return expr


def _evaluate(expr: BoundExpr) -> BoundExpr:
    try:
        return BoundConst(expr.eval(()), expr.data_type)
    except ExecutionError:
        # e.g. division by zero: leave it to raise at execution time.
        return expr


def _fold_and(left: BoundExpr, right: BoundExpr,
              fallback: BoundExpr) -> BoundExpr:
    for const, other in ((left, right), (right, left)):
        if isinstance(const, BoundConst):
            if const.value is True:
                return other
            if const.value is False:
                return BoundConst(False)
    return fallback


def _fold_or(left: BoundExpr, right: BoundExpr,
             fallback: BoundExpr) -> BoundExpr:
    for const, other in ((left, right), (right, left)):
        if isinstance(const, BoundConst):
            if const.value is True:
                return BoundConst(True)
            if const.value is False:
                return other
    return fallback


def fold_plan(plan: LogicalPlan) -> LogicalPlan:
    """Fold every expression in a plan; eliminate trivial filters."""
    if isinstance(plan, LogicalFilter):
        child = fold_plan(plan.child)
        predicate = fold_expr(plan.predicate)
        if isinstance(predicate, BoundConst):
            if predicate.value:
                return child
            return LogicalValues(rows=[], schema=list(plan.schema))
        return LogicalFilter(child, predicate, schema=plan.schema)
    if isinstance(plan, LogicalScan):
        if plan.predicate is None:
            return plan
        predicate = fold_expr(plan.predicate)
        if isinstance(predicate, BoundConst):
            if predicate.value:
                predicate = None
            else:
                return LogicalValues(rows=[], schema=list(plan.schema))
        return LogicalScan(plan.table, schema=plan.schema, predicate=predicate)
    if isinstance(plan, LogicalProject):
        return LogicalProject(fold_plan(plan.child),
                              [fold_expr(e) for e in plan.exprs],
                              schema=plan.schema)
    if isinstance(plan, LogicalJoin):
        condition = (fold_expr(plan.condition)
                     if plan.condition is not None else None)
        kind = plan.kind
        if isinstance(condition, BoundConst):
            if condition.value:
                condition = None
                if kind == "inner":
                    kind = "cross"
            elif kind in ("inner", "cross"):
                return LogicalValues(rows=[], schema=list(plan.schema))
        return LogicalJoin(kind, fold_plan(plan.left), fold_plan(plan.right),
                           condition, schema=plan.schema)
    if isinstance(plan, LogicalAggregate):
        return LogicalAggregate(fold_plan(plan.child),
                                [fold_expr(g) for g in plan.group_exprs],
                                plan.aggs, schema=plan.schema)
    if isinstance(plan, LogicalSort):
        return LogicalSort(fold_plan(plan.child),
                           [(fold_expr(e), d) for e, d in plan.keys],
                           schema=plan.schema)
    if isinstance(plan, LogicalLimit):
        return LogicalLimit(fold_plan(plan.child), plan.limit,
                            schema=plan.schema)
    if isinstance(plan, LogicalDistinct):
        return LogicalDistinct(fold_plan(plan.child), schema=plan.schema)
    if isinstance(plan, LogicalUnion):
        branches = [fold_plan(b) for b in plan.branches]
        live = [b for b in branches
                if not (isinstance(b, LogicalValues) and not b.rows)]
        if not live:
            return LogicalValues(rows=[], schema=list(plan.schema))
        if len(live) == 1:
            return live[0]
        return LogicalUnion(live, schema=plan.schema)
    return plan
