"""Cost-based join ordering (System-R style dynamic programming).

Flattens maximal inner/cross join subtrees into a relation set plus a
conjunct pool, enumerates left-deep join orders bottom-up (DPsize), and
rebuilds the cheapest tree.  Above ~9 relations it falls back to a greedy
smallest-result-first heuristic.  Cardinalities come from the
:class:`~repro.optimizer.cardinality.CardinalityEstimator`, which consults
the learning plan store first — so captured feedback changes join orders,
closing the paper's learning loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.expr import BoundColumn, BoundExpr, combine_conjuncts, conjuncts
from repro.optimizer.logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalPlan,
    LogicalProject,
    LogicalSort,
    LogicalUnion,
)
from repro.optimizer.rules import remap_columns, shift_columns

MAX_DP_RELATIONS = 9


@dataclass
class _Candidate:
    plan: LogicalPlan
    #: global column index -> position in this candidate's output schema
    mapping: Dict[int, int]
    rels: FrozenSet[int]
    cost: float
    rows: float
    applied: FrozenSet[int] = frozenset()   # pool conjuncts consumed so far


def reorder_joins(plan: LogicalPlan, estimator: CardinalityEstimator) -> LogicalPlan:
    """Recursively reorder every maximal inner-join subtree in ``plan``."""
    if isinstance(plan, LogicalJoin) and plan.kind in ("inner", "cross"):
        return _reorder_subtree(plan, estimator)
    if isinstance(plan, LogicalJoin):
        return LogicalJoin(plan.kind,
                           reorder_joins(plan.left, estimator),
                           reorder_joins(plan.right, estimator),
                           plan.condition, schema=plan.schema)
    if isinstance(plan, LogicalFilter):
        return LogicalFilter(reorder_joins(plan.child, estimator),
                             plan.predicate, schema=plan.schema)
    if isinstance(plan, LogicalProject):
        return LogicalProject(reorder_joins(plan.child, estimator),
                              plan.exprs, schema=plan.schema)
    if isinstance(plan, LogicalAggregate):
        return LogicalAggregate(reorder_joins(plan.child, estimator),
                                plan.group_exprs, plan.aggs, schema=plan.schema)
    if isinstance(plan, LogicalSort):
        return LogicalSort(reorder_joins(plan.child, estimator),
                           plan.keys, schema=plan.schema)
    if isinstance(plan, LogicalLimit):
        return LogicalLimit(reorder_joins(plan.child, estimator),
                            plan.limit, schema=plan.schema)
    if isinstance(plan, LogicalDistinct):
        return LogicalDistinct(reorder_joins(plan.child, estimator),
                               schema=plan.schema)
    if isinstance(plan, LogicalUnion):
        return LogicalUnion([reorder_joins(b, estimator)
                             for b in plan.branches], schema=plan.schema)
    return plan


def _reorder_subtree(root: LogicalJoin,
                     estimator: CardinalityEstimator) -> LogicalPlan:
    relations: List[Tuple[LogicalPlan, int]] = []   # (subplan, global offset)
    pool: List[BoundExpr] = []
    _flatten(root, 0, relations, pool, estimator)

    if len(relations) < 2:
        return root

    base: List[_Candidate] = []
    pre_applied: set = set()
    for index, (subplan, offset) in enumerate(relations):
        width = len(subplan.schema)
        mapping = {offset + j: j for j in range(width)}
        # Pool conjuncts confined to this relation become local filters.
        local: List[BoundExpr] = []
        for i, factor in enumerate(pool):
            refs = set(factor.references())
            if refs and refs <= set(mapping):
                local.append(remap_columns(factor, mapping))
                pre_applied.add(i)
        if local:
            subplan = LogicalFilter(subplan, combine_conjuncts(local),
                                    schema=list(subplan.schema))
        rows = estimator.estimate(subplan)
        base.append(_Candidate(subplan, mapping, frozenset({index}), 0.0, rows))
    for candidate in base:
        candidate.applied = frozenset(pre_applied)

    if len(relations) <= MAX_DP_RELATIONS:
        best = _dp_order(base, pool, estimator)
    else:
        best = _greedy_order(base, pool, estimator)

    plan = best.plan
    leftover = [i for i in range(len(pool)) if i not in best.applied]
    if leftover:
        factors = [remap_columns(pool[i], best.mapping) for i in leftover]
        plan = LogicalFilter(plan, combine_conjuncts(factors),
                             schema=list(plan.schema))

    # Restore the original global column order for upstream operators.
    original_schema = list(root.schema)
    exprs = []
    for g in range(len(original_schema)):
        position = best.mapping[g]
        col = original_schema[g]
        exprs.append(BoundColumn(position, col.canonical or col.qualified,
                                 col.data_type))
    return LogicalProject(plan, exprs, schema=original_schema)


def _flatten(plan: LogicalPlan, offset: int, relations, pool,
             estimator: CardinalityEstimator) -> None:
    if isinstance(plan, LogicalJoin) and plan.kind in ("inner", "cross"):
        _flatten(plan.left, offset, relations, pool, estimator)
        _flatten(plan.right, offset + len(plan.left.schema), relations, pool,
                 estimator)
        if plan.condition is not None:
            for factor in conjuncts(plan.condition):
                pool.append(shift_columns(factor, offset))
    else:
        relations.append((reorder_joins(plan, estimator), offset))


def _join_pair(a: _Candidate, b: _Candidate, pool,
               estimator: CardinalityEstimator) -> _Candidate:
    mapping = dict(a.mapping)
    width = len(a.plan.schema)
    for g, pos in b.mapping.items():
        mapping[g] = pos + width
    already = a.applied | b.applied
    applicable: List[BoundExpr] = []
    newly_applied = set(already)
    for i, factor in enumerate(pool):
        if i in already:
            continue
        refs = set(factor.references())
        if refs and refs <= set(mapping):
            applicable.append(remap_columns(factor, mapping))
            newly_applied.add(i)
    condition = combine_conjuncts(applicable)
    kind = "inner" if condition is not None else "cross"
    schema = list(a.plan.schema) + list(b.plan.schema)
    join = LogicalJoin(kind, a.plan, b.plan, condition, schema=schema)
    rows = estimator.estimate(join)
    cost = a.cost + b.cost + rows
    return _Candidate(join, mapping, a.rels | b.rels, cost, rows,
                      frozenset(newly_applied))


def _rank(candidate: _Candidate) -> tuple:
    """Prefer connected (non-cross) joins, then lower cumulative cost."""
    is_cross = isinstance(candidate.plan, LogicalJoin) and \
        candidate.plan.condition is None
    return (is_cross, candidate.cost)


def _dp_order(base: List[_Candidate], pool,
              estimator: CardinalityEstimator) -> _Candidate:
    n = len(base)
    table: Dict[FrozenSet[int], _Candidate] = {c.rels: c for c in base}
    for size in range(2, n + 1):
        for subset in combinations(range(n), size):
            key = frozenset(subset)
            best: Optional[_Candidate] = None
            # Left-deep enumeration: peel one relation off at a time.
            for last in subset:
                rest = key - {last}
                left = table.get(rest)
                right = table.get(frozenset({last}))
                if left is None or right is None:
                    continue
                candidate = _join_pair(left, right, pool, estimator)
                if best is None or _rank(candidate) < _rank(best):
                    best = candidate
            if best is not None:
                table[key] = best
    return table[frozenset(range(n))]


def _greedy_order(base: List[_Candidate], pool,
                  estimator: CardinalityEstimator) -> _Candidate:
    candidates = list(base)
    while len(candidates) > 1:
        best_pair: Optional[Tuple[int, int]] = None
        best: Optional[_Candidate] = None
        for i in range(len(candidates)):
            for j in range(i + 1, len(candidates)):
                candidate = _join_pair(candidates[i], candidates[j], pool,
                                       estimator)
                rank = (_rank(candidate)[0], candidate.rows)
                if best is None or rank < (_rank(best)[0], best.rows):
                    best = candidate
                    best_pair = (i, j)
        i, j = best_pair  # type: ignore[misc]
        candidates = [c for k, c in enumerate(candidates) if k not in (i, j)]
        candidates.append(best)  # type: ignore[arg-type]
    return candidates[0]
