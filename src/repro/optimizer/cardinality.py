"""Cardinality estimation over logical plans.

Classical System-R style estimation (independence + uniformity assumptions),
with one addition from the paper: before estimating a node, the estimator
asks the learning optimizer's plan store for an *observed* cardinality of
the node's canonical step — "the optimizer gets statistics information from
the plan store and uses it instead of its own estimates ... done
opportunistically" (Sec. II-C).
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol

from repro.optimizer.expr import (
    BoundBinary,
    BoundColumn,
    BoundConst,
    BoundExpr,
    BoundInList,
    BoundIsNull,
    BoundUnary,
    conjuncts,
)
from repro.optimizer.logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalTableFunction,
    LogicalUnion,
    LogicalValues,
)
from repro.optimizer.stats import ColumnStats, StatsManager, TableStats

DEFAULT_EQ_SELECTIVITY = 0.005
DEFAULT_RANGE_SELECTIVITY = 0.33
DEFAULT_ROW_COUNT = 1000


class CardinalityFeedback(Protocol):
    """The plan-store consumer interface (see :mod:`repro.learnopt`)."""

    def lookup(self, step_text: str) -> Optional[float]:
        """Observed cardinality for a canonical step, if captured."""


def _column_vs_const(expr: BoundBinary):
    """Normalize ``col <op> const`` / ``const <op> col`` comparisons.

    Returns (column, constant_value, op) or (None, None, None).
    """
    mirror = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
    if expr.op not in mirror:
        return None, None, None
    left, right = expr.left, expr.right
    if isinstance(left, BoundColumn) and isinstance(right, BoundConst):
        return left, right.value, expr.op
    if isinstance(left, BoundConst) and isinstance(right, BoundColumn):
        return right, left.value, mirror[expr.op]
    return None, None, None


class CardinalityEstimator:
    def __init__(self, stats: StatsManager,
                 feedback: Optional[CardinalityFeedback] = None):
        self.stats = stats
        self.feedback = feedback
        #: Estimates memoized per node id during one optimization pass.
        self._memo: Dict[int, float] = {}
        #: Count of estimates answered from the plan store (introspection).
        self.feedback_hits = 0

    def estimate(self, plan: LogicalPlan) -> float:
        key = id(plan)
        if key in self._memo:
            return self._memo[key]
        observed = self._from_feedback(plan)
        value = observed if observed is not None else self._estimate_fresh(plan)
        value = max(0.0, value)
        self._memo[key] = value
        return value

    # -- internals ---------------------------------------------------------

    def _from_feedback(self, plan: LogicalPlan) -> Optional[float]:
        if self.feedback is None:
            return None
        # Only cardinality-bearing steps are stored (scans, joins, aggs...).
        if isinstance(plan, (LogicalProject, LogicalSort)):
            return None
        try:
            step = plan.step_text()
        except NotImplementedError:  # pragma: no cover - defensive
            return None
        observed = self.feedback.lookup(step)
        if observed is not None:
            self.feedback_hits += 1
        return observed

    def _estimate_fresh(self, plan: LogicalPlan) -> float:
        if isinstance(plan, LogicalScan):
            base = self._table_rows(plan.table)
            if plan.predicate is not None:
                base *= self._selectivity(plan.predicate, plan)
            return base
        if isinstance(plan, LogicalTableFunction):
            return float(plan.rows_hint)
        if isinstance(plan, LogicalValues):
            return float(len(plan.rows))
        if isinstance(plan, LogicalFilter):
            child = self.estimate(plan.child)
            return child * self._selectivity(plan.predicate, plan.child)
        if isinstance(plan, (LogicalProject, LogicalSort)):
            return self.estimate(plan.child)
        if isinstance(plan, LogicalLimit):
            return min(float(plan.limit), self.estimate(plan.child))
        if isinstance(plan, LogicalDistinct):
            return self.estimate(plan.child) * 0.5
        if isinstance(plan, LogicalAggregate):
            child = self.estimate(plan.child)
            if not plan.group_exprs:
                return 1.0
            groups = 1.0
            for expr in plan.group_exprs:
                groups *= self._expr_ndv(expr, plan.child, child)
            return min(child, groups)
        if isinstance(plan, LogicalUnion):
            return sum(self.estimate(b) for b in plan.branches)
        if isinstance(plan, LogicalJoin):
            left = self.estimate(plan.left)
            right = self.estimate(plan.right)
            if plan.kind == "cross" or plan.condition is None:
                return left * right
            sel = self._join_selectivity(plan)
            rows = left * right * sel
            if plan.kind == "left":
                rows = max(rows, left)
            return rows
        return float(DEFAULT_ROW_COUNT)

    def _table_rows(self, table: str) -> float:
        stats = self.stats.get(table)
        return float(stats.row_count) if stats is not None else float(DEFAULT_ROW_COUNT)

    # -- predicate selectivity --------------------------------------------------

    def _selectivity(self, predicate: BoundExpr, context: LogicalPlan) -> float:
        sel = 1.0
        for factor in conjuncts(predicate):
            sel *= self._factor_selectivity(factor, context)
        return max(1e-9, min(1.0, sel))

    def _factor_selectivity(self, expr: BoundExpr, context: LogicalPlan) -> float:
        if isinstance(expr, BoundBinary):
            if expr.op == "or":
                left = self._factor_selectivity(expr.left, context)
                right = self._factor_selectivity(expr.right, context)
                return min(1.0, left + right - left * right)
            col, const, op = _column_vs_const(expr)
            if col is not None:
                col_stats, row_count = self._column_stats(col, context)
                if col_stats is None:
                    return (DEFAULT_EQ_SELECTIVITY if op in ("=",)
                            else DEFAULT_RANGE_SELECTIVITY)
                if op == "=":
                    return col_stats.selectivity_eq(const, row_count)
                if op == "<>":
                    return 1.0 - col_stats.selectivity_eq(const, row_count)
                if op == "<":
                    return col_stats.selectivity_range(None, const, include_high=False)
                if op == "<=":
                    return col_stats.selectivity_range(None, const)
                if op == ">":
                    return col_stats.selectivity_range(const, None, include_low=False)
                if op == ">=":
                    return col_stats.selectivity_range(const, None)
            if expr.op == "=":
                return DEFAULT_EQ_SELECTIVITY
            if expr.op in ("<", "<=", ">", ">="):
                return DEFAULT_RANGE_SELECTIVITY
            if expr.op == "like":
                return 0.1
        if isinstance(expr, BoundInList):
            base = self._factor_selectivity(
                BoundBinary("=", expr.needle, expr.items[0] if expr.items
                            else BoundConst(None)), context)
            sel = min(1.0, base * max(1, len(expr.items)))
            return 1.0 - sel if expr.negated else sel
        if isinstance(expr, BoundIsNull):
            col_stats = None
            if isinstance(expr.operand, BoundColumn):
                col_stats, _ = self._column_stats(expr.operand, context)
            frac = col_stats.null_frac if col_stats is not None else 0.05
            return (1.0 - frac) if expr.negated else frac
        if isinstance(expr, BoundUnary) and expr.op == "not":
            return 1.0 - self._factor_selectivity(expr.operand, context)
        return 0.5

    def _join_selectivity(self, join: LogicalJoin) -> float:
        sel = 1.0
        for factor in conjuncts(join.condition):
            if (isinstance(factor, BoundBinary) and factor.op == "="
                    and isinstance(factor.left, BoundColumn)
                    and isinstance(factor.right, BoundColumn)):
                ndv_l = self._column_ndv(factor.left, join.left)
                ndv_r = self._column_ndv(factor.right, join.right)
                sel *= 1.0 / max(ndv_l, ndv_r, 1.0)
            else:
                sel *= 0.5
        return max(1e-12, min(1.0, sel))

    # -- column statistics lookup ----------------------------------------------

    def _column_stats(self, col: BoundColumn, context: LogicalPlan):
        """Find (ColumnStats, row_count) for a column by canonical name."""
        qualified = col.qualified_name.lower()
        if "." in qualified:
            table, name = qualified.rsplit(".", 1)
            stats = self.stats.get(table)
            if stats is not None and name in stats.columns:
                return stats.columns[name], stats.row_count
        # Fall back to searching any analyzed table with this column name.
        name = qualified.rsplit(".", 1)[-1]
        for table in self.stats.analyzed_tables():
            stats = self.stats.get(table)
            if stats is not None and name in stats.columns:
                return stats.columns[name], stats.row_count
        return None, 0

    def _column_ndv(self, col: BoundColumn, side: LogicalPlan) -> float:
        col_stats, _ = self._column_stats(col, side)
        if col_stats is not None and col_stats.ndv > 0:
            return float(col_stats.ndv)
        return float(max(1.0, self.estimate(side) * 0.1))

    def _expr_ndv(self, expr: BoundExpr, child: LogicalPlan, child_rows: float) -> float:
        if isinstance(expr, BoundColumn):
            return self._column_ndv(expr, child)
        return max(1.0, child_rows * 0.1)
