"""Bound (resolved, executable) expressions.

The binder turns AST expressions into these nodes: column references become
positional row accesses, functions become callables, and every node can
render a *canonical logical text* — uppercase, fully qualified, order-
normalized — which is exactly the representation the paper's learning
optimizer hashes into its plan store (Table I).

NULL handling follows SQL's semantics loosely: NULL propagates through
arithmetic and comparisons, and a filter keeps a row only when its predicate
evaluates to a truthy (non-NULL true) value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.common.errors import ExecutionError
from repro.storage.types import DataType

Row = tuple


class BoundExpr:
    """Base class: an expression bound to a fixed input row layout."""

    data_type: Optional[DataType] = None

    def eval(self, row: Row) -> object:
        raise NotImplementedError

    def text(self) -> str:
        """Canonical logical form (uppercase, qualified, order-normalized)."""
        raise NotImplementedError

    def children(self) -> Sequence["BoundExpr"]:
        return ()

    def references(self) -> List[int]:
        """All row positions this expression reads."""
        out: List[int] = []
        stack: List[BoundExpr] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, BoundColumn):
                out.append(node.index)
            stack.extend(node.children())
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.text()})"


@dataclass
class BoundConst(BoundExpr):
    value: object
    data_type: Optional[DataType] = None

    def eval(self, row: Row) -> object:
        return self.value

    def text(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, str):
            return "'" + self.value.replace("'", "''") + "'"
        return str(self.value).upper()


@dataclass
class BoundColumn(BoundExpr):
    index: int
    qualified_name: str
    data_type: Optional[DataType] = None

    def eval(self, row: Row) -> object:
        return row[self.index]

    def text(self) -> str:
        return self.qualified_name.upper()


_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "%": lambda a, b: a % b,
    "||": lambda a, b: str(a) + str(b),
}

_COMPARE = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

#: Comparison operators mirrored, for normalizing ``10 < x`` into ``x > 10``.
_MIRROR = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


@dataclass
class BoundBinary(BoundExpr):
    op: str
    left: BoundExpr
    right: BoundExpr
    data_type: Optional[DataType] = None

    def eval(self, row: Row) -> object:
        op = self.op
        if op == "and":
            lv = self.left.eval(row)
            if lv is None or not lv:
                return False if lv is not None else None
            rv = self.right.eval(row)
            return None if rv is None else bool(rv)
        if op == "or":
            lv = self.left.eval(row)
            if lv:
                return True
            rv = self.right.eval(row)
            if rv:
                return True
            return None if (lv is None or rv is None) else False
        lv = self.left.eval(row)
        rv = self.right.eval(row)
        if lv is None or rv is None:
            return None
        if op == "/":
            if rv == 0:
                raise ExecutionError("division by zero")
            return lv / rv
        if op in _ARITH:
            return _ARITH[op](lv, rv)
        if op in _COMPARE:
            try:
                return _COMPARE[op](lv, rv)
            except TypeError:
                raise ExecutionError(
                    f"cannot compare {type(lv).__name__} with {type(rv).__name__}"
                ) from None
        if op == "like":
            return _like(str(lv), str(rv))
        raise ExecutionError(f"unknown operator {op!r}")

    def text(self) -> str:
        if self.op in ("and",):
            # Conjunctions are flattened and sorted so predicate order does
            # not change the canonical form (the paper: "we apply some order
            # on predicates").
            parts = sorted(c.text() for c in _flatten_and(self))
            return " AND ".join(parts)
        if self.op == "or":
            parts = sorted(c.text() for c in _flatten_or(self))
            return "(" + " OR ".join(parts) + ")"
        left, right, op = self.left, self.right, self.op
        if op in _MIRROR:
            # Normalize constant-on-the-left comparisons; order symmetric
            # column-to-column comparisons alphabetically.
            if isinstance(left, BoundConst) and not isinstance(right, BoundConst):
                left, right, op = right, left, _MIRROR[op]
            elif (op in ("=", "<>")
                  and not isinstance(left, BoundConst)
                  and not isinstance(right, BoundConst)
                  and right.text() < left.text()):
                left, right = right, left
        return f"{left.text()}{_op_text(op)}{right.text()}"

    def children(self) -> Sequence[BoundExpr]:
        return (self.left, self.right)


def _op_text(op: str) -> str:
    if op in ("=", "<>", "<", "<=", ">", ">="):
        return op
    return f" {op.upper()} "


def _flatten_and(expr: BoundExpr) -> List[BoundExpr]:
    if isinstance(expr, BoundBinary) and expr.op == "and":
        return _flatten_and(expr.left) + _flatten_and(expr.right)
    return [expr]


def _flatten_or(expr: BoundExpr) -> List[BoundExpr]:
    if isinstance(expr, BoundBinary) and expr.op == "or":
        return _flatten_or(expr.left) + _flatten_or(expr.right)
    return [expr]


def _like(value: str, pattern: str) -> bool:
    """SQL LIKE with %% and _ wildcards."""
    import re

    regex = "^" + "".join(
        ".*" if ch == "%" else "." if ch == "_" else re.escape(ch) for ch in pattern
    ) + "$"
    return re.match(regex, value) is not None


@dataclass
class BoundUnary(BoundExpr):
    op: str
    operand: BoundExpr
    data_type: Optional[DataType] = None

    def eval(self, row: Row) -> object:
        value = self.operand.eval(row)
        if value is None:
            return None
        if self.op == "-":
            return -value
        if self.op == "not":
            return not value
        raise ExecutionError(f"unknown unary operator {self.op!r}")

    def text(self) -> str:
        if self.op == "not":
            return f"NOT({self.operand.text()})"
        return f"-({self.operand.text()})"

    def children(self) -> Sequence[BoundExpr]:
        return (self.operand,)


@dataclass
class BoundIsNull(BoundExpr):
    operand: BoundExpr
    negated: bool = False
    data_type: Optional[DataType] = DataType.BOOL

    def eval(self, row: Row) -> object:
        is_null = self.operand.eval(row) is None
        return (not is_null) if self.negated else is_null

    def text(self) -> str:
        suffix = " IS NOT NULL" if self.negated else " IS NULL"
        return self.operand.text() + suffix

    def children(self) -> Sequence[BoundExpr]:
        return (self.operand,)


@dataclass
class BoundInList(BoundExpr):
    needle: BoundExpr
    items: Tuple[BoundExpr, ...]
    negated: bool = False
    data_type: Optional[DataType] = DataType.BOOL

    def eval(self, row: Row) -> object:
        value = self.needle.eval(row)
        if value is None:
            return None
        found = any(value == item.eval(row) for item in self.items)
        return (not found) if self.negated else found

    def text(self) -> str:
        items = ",".join(sorted(i.text() for i in self.items))
        op = " NOT IN " if self.negated else " IN "
        return f"{self.needle.text()}{op}({items})"

    def children(self) -> Sequence[BoundExpr]:
        return (self.needle,) + self.items


@dataclass
class BoundCase(BoundExpr):
    whens: Tuple[Tuple[BoundExpr, BoundExpr], ...]
    default: Optional[BoundExpr] = None
    data_type: Optional[DataType] = None

    def eval(self, row: Row) -> object:
        for cond, result in self.whens:
            if cond.eval(row):
                return result.eval(row)
        return self.default.eval(row) if self.default is not None else None

    def text(self) -> str:
        parts = [f"WHEN {c.text()} THEN {r.text()}" for c, r in self.whens]
        if self.default is not None:
            parts.append(f"ELSE {self.default.text()}")
        return "CASE " + " ".join(parts) + " END"

    def children(self) -> Sequence[BoundExpr]:
        out: List[BoundExpr] = []
        for cond, result in self.whens:
            out.extend((cond, result))
        if self.default is not None:
            out.append(self.default)
        return out


#: Scalar functions available in expressions.
SCALAR_FUNCTIONS: dict = {
    "abs": (abs, None),
    "lower": (lambda s: s.lower(), DataType.TEXT),
    "upper": (lambda s: s.upper(), DataType.TEXT),
    "length": (len, DataType.BIGINT),
    "round": (lambda v, nd=0: round(v, int(nd)), DataType.DOUBLE),
    "floor": (lambda v: int(v // 1), DataType.BIGINT),
    "ceil": (lambda v: -int((-v) // 1), DataType.BIGINT),
    "coalesce": (None, None),   # special-cased: first non-NULL argument
    "now": (None, DataType.TIMESTAMP),  # special-cased: engine-supplied clock
}


@dataclass
class BoundScalarCall(BoundExpr):
    name: str
    args: Tuple[BoundExpr, ...]
    fn: Optional[Callable] = None
    data_type: Optional[DataType] = None

    def eval(self, row: Row) -> object:
        if self.name == "coalesce":
            for arg in self.args:
                value = arg.eval(row)
                if value is not None:
                    return value
            return None
        values = [arg.eval(row) for arg in self.args]
        if self.name != "coalesce" and any(v is None for v in values):
            return None
        if self.fn is None:
            raise ExecutionError(f"function {self.name!r} is not executable here")
        return self.fn(*values)

    def text(self) -> str:
        return f"{self.name.upper()}({','.join(a.text() for a in self.args)})"

    def children(self) -> Sequence[BoundExpr]:
        return self.args


def conjuncts(expr: Optional[BoundExpr]) -> List[BoundExpr]:
    """Split a predicate into its AND-ed factors (empty for None)."""
    if expr is None:
        return []
    return _flatten_and(expr)


def combine_conjuncts(parts: Sequence[BoundExpr]) -> Optional[BoundExpr]:
    """Rebuild a predicate from factors (None for an empty list)."""
    result: Optional[BoundExpr] = None
    for part in parts:
        result = part if result is None else BoundBinary("and", result, part, DataType.BOOL)
    return result
