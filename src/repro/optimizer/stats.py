"""Optimizer statistics: row counts, NDVs, min/max, equi-depth histograms.

``ANALYZE`` scans a table's visible rows and builds a :class:`TableStats`
the selectivity estimator consumes.  The learning optimizer exists precisely
because these estimates go wrong (correlations, skew, staleness) — so this
module is deliberately the *classical* estimator, warts and all.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

HISTOGRAM_BUCKETS = 32


@dataclass
class ColumnStats:
    """Statistics for one column."""

    ndv: int = 0
    null_frac: float = 0.0
    min_value: Optional[object] = None
    max_value: Optional[object] = None
    # Equi-depth histogram bounds (ascending); len == buckets + 1.
    histogram: List[object] = field(default_factory=list)

    def selectivity_eq(self, value: object, row_count: int) -> float:
        """Selectivity of ``col = value`` under uniformity per distinct."""
        if row_count == 0 or self.ndv == 0:
            return 0.0
        if value is None:
            return 0.0
        if self.min_value is not None and self.max_value is not None:
            try:
                if value < self.min_value or value > self.max_value:
                    return 0.0
            except TypeError:
                pass
        return (1.0 - self.null_frac) / self.ndv

    def selectivity_range(self, low: Optional[object], high: Optional[object],
                          include_low: bool = True, include_high: bool = True) -> float:
        """Selectivity of a range predicate from the histogram."""
        if not self.histogram:
            return 0.33  # the classical magic constant
        lo_frac = self._position(low) if low is not None else 0.0
        hi_frac = self._position(high) if high is not None else 1.0
        frac = max(0.0, hi_frac - lo_frac) * (1.0 - self.null_frac)
        return min(1.0, frac)

    def _position(self, value: object) -> float:
        """Fraction of values strictly below ``value`` per the histogram."""
        bounds = self.histogram
        if not bounds:
            return 0.5
        try:
            if value <= bounds[0]:
                return 0.0
            if value >= bounds[-1]:
                return 1.0
            i = bisect.bisect_left(bounds, value)
        except TypeError:
            return 0.5
        buckets = len(bounds) - 1
        lo, hi = bounds[i - 1], bounds[i]
        within = 0.5
        try:
            if hi != lo:
                within = (value - lo) / (hi - lo)
        except TypeError:
            pass
        return ((i - 1) + within) / buckets


@dataclass
class TableStats:
    """Statistics for one table."""

    row_count: int = 0
    columns: Dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name)


def analyze_rows(rows: Sequence[dict], column_names: Sequence[str]) -> TableStats:
    """Build full table statistics from materialized rows."""
    stats = TableStats(row_count=len(rows))
    for name in column_names:
        values = [row.get(name) for row in rows]
        non_null = [v for v in values if v is not None]
        col = ColumnStats()
        col.null_frac = (1.0 - len(non_null) / len(values)) if values else 0.0
        col.ndv = len(set(map(_hashable, non_null)))
        if non_null:
            try:
                ordered = sorted(non_null)
                col.min_value = ordered[0]
                col.max_value = ordered[-1]
                col.histogram = _equi_depth(ordered, HISTOGRAM_BUCKETS)
            except TypeError:
                pass  # mixed-type column: keep NDV only
        stats.columns[name] = col
    return stats


def _equi_depth(ordered: List[object], buckets: int) -> List[object]:
    """Equi-depth histogram bounds over pre-sorted values."""
    n = len(ordered)
    if n == 0:
        return []
    buckets = min(buckets, n)
    bounds = [ordered[0]]
    for b in range(1, buckets):
        bounds.append(ordered[min(n - 1, (b * n) // buckets)])
    bounds.append(ordered[-1])
    return bounds


def _hashable(value: object) -> object:
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)


class StatsManager:
    """Holds per-table statistics for the optimizer; fed by ANALYZE."""

    def __init__(self) -> None:
        self._tables: Dict[str, TableStats] = {}
        #: Bumped whenever statistics change (ANALYZE / drop); plan caches
        #: key on it so stale cardinalities don't pin stale plans.
        self.version = 0

    def put(self, table: str, stats: TableStats) -> None:
        self._tables[table.lower()] = stats
        self.version += 1

    def get(self, table: str) -> Optional[TableStats]:
        return self._tables.get(table.lower())

    def drop(self, table: str) -> None:
        if self._tables.pop(table.lower(), None) is not None:
            self.version += 1

    def analyzed_tables(self) -> List[str]:
        return sorted(self._tables)
