"""GMDB's SQL interface (Fig. 7).

The GMDB driver "provides the KV (key value) interface of the tree (object)
model, the SQL interface of the relational model, and the pub/sub
interface" — and GMDB "covers a subset of the ANSI SQL (only those needed
for the use cases)".

This adapter exposes one object type as a relational view over its *root
scalar fields* (record arrays stay behind the KV/tree interface) and
supports exactly the telecom-use-case subset:

* ``SELECT <fields|*> FROM <type> [WHERE ...] [ORDER BY ...] [LIMIT n]``
* ``INSERT INTO <type> (f, ...) VALUES (...)`` — unset fields default,
* ``UPDATE <type> SET f = expr [WHERE ...]`` — runs through the delta path,
* ``DELETE FROM <type> [WHERE ...]``.

The WHERE/SET grammar reuses the MPP SQL front-end; statements execute
against the connected client's schema version, with the usual online
up/downgrade conversion underneath.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.catalog import Catalog
from repro.common.errors import SqlAnalysisError
from repro.gmdb.cluster import GmdbClient
from repro.gmdb.schema import FieldType, RecordSchema
from repro.sql import ast
from repro.sql.binder import Binder
from repro.sql.parser import parse
from repro.storage.table import Column, TableSchema
from repro.storage.types import DataType

_FIELD_TO_SQL = {
    FieldType.INT: DataType.BIGINT,
    FieldType.DOUBLE: DataType.DOUBLE,
    FieldType.STRING: DataType.TEXT,
    FieldType.BOOL: DataType.BOOL,
}


@dataclass
class SqlResult:
    columns: List[str] = field(default_factory=list)
    rows: List[tuple] = field(default_factory=list)
    rowcount: int = 0

    def as_dicts(self) -> List[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def scalar(self):
        return self.rows[0][0] if self.rows and self.rows[0] else None


class GmdbSql:
    """SQL facade over one GMDB client (one object type, one version)."""

    def __init__(self, client: GmdbClient):
        self.client = client

    # -- schema projection -------------------------------------------------

    def _relational_view(self) -> Tuple[TableSchema, List[str]]:
        record: RecordSchema = self.client.schema
        columns = []
        names = []
        for fdef in record.fields:
            if fdef.ftype is FieldType.RECORD_ARRAY:
                continue   # nested arrays stay in the tree model
            columns.append(Column(fdef.name, _FIELD_TO_SQL[fdef.ftype]))
            names.append(fdef.name)
        primary_key = record.primary_key or names[0]
        return TableSchema(
            self.client.cluster.object_type, columns, primary_key,
        ), names

    def _binder(self) -> Tuple[Binder, TableSchema, List[str]]:
        view, names = self._relational_view()
        catalog = Catalog()
        catalog.register(view)
        return Binder(catalog), view, names

    def _scan_keys(self) -> List[object]:
        keys: List[object] = []
        for dn in self.client.cluster.dns:
            keys.extend(dn._objects.keys())  # noqa: SLF001 - driver-internal
        return sorted(keys, key=repr)

    def _row_of(self, obj: dict, names: List[str]) -> tuple:
        return tuple(obj.get(name) for name in names)

    # -- entry point ---------------------------------------------------------------

    def execute(self, sql: str) -> SqlResult:
        statement = parse(sql)
        if isinstance(statement, ast.Select):
            return self._select(statement)
        if isinstance(statement, ast.Insert):
            return self._insert(statement)
        if isinstance(statement, ast.Update):
            return self._update(statement)
        if isinstance(statement, ast.Delete):
            return self._delete(statement)
        raise SqlAnalysisError(
            f"GMDB SQL supports SELECT/INSERT/UPDATE/DELETE, not "
            f"{type(statement).__name__}")

    def query(self, sql: str) -> List[dict]:
        return self.execute(sql).as_dicts()

    # -- statements -------------------------------------------------------------------

    def _check_table(self, name: str) -> None:
        expected = self.client.cluster.object_type
        if name.lower() != expected.lower():
            raise SqlAnalysisError(
                f"this client serves object type {expected!r}, not {name!r}")

    def _matching(self, where, binder, view, names):
        predicate = None
        if where is not None:
            predicate = binder._bind_expr(where, _scan_schema(view))  # noqa: SLF001
        for key in self._scan_keys():
            obj = self.client.read(key)
            row = self._row_of(obj, names)
            if predicate is None or predicate.eval(row):
                yield key, obj, row

    def _select(self, stmt: ast.Select) -> SqlResult:
        if stmt.from_clause is None or not isinstance(
                stmt.from_clause, ast.NamedTable):
            raise SqlAnalysisError("GMDB SELECT reads one object type")
        self._check_table(stmt.from_clause.name)
        if stmt.group_by or stmt.having or stmt.ctes or stmt.distinct:
            raise SqlAnalysisError(
                "GMDB SQL covers only the telecom subset "
                "(no grouping/CTEs/DISTINCT)")
        binder, view, names = self._binder()
        scan_schema = _scan_schema(view)

        items: List[Tuple[str, object]] = []
        for item in stmt.items:
            if isinstance(item.expr, ast.Star):
                for name in names:
                    items.append((name, None))
            else:
                bound = binder._bind_expr(item.expr, scan_schema)  # noqa: SLF001
                label = item.alias or (
                    item.expr.column if isinstance(item.expr, ast.ColumnRef)
                    else f"col_{len(items)}")
                items.append((label, bound))

        rows = []
        for _, obj, row in self._matching(stmt.where, binder, view, names):
            out = []
            for label, bound in items:
                out.append(obj.get(label) if bound is None else bound.eval(row))
            rows.append(tuple(out))

        if stmt.order_by:
            keys = [(binder._bind_expr(o.expr, scan_schema), o.descending)  # noqa: SLF001
                    for o in stmt.order_by]
            # Order keys evaluate over the scan row, so sort the pairs.
            paired = []
            for _, obj, row in self._matching(stmt.where, binder, view, names):
                out = tuple(obj.get(label) if bound is None else bound.eval(row)
                            for label, bound in items)
                paired.append((row, out))
            for expr, descending in reversed(keys):
                paired.sort(key=lambda pair: expr.eval(pair[0]),
                            reverse=descending)
            rows = [out for _, out in paired]

        if stmt.limit is not None:
            rows = rows[:stmt.limit]
        return SqlResult([label for label, _ in items], rows, len(rows))

    def _insert(self, stmt: ast.Insert) -> SqlResult:
        self._check_table(stmt.table)
        binder, view, names = self._binder()
        columns = list(stmt.columns) if stmt.columns else names
        unknown = set(columns) - set(names)
        if unknown:
            raise SqlAnalysisError(f"unknown fields {sorted(unknown)}")
        count = 0
        for row_exprs in stmt.rows:
            if len(row_exprs) != len(columns):
                raise SqlAnalysisError("INSERT width mismatch")
            values = {}
            for name, expr in zip(columns, row_exprs):
                values[name] = binder.bind_standalone_expr(expr).eval(())
            obj = self.client.schema.new_object(**values)
            self.client.create(obj[view.primary_key], obj)
            count += 1
        return SqlResult(rowcount=count)

    def _update(self, stmt: ast.Update) -> SqlResult:
        self._check_table(stmt.table)
        binder, view, names = self._binder()
        scan_schema = _scan_schema(view)
        assignments = [
            (name, binder._bind_expr(expr, scan_schema))  # noqa: SLF001
            for name, expr in stmt.assignments
        ]
        unknown = {name for name, _ in assignments} - set(names)
        if unknown:
            raise SqlAnalysisError(f"unknown fields {sorted(unknown)}")
        count = 0
        for key, _, row in list(self._matching(stmt.where, binder, view, names)):
            new_values = {name: bound.eval(row) for name, bound in assignments}

            def mutate(obj, new_values=new_values):
                obj.update(new_values)

            self.client.update(key, mutate)
            count += 1
        return SqlResult(rowcount=count)

    def _delete(self, stmt: ast.Delete) -> SqlResult:
        self._check_table(stmt.table)
        binder, view, names = self._binder()
        count = 0
        for key, _, _ in list(self._matching(stmt.where, binder, view, names)):
            self.client.cluster.node_for(key).delete(key)
            self.client.invalidate(key)
            count += 1
        return SqlResult(rowcount=count)


def _scan_schema(view: TableSchema):
    from repro.optimizer.logical import ColumnInfo

    return [ColumnInfo(c.name, view.name, c.data_type) for c in view.columns]
