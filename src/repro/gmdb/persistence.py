"""GMDB asynchronous persistence (Sec. III-A).

"GMDB only asynchronously flushes data to disk periodically" — trading a
bounded data-loss window for latency.  This module implements that flusher
for real: a per-node append-only *checkpoint log* of JSON records plus a
recovery path, so a GMDB node can be killed and rebuilt from disk, losing
at most the writes since the last flush (exactly the window
:meth:`~repro.gmdb.store.GmdbDataNode.unflushed_loss_on_crash` reports).

Format: one JSON object per line —
``{"op": "put"|"delete"|"checkpoint", "key": ..., "version": ..., "obj": ...}``.
A ``checkpoint`` record marks a consistent prefix; recovery replays the
whole log (the log is append-only, so later records win).  ``compact``
rewrites the log to the live state only.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.common.errors import StorageError
from repro.gmdb.schema import SchemaRegistry
from repro.gmdb.store import GmdbDataNode


@dataclass
class FlushReport:
    objects_flushed: int
    records_appended: int
    log_bytes: int


class GmdbPersistence:
    """Background-flusher + recovery for one data node."""

    def __init__(self, node: GmdbDataNode, path: pathlib.Path):
        self.node = node
        self.path = pathlib.Path(path)
        self._flushed_state: Dict[object, Tuple[int, int]] = {}
        # key -> (generation, version) as of the last flush

    # -- flushing ----------------------------------------------------------

    def flush(self) -> FlushReport:
        """Append every dirty object to the log, then checkpoint."""
        records = 0
        flushed = 0
        with self.path.open("a", encoding="utf-8") as log:
            live_keys = set()
            for key, stored in self.node._objects.items():  # noqa: SLF001
                live_keys.add(key)
                previous = self._flushed_state.get(key)
                if previous == (stored.generation, stored.version):
                    continue
                log.write(json.dumps({
                    "op": "put",
                    "key": key,
                    "version": stored.version,
                    "generation": stored.generation,
                    "obj": stored.obj,
                }) + "\n")
                self._flushed_state[key] = (stored.generation, stored.version)
                records += 1
                flushed += 1
            for key in list(self._flushed_state):
                if key not in live_keys:
                    log.write(json.dumps({"op": "delete", "key": key}) + "\n")
                    del self._flushed_state[key]
                    records += 1
            log.write(json.dumps({"op": "checkpoint"}) + "\n")
            records += 1
        self.node.flush()   # clears the node's dirty set
        return FlushReport(flushed, records, self.path.stat().st_size)

    # -- recovery -------------------------------------------------------------

    @staticmethod
    def recover(path: pathlib.Path, node_id: str,
                registry: SchemaRegistry) -> GmdbDataNode:
        """Rebuild a data node from its checkpoint log."""
        node = GmdbDataNode(node_id, registry)
        path = pathlib.Path(path)
        if not path.exists():
            return node
        state: Dict[object, dict] = {}
        with path.open(encoding="utf-8") as log:
            for line_no, line in enumerate(log, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A torn final line from a crash mid-append: stop here;
                    # everything before it is intact (append-only log).
                    break
                op = record.get("op")
                if op == "put":
                    state[record["key"]] = record
                elif op == "delete":
                    state.pop(record["key"], None)
                elif op == "checkpoint":
                    continue
                else:
                    raise StorageError(
                        f"{path}: unknown log record {op!r} at line {line_no}")
        for key, record in state.items():
            node.put(key, record["obj"], record["version"])
        node.flush()   # recovered state counts as persisted
        return node

    # -- maintenance ---------------------------------------------------------------

    def compact(self) -> int:
        """Rewrite the log to live state only; returns bytes reclaimed."""
        before = self.path.stat().st_size if self.path.exists() else 0
        fd, tmp_name = tempfile.mkstemp(dir=str(self.path.parent),
                                        suffix=".gmdb-compact")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as out:
                for key, stored in self.node._objects.items():  # noqa: SLF001
                    out.write(json.dumps({
                        "op": "put",
                        "key": key,
                        "version": stored.version,
                        "generation": stored.generation,
                        "obj": stored.obj,
                    }) + "\n")
                out.write(json.dumps({"op": "checkpoint"}) + "\n")
            os.replace(tmp_name, self.path)
        except Exception:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise
        self._flushed_state = {
            key: (stored.generation, stored.version)
            for key, stored in self.node._objects.items()  # noqa: SLF001
        }
        self.node.flush()
        after = self.path.stat().st_size
        return max(0, before - after)
