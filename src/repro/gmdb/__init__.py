"""GMDB: the telecom in-memory database with online schema evolution (Sec. III)."""

from repro.gmdb.cluster import GmdbClient, GmdbCluster, GmdbMetrics
from repro.gmdb.delta import Delta, DeltaOp, apply_delta, diff, object_wire_size
from repro.gmdb.schema import (
    FieldDef,
    FieldType,
    RecordSchema,
    SchemaRegistry,
    check_evolution,
    downgrade_object,
    upgrade_object,
)
from repro.gmdb.persistence import GmdbPersistence
from repro.gmdb.sqlapi import GmdbSql
from repro.gmdb.store import GmdbDataNode, Notification

__all__ = ["GmdbCluster", "GmdbClient", "GmdbMetrics", "GmdbDataNode",
           "RecordSchema", "FieldDef", "FieldType", "SchemaRegistry",
           "check_evolution", "upgrade_object", "downgrade_object",
           "Delta", "DeltaOp", "diff", "apply_delta", "object_wire_size",
           "Notification"]

__all__ += ["GmdbPersistence", "GmdbSql"]
