"""GMDB record schemas and online schema evolution (Sec. III-B).

The GMDB object model: "Each object has a record schema like a RDBMS table
... A record can contain multiple fields.  Each field can be either a
primary data type, or a record type with an array of records.  A primary
key is defined to uniquely identify a root record."

Evolution rules follow the paper's limitations: appending fields (with
defaults) is allowed at any nesting level; **deleting and re-ordering
fields are not allowed**.  The :class:`SchemaRegistry` keeps the version
chain and reproduces the Fig. 8 upgrade/downgrade matrix: adjacent versions
convert (U/D cells), non-adjacent pairs do not (X cells) unless multi-step
conversion is explicitly enabled (an extension beyond the paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import SchemaEvolutionError, SchemaValidationError


class FieldType(enum.Enum):
    INT = "int"
    DOUBLE = "double"
    STRING = "string"
    BOOL = "bool"
    RECORD_ARRAY = "record[]"


_PY_OF = {
    FieldType.INT: int,
    FieldType.DOUBLE: (int, float),
    FieldType.STRING: str,
    FieldType.BOOL: bool,
}

_DEFAULT_OF = {
    FieldType.INT: 0,
    FieldType.DOUBLE: 0.0,
    FieldType.STRING: "",
    FieldType.BOOL: False,
}


@dataclass(frozen=True)
class FieldDef:
    """One field of a record schema."""

    name: str
    ftype: FieldType
    record: Optional["RecordSchema"] = None      # for RECORD_ARRAY fields
    default: Optional[object] = None

    def __post_init__(self) -> None:
        if self.ftype is FieldType.RECORD_ARRAY and self.record is None:
            raise SchemaEvolutionError(f"field {self.name}: record[] needs a schema")
        if self.ftype is not FieldType.RECORD_ARRAY and self.record is not None:
            raise SchemaEvolutionError(f"field {self.name}: only record[] nests")

    def default_value(self) -> object:
        if self.ftype is FieldType.RECORD_ARRAY:
            return []
        if self.default is not None:
            return self.default
        return _DEFAULT_OF[self.ftype]


@dataclass(frozen=True)
class RecordSchema:
    """An ordered list of fields; the root record also names a primary key."""

    name: str
    fields: Tuple[FieldDef, ...]
    primary_key: Optional[str] = None

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise SchemaEvolutionError(f"record {self.name}: duplicate fields")
        if self.primary_key is not None and self.primary_key not in names:
            raise SchemaEvolutionError(
                f"record {self.name}: unknown primary key {self.primary_key!r}")

    def field_map(self) -> Dict[str, FieldDef]:
        return {f.name: f for f in self.fields}

    def field_count_recursive(self) -> int:
        total = len(self.fields)
        for f in self.fields:
            if f.record is not None:
                total += f.record.field_count_recursive()
        return total

    # -- validation -----------------------------------------------------------

    def validate(self, obj: dict, path: str = "") -> None:
        """Raise :class:`SchemaValidationError` unless ``obj`` conforms."""
        if not isinstance(obj, dict):
            raise SchemaValidationError(f"{path or self.name}: expected a record")
        known = self.field_map()
        extra = set(obj) - set(known)
        if extra:
            raise SchemaValidationError(
                f"{path or self.name}: unknown fields {sorted(extra)}")
        for fdef in self.fields:
            where = f"{path}.{fdef.name}" if path else fdef.name
            if fdef.name not in obj:
                raise SchemaValidationError(f"{where}: missing")
            value = obj[fdef.name]
            if fdef.ftype is FieldType.RECORD_ARRAY:
                if not isinstance(value, list):
                    raise SchemaValidationError(f"{where}: expected an array")
                for i, item in enumerate(value):
                    fdef.record.validate(item, f"{where}[{i}]")
            else:
                expected = _PY_OF[fdef.ftype]
                if fdef.ftype is not FieldType.BOOL and isinstance(value, bool):
                    raise SchemaValidationError(f"{where}: bool is not {fdef.ftype.value}")
                if not isinstance(value, expected):
                    raise SchemaValidationError(
                        f"{where}: {type(value).__name__} is not {fdef.ftype.value}")

    def new_object(self, **overrides: object) -> dict:
        """An object of this schema with every field defaulted."""
        obj = {f.name: f.default_value() for f in self.fields}
        obj.update(overrides)
        self.validate(obj)
        return obj


def check_evolution(old: RecordSchema, new: RecordSchema) -> List[str]:
    """Describe how ``new`` evolves ``old``; raise if the change is illegal.

    Legal: appending fields (at any level).  Illegal: deleting fields,
    re-ordering fields, changing a field's type.  Returns a human-readable
    change list (used by the CN's schema validation step).
    """
    changes: List[str] = []
    _check_record(old, new, "", changes)
    return changes


def _check_record(old: RecordSchema, new: RecordSchema, path: str,
                  changes: List[str]) -> None:
    if len(new.fields) < len(old.fields):
        removed = [f.name for f in old.fields[len(new.fields):]]
        raise SchemaEvolutionError(
            f"{path or 'root'}: deleting fields is not allowed ({removed})")
    for i, old_field in enumerate(old.fields):
        new_field = new.fields[i]
        where = f"{path}.{old_field.name}" if path else old_field.name
        if new_field.name != old_field.name:
            raise SchemaEvolutionError(
                f"{where}: re-ordering or renaming fields is not allowed "
                f"(position {i} is now {new_field.name!r})")
        if new_field.ftype is not old_field.ftype:
            raise SchemaEvolutionError(
                f"{where}: changing field type "
                f"{old_field.ftype.value} -> {new_field.ftype.value} is not allowed")
        if old_field.record is not None:
            _check_record(old_field.record, new_field.record, where, changes)
    for new_field in new.fields[len(old.fields):]:
        where = f"{path}.{new_field.name}" if path else new_field.name
        changes.append(f"add {where} ({new_field.ftype.value})")


def upgrade_object(obj: dict, old: RecordSchema, new: RecordSchema) -> dict:
    """Convert an object one version up: fill appended fields with defaults."""
    out: dict = {}
    for i, new_field in enumerate(new.fields):
        if i < len(old.fields):
            value = obj[new_field.name]
            if new_field.record is not None:
                old_field = old.fields[i]
                value = [upgrade_object(item, old_field.record, new_field.record)
                         for item in value]
            out[new_field.name] = value
        else:
            out[new_field.name] = new_field.default_value()
    return out


def downgrade_object(obj: dict, new: RecordSchema, old: RecordSchema) -> dict:
    """Convert an object one version down: drop the appended fields."""
    out: dict = {}
    for i, old_field in enumerate(old.fields):
        value = obj[old_field.name]
        if old_field.record is not None:
            new_field = new.fields[i]
            value = [downgrade_object(item, new_field.record, old_field.record)
                     for item in value]
        out[old_field.name] = value
    return out


@dataclass(frozen=True)
class SchemaVersion:
    version: int
    schema: RecordSchema


class SchemaRegistry:
    """The CN-side version chain for one object type (Fig. 8 / Fig. 9).

    Versions register in order; each registration is validated against its
    predecessor.  ``convert`` moves an object between versions; by default
    only adjacent versions convert (the paper's U1/D1 cells — everything
    else is X), with an opt-in ``allow_multi_step`` that chains adjacent
    conversions (an extension the paper's matrix marks unsupported).
    """

    def __init__(self, name: str, allow_multi_step: bool = False):
        self.name = name
        self.allow_multi_step = allow_multi_step
        self._versions: List[SchemaVersion] = []
        self._by_version: Dict[int, int] = {}     # version -> chain position

    def register(self, version: int, schema: RecordSchema) -> List[str]:
        """Validate against the latest version and append to the chain."""
        if version in self._by_version:
            raise SchemaEvolutionError(f"{self.name}: version {version} exists")
        if self._versions and version <= self._versions[-1].version:
            raise SchemaEvolutionError(
                f"{self.name}: versions must ascend "
                f"({version} after {self._versions[-1].version})")
        changes: List[str] = []
        if self._versions:
            changes = check_evolution(self._versions[-1].schema, schema)
        self._by_version[version] = len(self._versions)
        self._versions.append(SchemaVersion(version, schema))
        return changes

    def schema(self, version: int) -> RecordSchema:
        try:
            return self._versions[self._by_version[version]].schema
        except KeyError:
            raise SchemaEvolutionError(
                f"{self.name}: unknown version {version}") from None

    def versions(self) -> List[int]:
        return [v.version for v in self._versions]

    @property
    def latest_version(self) -> int:
        if not self._versions:
            raise SchemaEvolutionError(f"{self.name}: no versions registered")
        return self._versions[-1].version

    def can_convert(self, from_version: int, to_version: int) -> bool:
        if from_version == to_version:
            return True
        if from_version not in self._by_version or to_version not in self._by_version:
            return False
        distance = abs(self._by_version[to_version] - self._by_version[from_version])
        return distance == 1 or self.allow_multi_step

    def conversion_matrix(self) -> Dict[Tuple[int, int], str]:
        """The Fig. 8 matrix: (from, to) -> 'U' / 'D' / 'X' / '-'.

        U: one-step upgrade, D: one-step downgrade, X: unsupported.
        """
        matrix: Dict[Tuple[int, int], str] = {}
        versions = self.versions()
        for a in versions:
            for b in versions:
                if a == b:
                    matrix[(a, b)] = "-"
                elif self.can_convert(a, b):
                    matrix[(a, b)] = "U" if self._by_version[b] > self._by_version[a] else "D"
                else:
                    matrix[(a, b)] = "X"
        return matrix

    def convert(self, obj: dict, from_version: int, to_version: int,
                ) -> Tuple[dict, int]:
        """Convert ``obj`` between versions.

        Returns ``(converted_object, fields_touched)`` — the field count is
        what the cost model charges for the conversion.
        """
        if from_version == to_version:
            return obj, 0
        if not self.can_convert(from_version, to_version):
            raise SchemaEvolutionError(
                f"{self.name}: conversion {from_version} -> {to_version} is "
                f"not supported (X in the conversion matrix)")
        pos_from = self._by_version[from_version]
        pos_to = self._by_version[to_version]
        step = 1 if pos_to > pos_from else -1
        current = obj
        touched = 0
        pos = pos_from
        while pos != pos_to:
            src = self._versions[pos].schema
            dst = self._versions[pos + step].schema
            if step > 0:
                current = upgrade_object(current, src, dst)
            else:
                current = downgrade_object(current, src, dst)
            touched += max(src.field_count_recursive(),
                           dst.field_count_recursive())
            pos += step
        return current, touched
