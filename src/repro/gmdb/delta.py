"""Delta objects.

"Data updates and schema evolution happen on delta objects instead of whole
objects.  Similar is true when syncing data between clients and DNs.  Such
an approach achieves better performance and consumes less network
bandwidth." (Sec. III-B)

A delta is an ordered list of operations addressed by *field paths* —
tuples of field names and array indexes, e.g. ``("bearers", 2, "qos")``:

* ``set``    — assign a scalar field,
* ``append`` — append a record to a record-array,
* ``remove`` — remove the record at an array index.

``diff`` computes a minimal delta between two objects of the same schema;
``apply_delta`` replays one; ``wire_size`` estimates serialized bytes for
the Fig. 11 bandwidth comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.errors import SyncError

Path = Tuple[object, ...]


@dataclass(frozen=True)
class DeltaOp:
    op: str          # 'set' | 'append' | 'remove'
    path: Path
    value: Optional[object] = None

    def wire_size(self) -> int:
        """Approximate serialized size in bytes."""
        path_bytes = sum(len(str(p)) + 1 for p in self.path)
        value_bytes = len(repr(self.value)) if self.value is not None else 0
        return 1 + path_bytes + value_bytes


@dataclass(frozen=True)
class Delta:
    ops: Tuple[DeltaOp, ...]

    def __len__(self) -> int:
        return len(self.ops)

    def wire_size(self) -> int:
        return 8 + sum(op.wire_size() for op in self.ops)

    @property
    def empty(self) -> bool:
        return not self.ops


def object_wire_size(obj: object) -> int:
    """Approximate full-object serialized size (JSON-ish)."""
    if isinstance(obj, dict):
        return 2 + sum(len(k) + 3 + object_wire_size(v) for k, v in obj.items())
    if isinstance(obj, list):
        return 2 + sum(1 + object_wire_size(v) for v in obj)
    return len(repr(obj))


def diff(old: dict, new: dict) -> Delta:
    """Field-level delta turning ``old`` into ``new`` (same schema version)."""
    ops: List[DeltaOp] = []
    _diff_record(old, new, (), ops)
    return Delta(tuple(ops))


def _diff_record(old: dict, new: dict, path: Path, ops: List[DeltaOp]) -> None:
    for key, new_value in new.items():
        old_value = old.get(key)
        if isinstance(new_value, list):
            _diff_array(old_value if isinstance(old_value, list) else [],
                        new_value, path + (key,), ops)
        elif new_value != old_value:
            ops.append(DeltaOp("set", path + (key,), new_value))


def _diff_array(old: list, new: list, path: Path, ops: List[DeltaOp]) -> None:
    common = min(len(old), len(new))
    for i in range(common):
        _diff_record(old[i], new[i], path + (i,), ops)
    for i in range(common, len(new)):
        ops.append(DeltaOp("append", path, new[i]))
    # Removals run back-to-front so earlier indexes stay valid on replay.
    for i in range(len(old) - 1, common - 1, -1):
        ops.append(DeltaOp("remove", path + (i,)))


def apply_delta(obj: dict, delta: Delta) -> dict:
    """Return a new object with ``delta`` applied (input is not mutated)."""
    import copy

    out = copy.deepcopy(obj)
    for op in delta.ops:
        _apply_op(out, op)
    return out


def _apply_op(obj: dict, op: DeltaOp) -> None:
    if op.op == "set":
        parent, last = _navigate(obj, op.path)
        parent[last] = op.value
    elif op.op == "append":
        target = _resolve(obj, op.path)
        if not isinstance(target, list):
            raise SyncError(f"append target {op.path!r} is not an array")
        target.append(op.value)
    elif op.op == "remove":
        parent, last = _navigate(obj, op.path)
        if not isinstance(parent, list) or not isinstance(last, int):
            raise SyncError(f"remove target {op.path!r} is not an array index")
        if not (0 <= last < len(parent)):
            raise SyncError(f"remove index {last} out of range at {op.path!r}")
        del parent[last]
    else:
        raise SyncError(f"unknown delta op {op.op!r}")


def _navigate(obj: dict, path: Path):
    if not path:
        raise SyncError("empty delta path")
    current: object = obj
    for part in path[:-1]:
        current = _step(current, part, path)
    return current, path[-1]


def _resolve(obj: dict, path: Path):
    current: object = obj
    for part in path:
        current = _step(current, part, path)
    return current


def _step(current: object, part: object, path: Path):
    if isinstance(part, int):
        if not isinstance(current, list) or not (0 <= part < len(current)):
            raise SyncError(f"bad array index {part} in path {path!r}")
        return current[part]
    if not isinstance(current, dict) or part not in current:
        raise SyncError(f"bad field {part!r} in path {path!r}")
    return current[part]


def project_delta(delta: Delta, schema_fields: dict) -> Delta:
    """Filter a delta down to the fields a schema version knows.

    Used when pushing updates to a subscriber on an *older* schema version:
    operations touching appended (newer) fields are dropped, mirroring the
    downgrade conversion on whole objects.  ``schema_fields`` is a nested
    dict of known field names: {field: None | nested dict for record arrays}.
    """
    kept = []
    for op in delta.ops:
        if _path_known(op.path, schema_fields):
            kept.append(op)
    return Delta(tuple(kept))


def _path_known(path: Path, fields: dict) -> bool:
    node: object = fields
    for part in path:
        if isinstance(part, int):
            continue  # array index: stay at the same schema node
        if not isinstance(node, dict) or part not in node:
            return False
        node = node[part]
    return True


def schema_field_tree(schema) -> dict:
    """Build the nested field-name tree ``project_delta`` consumes."""
    tree: dict = {}
    for fdef in schema.fields:
        if fdef.record is not None:
            tree[fdef.name] = schema_field_tree(fdef.record)
        else:
            tree[fdef.name] = None
    return tree
