"""GMDB data nodes.

A data node stores tree-model objects in memory, one copy per key, each
tagged with the schema version it was last written under.  Reads convert on
the fly to the requesting client's version (upgrade or downgrade schema
evolution, Fig. 9); writes arrive as delta objects; subscribers receive
version-projected deltas (the pub/sub interface of Fig. 7).

Durability follows the paper's trade-off: GMDB "only asynchronously flushes
data to disk periodically" — modeled by a dirty set and an explicit
``flush`` that simulates the background flusher.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.common.errors import SchemaEvolutionError, StorageError
from repro.gmdb.delta import (
    Delta,
    apply_delta,
    diff,
    object_wire_size,
    project_delta,
    schema_field_tree,
)
from repro.gmdb.schema import SchemaRegistry


@dataclass
class StoredObject:
    key: object
    obj: dict
    version: int
    generation: int = 0      # bumps on every write (cache coherence)


@dataclass
class Notification:
    """One pub/sub push to a subscriber."""

    client_id: str
    key: object
    delta: Delta
    generation: int
    writer_version: int


@dataclass
class Subscription:
    client_id: str
    version: int
    callback: Optional[Callable[[Notification], None]] = None


class GmdbDataNode:
    """One in-memory shard of a GMDB object type."""

    def __init__(self, node_id: str, registry: SchemaRegistry):
        self.node_id = node_id
        self.registry = registry
        self._objects: Dict[object, StoredObject] = {}
        self._subs: Dict[object, List[Subscription]] = {}
        self._dirty: Set[object] = set()
        self._flushed_generation: Dict[object, int] = {}
        self.notifications_sent = 0
        self.conversion_fields = 0       # fields touched by read conversions

    # -- object access ------------------------------------------------------

    def put(self, key: object, obj: dict, version: int) -> List[Notification]:
        """Create or replace a whole object at ``version``."""
        schema = self.registry.schema(version)
        schema.validate(obj)
        existing = self._objects.get(key)
        if existing is None:
            stored = StoredObject(key, dict(obj), version)
            self._objects[key] = stored
            delta = diff(schema.new_object(), obj)
        else:
            old_in_writer, _ = self.registry.convert(
                existing.obj, existing.version, version)
            delta = diff(old_in_writer, obj)
            existing.obj = dict(obj)
            existing.version = version
            existing.generation += 1
            stored = existing
        self._dirty.add(key)
        return self._notify(key, delta, version, stored.generation)

    def get(self, key: object, client_version: int) -> Tuple[dict, int, int]:
        """Read an object in the client's schema version.

        Returns ``(object, generation, conversion_fields)``; conversion
        happens "before returning data from the DNs to the client".
        """
        stored = self._objects.get(key)
        if stored is None:
            raise StorageError(f"{self.node_id}: no object {key!r}")
        converted, touched = self.registry.convert(
            stored.obj, stored.version, client_version)
        self.conversion_fields += touched
        return converted, stored.generation, touched

    def exists(self, key: object) -> bool:
        return key in self._objects

    def stored_version(self, key: object) -> int:
        stored = self._objects.get(key)
        if stored is None:
            raise StorageError(f"{self.node_id}: no object {key!r}")
        return stored.version

    def apply(self, key: object, delta: Delta,
              writer_version: int) -> Tuple[int, List[Notification]]:
        """Apply a client delta (the normal update path).

        If the writer runs a *newer* schema than the stored copy, the stored
        object upgrades first (stored version only moves forward); an older
        writer's delta applies directly, because evolution only appends
        fields, so every old path still exists.  Returns the conversion
        field count and the pub/sub notifications.
        """
        stored = self._objects.get(key)
        if stored is None:
            raise StorageError(f"{self.node_id}: no object {key!r}")
        touched = 0
        if writer_version != stored.version:
            if not self.registry.can_convert(stored.version, writer_version):
                raise SchemaEvolutionError(
                    f"{self.node_id}: cannot apply v{writer_version} delta to "
                    f"v{stored.version} object")
            if _position(self.registry, writer_version) > _position(
                    self.registry, stored.version):
                stored.obj, touched = self.registry.convert(
                    stored.obj, stored.version, writer_version)
                stored.version = writer_version
        new_obj = apply_delta(stored.obj, delta)
        self.registry.schema(stored.version).validate(new_obj)
        stored.obj = new_obj
        stored.generation += 1
        self._dirty.add(key)
        return touched, self._notify(key, delta, writer_version,
                                     stored.generation)

    def delete(self, key: object) -> None:
        self._objects.pop(key, None)
        self._subs.pop(key, None)
        self._dirty.discard(key)

    def object_count(self) -> int:
        return len(self._objects)

    def memory_bytes(self) -> int:
        return sum(object_wire_size(s.obj) for s in self._objects.values())

    # -- pub/sub -----------------------------------------------------------------

    def subscribe(self, key: object, client_id: str, version: int,
                  callback: Optional[Callable[[Notification], None]] = None) -> None:
        subs = self._subs.setdefault(key, [])
        subs[:] = [s for s in subs if s.client_id != client_id]
        subs.append(Subscription(client_id, version, callback))

    def unsubscribe(self, key: object, client_id: str) -> None:
        subs = self._subs.get(key)
        if subs:
            subs[:] = [s for s in subs if s.client_id != client_id]

    def _notify(self, key: object, delta: Delta, writer_version: int,
                generation: int) -> List[Notification]:
        out: List[Notification] = []
        for sub in self._subs.get(key, ()):
            pushed = delta
            if _position(self.registry, sub.version) < _position(
                    self.registry, writer_version):
                # Subscriber on an older version: drop ops on appended fields
                # (the delta analogue of downgrade conversion).
                tree = schema_field_tree(self.registry.schema(sub.version))
                pushed = project_delta(delta, tree)
            if pushed.empty:
                continue
            note = Notification(sub.client_id, key, pushed, generation,
                                writer_version)
            out.append(note)
            self.notifications_sent += 1
            if sub.callback is not None:
                sub.callback(note)
        return out

    # -- durability (asynchronous flush) ----------------------------------------

    @property
    def dirty_count(self) -> int:
        return len(self._dirty)

    def flush(self) -> int:
        """Simulate the periodic background flush; returns objects flushed."""
        flushed = 0
        for key in list(self._dirty):
            stored = self._objects.get(key)
            if stored is not None:
                self._flushed_generation[key] = stored.generation
                flushed += 1
            self._dirty.discard(key)
        return flushed

    def unflushed_loss_on_crash(self) -> int:
        """Objects whose latest generation would be lost by a crash now.

        GMDB consciously accepts this window ("limited cases of data loss
        can be compensated through application logic").
        """
        loss = 0
        for key, stored in self._objects.items():
            if self._flushed_generation.get(key, -1) != stored.generation:
                loss += 1
        return loss


def _position(registry: SchemaRegistry, version: int) -> int:
    return registry.versions().index(version)
