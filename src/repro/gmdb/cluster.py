"""The GMDB cluster (Fig. 7) and its clients (Fig. 9 / Fig. 10).

* **Coordinator (CN)** — "global unified metadata management": schema
  registration is validated here and dispatched to the data nodes.
* **Data nodes (DN)** — hash-sharded object storage
  (:class:`~repro.gmdb.store.GmdbDataNode`).
* **Driver / client** — the KV interface of the tree model with a local
  cache in the client's own schema version; queries and DML go *directly*
  to DNs, "without involvement of CNs".

All service times are charged to a cost accumulator using the Fig. 11
environment model (10 Gbps network, in-memory ops), so benchmarks report
deterministic simulated latencies and bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import ConfigError, SchemaEvolutionError, StorageError
from repro.gmdb.delta import Delta, apply_delta, diff, object_wire_size
from repro.gmdb.schema import RecordSchema, SchemaRegistry
from repro.gmdb.store import GmdbDataNode, Notification
from repro.net.latency import GmdbCostModel
from repro.storage.table import shard_of_value


@dataclass
class GmdbMetrics:
    """Simulated-time and bandwidth accounting for one cluster."""

    busy_us: float = 0.0
    bytes_sent: int = 0
    reads: int = 0
    writes: int = 0
    conversions: int = 0
    notifications: int = 0

    def charge(self, service_us: float, size_bytes: int = 0) -> float:
        self.busy_us += service_us
        self.bytes_sent += size_bytes
        return service_us

    def ops_per_second(self) -> float:
        ops = self.reads + self.writes
        if self.busy_us <= 0:
            return 0.0
        return ops / (self.busy_us / 1_000_000.0)


class GmdbCluster:
    """CNs + DNs for one object type (e.g. MME session data)."""

    def __init__(self, num_dns: int = 2, object_type: str = "session",
                 cost: Optional[GmdbCostModel] = None,
                 allow_multi_step: bool = False):
        if num_dns <= 0:
            raise ConfigError("num_dns must be positive")
        self.object_type = object_type
        self.registry = SchemaRegistry(object_type, allow_multi_step)
        self.dns = [GmdbDataNode(f"gmdb-dn{i}", self.registry)
                    for i in range(num_dns)]
        self.cost = cost if cost is not None else GmdbCostModel()
        self.metrics = GmdbMetrics()
        self._clients: Dict[str, "GmdbClient"] = {}

    # -- CN: schema management (Fig. 9 upper path) ----------------------------

    def register_schema(self, version: int, schema: RecordSchema) -> List[str]:
        """Client submits a new schema to the CN; CN validates + dispatches.

        Registration is online: no data is rewritten, no traffic stops.
        """
        changes = self.registry.register(version, schema)
        # Dispatch to DNs is implicit: they share the registry object, which
        # mirrors "CNs validate S and dispatch it to Data Nodes".
        return changes

    # -- routing --------------------------------------------------------------

    def node_for(self, key: object) -> GmdbDataNode:
        return self.dns[shard_of_value(key, len(self.dns))]

    # -- client management ---------------------------------------------------------

    def connect(self, client_id: str, version: int) -> "GmdbClient":
        if client_id in self._clients:
            raise ConfigError(f"client {client_id!r} already connected")
        client = GmdbClient(self, client_id, version)
        self._clients[client_id] = client
        return client

    def _deliver(self, note: Notification) -> None:
        client = self._clients.get(note.client_id)
        if client is not None:
            client._on_notification(note)
            self.metrics.notifications += 1
            self.metrics.charge(
                self.cost.rtt_us / 2
                + self.cost.byte_wire_us * note.delta.wire_size(),
                note.delta.wire_size(),
            )

    # -- maintenance -----------------------------------------------------------------

    def flush_all(self) -> int:
        return sum(dn.flush() for dn in self.dns)

    def object_count(self) -> int:
        return sum(dn.object_count() for dn in self.dns)


class GmdbClient:
    """A GMDB driver instance pinned to one schema version (Fig. 10)."""

    def __init__(self, cluster: GmdbCluster, client_id: str, version: int):
        self.cluster = cluster
        self.client_id = client_id
        self.version = version
        self._cache: Dict[object, dict] = {}
        self._cache_generation: Dict[object, int] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.deltas_received = 0

    @property
    def schema(self) -> RecordSchema:
        return self.cluster.registry.schema(self.version)

    # -- KV interface ---------------------------------------------------------

    def create(self, key: object, obj: dict) -> None:
        """Create an object; stored at this client's schema version."""
        self.schema.validate(obj)
        dn = self.cluster.node_for(key)
        if dn.exists(key):
            raise StorageError(f"object {key!r} already exists")
        cost = self.cluster.cost
        size = object_wire_size(obj)
        self.cluster.metrics.writes += 1
        self.cluster.metrics.charge(
            cost.rtt_us + cost.byte_wire_us * size + cost.kv_write_us, size)
        for note in dn.put(key, obj, self.version):
            self.cluster._deliver(note)
        self._cache[key] = dict(obj)

    def read(self, key: object) -> dict:
        """Read through the local cache; misses fetch + convert at the DN."""
        if key in self._cache:
            self.cache_hits += 1
            return dict(self._cache[key])
        self.cache_misses += 1
        dn = self.cluster.node_for(key)
        cost = self.cluster.cost
        obj, generation, touched = dn.get(key, self.version)
        size = object_wire_size(obj)
        self.cluster.metrics.reads += 1
        if touched:
            self.cluster.metrics.conversions += 1
        self.cluster.metrics.charge(
            cost.rtt_us + cost.kv_read_us
            + cost.convert_field_us * touched
            + cost.byte_wire_us * size,
            size,
        )
        self._cache[key] = obj
        self._cache_generation[key] = generation
        return dict(obj)

    def update(self, key: object, mutate: Callable[[dict], None]) -> Delta:
        """Read-modify-write via a delta object (the paper's update path)."""
        current = self.read(key)
        updated = apply_mutation(current, mutate)
        self.schema.validate(updated)
        delta = diff(current, updated)
        if delta.empty:
            return delta
        dn = self.cluster.node_for(key)
        cost = self.cluster.cost
        size = delta.wire_size()
        self.cluster.metrics.writes += 1
        touched, notes = dn.apply(key, delta, self.version)
        if touched:
            self.cluster.metrics.conversions += 1
        self.cluster.metrics.charge(
            cost.rtt_us + cost.kv_write_us
            + cost.convert_field_us * touched
            + cost.byte_wire_us * size
            + cost.delta_apply_field_us * len(delta),
            size,
        )
        self._cache[key] = updated
        for note in notes:
            self.cluster._deliver(note)
        return delta

    def write_full(self, key: object, obj: dict) -> None:
        """Whole-object replacement (the baseline Fig. 11 compares against)."""
        self.schema.validate(obj)
        dn = self.cluster.node_for(key)
        cost = self.cluster.cost
        size = object_wire_size(obj)
        self.cluster.metrics.writes += 1
        self.cluster.metrics.charge(
            cost.rtt_us + cost.kv_write_us + cost.byte_wire_us * size, size)
        for note in dn.put(key, obj, self.version):
            self.cluster._deliver(note)
        self._cache[key] = dict(obj)

    # -- tree-model field-path convenience API -------------------------------

    def read_field(self, key: object, *path: object) -> object:
        """Read one field by path, e.g. ``read_field(k, "bearers", 0, "qci")``."""
        current: object = self.read(key)
        for part in path:
            if isinstance(part, int):
                current = current[part]           # type: ignore[index]
            else:
                current = current[part]           # type: ignore[index]
        return current

    def set_field(self, key: object, path: Tuple[object, ...],
                  value: object) -> Delta:
        """Set one field by path through the delta update path."""
        if not path:
            raise StorageError("set_field needs a non-empty path")

        def mutate(obj: dict) -> None:
            current: object = obj
            for part in path[:-1]:
                current = current[part]           # type: ignore[index]
            current[path[-1]] = value             # type: ignore[index]

        return self.update(key, mutate)

    def append_record(self, key: object, array_field: str,
                      record: dict) -> Delta:
        """Append to a record array (e.g. add a bearer to a session)."""
        return self.update(
            key, lambda obj: obj[array_field].append(dict(record)))

    def subscribe(self, key: object) -> None:
        """Subscribe to future changes of ``key`` in this client's version."""
        self.cluster.node_for(key).subscribe(key, self.client_id, self.version)

    def unsubscribe(self, key: object) -> None:
        self.cluster.node_for(key).unsubscribe(key, self.client_id)

    def invalidate(self, key: object) -> None:
        self._cache.pop(key, None)
        self._cache_generation.pop(key, None)

    def cached(self, key: object) -> Optional[dict]:
        value = self._cache.get(key)
        return dict(value) if value is not None else None

    # -- pub/sub delivery -----------------------------------------------------------

    def _on_notification(self, note: Notification) -> None:
        self.deltas_received += 1
        cached = self._cache.get(note.key)
        if cached is None:
            return
        try:
            self._cache[note.key] = apply_delta(cached, note.delta)
            self._cache_generation[note.key] = note.generation
        except Exception:
            # A delta this version cannot replay: drop the cache entry and
            # re-fetch (with conversion) on the next read.
            self.invalidate(note.key)


def apply_mutation(obj: dict, mutate: Callable[[dict], None]) -> dict:
    import copy

    updated = copy.deepcopy(obj)
    mutate(updated)
    return updated
