"""Canned OLAP reporting workloads (Sec. II-C's target).

"We believe that reporting workloads (canned queries) are the most common
in real life OLAP workloads" — the learning optimizer's exact-match design
is built for them.  This module synthesizes such a workload:

* a star-ish schema (``sales`` fact, ``customers`` dimension) whose columns
  are deliberately *correlated* (region determines status skew), defeating
  the independence assumption classical estimators rely on;
* a fixed set of parameterized report templates whose instances repeat —
  the "canned" property;
* a deterministic query stream mixing template instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.cluster.mpp import MppCluster
from repro.common.rng import make_rng
from repro.sql.engine import SqlEngine

REGIONS = ("north", "south", "east", "west")
SEGMENTS = ("vip", "mass")

REPORT_TEMPLATES = (
    # Daily ops dashboard: count of gold orders per region.
    "select region, count(*) n from sales where status = '{status}' "
    "group by region order by region",
    # Regional drill-down with the correlated predicate pair.
    "select count(*) from sales where region = '{region}' "
    "and status = '{status}'",
    # Fact-dimension join for the segment report.
    "select c.segment, sum(s.amount) total from sales s, customers c "
    "where s.cust_id = c.cust_id and s.region = '{region}' "
    "group by c.segment order by c.segment",
    # The top-spenders report.
    "select s.cust_id, sum(s.amount) total from sales s, customers c "
    "where s.cust_id = c.cust_id and c.segment = 'vip' "
    "and s.status = '{status}' group by s.cust_id "
    "order by total desc limit 10",
)


@dataclass
class ReportingConfig:
    sales_rows: int = 4000
    customers: int = 400
    #: Fraction of 'north' sales that are gold (vs ~2% elsewhere): the
    #: correlation the classical estimator cannot see.
    north_gold_rate: float = 0.9
    seed: int = 31


def load_reporting_schema(engine: SqlEngine,
                          config: Optional[ReportingConfig] = None) -> None:
    """Create and populate the correlated star schema."""
    config = config if config is not None else ReportingConfig()
    rng = make_rng(config.seed)
    engine.execute(
        "create table sales (sale_id int primary key, cust_id int, "
        "region text, status text, amount double)")
    engine.execute(
        "create table customers (cust_id int primary key, segment text)")
    rows = []
    for i in range(config.sales_rows):
        region = REGIONS[i % len(REGIONS)]
        if region == "north":
            gold = rng.random() < config.north_gold_rate
        else:
            gold = rng.random() < 0.02
        rows.append(
            f"({i}, {rng.randrange(config.customers)}, '{region}', "
            f"'{'gold' if gold else 'silver'}', {rng.uniform(1, 500):.2f})")
    engine.execute("insert into sales values " + ",".join(rows))
    customers = [
        f"({i}, '{'vip' if i % 20 == 0 else 'mass'}')"
        for i in range(config.customers)
    ]
    engine.execute("insert into customers values " + ",".join(customers))
    engine.execute("analyze")


class ReportingWorkload:
    """A deterministic stream of canned report instances."""

    def __init__(self, seed: int = 77,
                 regions: Sequence[str] = REGIONS,
                 statuses: Sequence[str] = ("gold", "silver")):
        self._rng = make_rng(seed)
        self.regions = list(regions)
        self.statuses = list(statuses)

    def instances(self) -> List[str]:
        """Every distinct query instance (the full canned catalog)."""
        out = []
        for template in REPORT_TEMPLATES:
            for region in self.regions:
                for status in self.statuses:
                    query = template.format(region=region, status=status)
                    if query not in out:
                        out.append(query)
        return out

    def stream(self, length: int) -> Iterator[str]:
        """A repeating stream: canned queries recur, as in production."""
        catalog = self.instances()
        for _ in range(length):
            yield catalog[self._rng.randrange(len(catalog))]


def run_reporting(engine: SqlEngine, queries: int = 40,
                  seed: int = 77) -> dict:
    """Execute a stream and summarize learning-optimizer behavior."""
    workload = ReportingWorkload(seed=seed)
    captured = 0
    for sql in workload.stream(queries):
        result = engine.execute(sql)
        if result.capture is not None:
            captured += result.capture.captured
    return {
        "queries": queries,
        "steps_captured": captured,
        "store_entries": len(engine.plan_store),
        "store_hits": engine.plan_store.hits,
        "feedback_hit_rate": (engine.plan_store.hits
                              / max(1, engine.plan_store.lookups)),
    }
