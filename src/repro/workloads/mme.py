"""Synthetic MME session data (Sec. III-B).

The paper's GMDB evaluation uses "real MME data": Mobility Management
Entity session objects of 5–10 KB, stored as tree-modeled JSON, with the
schema version chain V3 -> V5 -> V6 -> V7 -> V8 of Fig. 8 (each upgrade
"requires more fields to be added in the session data").

This module synthesizes the equivalent: a session record schema whose
successive versions append fields (top-level and nested), and a generator
producing sessions in the paper's size range.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.common.rng import make_rng, random_string
from repro.gmdb.delta import object_wire_size
from repro.gmdb.schema import FieldDef, FieldType, RecordSchema

#: The MME version chain of Fig. 8.
MME_VERSIONS: Tuple[int, ...] = (3, 5, 6, 7, 8)


def _bearer_schema(extra: int) -> RecordSchema:
    """The nested EPS-bearer record; ``extra`` appended fields per version."""
    fields = [
        FieldDef("bearer_id", FieldType.INT),
        FieldDef("qci", FieldType.INT),
        FieldDef("apn", FieldType.STRING),
        FieldDef("gtp_teid", FieldType.INT),
        FieldDef("bitrate_dl", FieldType.INT),
        FieldDef("bitrate_ul", FieldType.INT),
    ]
    for i in range(extra):
        fields.append(FieldDef(f"bearer_ext_{i}", FieldType.STRING))
    return RecordSchema("bearer", tuple(fields))


def mme_schema(version: int) -> RecordSchema:
    """The session schema at one of the Fig. 8 versions."""
    if version not in MME_VERSIONS:
        raise ValueError(f"version must be one of {MME_VERSIONS}")
    level = MME_VERSIONS.index(version)    # 0..4
    fields: List[FieldDef] = [
        FieldDef("imsi", FieldType.STRING),
        FieldDef("guti", FieldType.STRING),
        FieldDef("state", FieldType.STRING, default="REGISTERED"),
        FieldDef("tracking_area", FieldType.INT),
        FieldDef("enb_id", FieldType.INT),
        FieldDef("auth_vector", FieldType.STRING),
        FieldDef("last_seen_us", FieldType.INT),
        FieldDef("bearers", FieldType.RECORD_ARRAY, record=_bearer_schema(level)),
        FieldDef("history", FieldType.RECORD_ARRAY, record=RecordSchema(
            "event", (FieldDef("t_us", FieldType.INT),
                      FieldDef("kind", FieldType.STRING),
                      FieldDef("detail", FieldType.STRING)))),
    ]
    # Each version upgrade appends top-level feature fields, mirroring
    # "upgrading of MME from V3 to V5 to support a new feature requires
    # more fields to be added in the session data".
    feature_fields = {
        5: [FieldDef("volte_enabled", FieldType.BOOL),
            FieldDef("volte_profile", FieldType.STRING)],
        6: [FieldDef("nb_iot_mode", FieldType.BOOL),
            FieldDef("edrx_cycle", FieldType.INT)],
        7: [FieldDef("slice_id", FieldType.INT),
            FieldDef("slice_policy", FieldType.STRING)],
        8: [FieldDef("n26_interface", FieldType.BOOL),
            FieldDef("fallback_target", FieldType.STRING)],
    }
    for v in MME_VERSIONS[1:level + 1]:
        fields.extend(feature_fields[v])
    return RecordSchema("mme_session", tuple(fields), primary_key="imsi")


class MmeSessionGenerator:
    """Produces synthetic session objects at a given schema version."""

    def __init__(self, version: int, seed: int = 99,
                 target_bytes: Tuple[int, int] = (5_000, 10_000)):
        self.version = version
        self.schema = mme_schema(version)
        self._rng = make_rng(seed)
        self.target_bytes = target_bytes

    def imsi(self, index: int) -> str:
        return f"4600001{index:08d}"

    def session(self, index: int) -> Dict[str, object]:
        rng = self._rng
        obj = self.schema.new_object(
            imsi=self.imsi(index),
            guti=random_string(rng, 16),
            state=rng.choice(["REGISTERED", "IDLE", "CONNECTED"]),
            tracking_area=rng.randint(1, 5000),
            enb_id=rng.randint(1, 100000),
            auth_vector=random_string(rng, 64),
            last_seen_us=rng.randint(0, 10**12),
        )
        level = MME_VERSIONS.index(self.version)
        bearer_schema = _bearer_schema(level)
        for b in range(rng.randint(2, 4)):
            obj["bearers"].append(bearer_schema.new_object(
                bearer_id=b + 5,
                qci=rng.choice([1, 5, 8, 9]),
                apn=rng.choice(["internet", "ims", "mms"]),
                gtp_teid=rng.randint(1, 2**31),
                bitrate_dl=rng.choice([10, 50, 100, 300]) * 10**6,
                bitrate_ul=rng.choice([5, 25, 50, 100]) * 10**6,
            ))
        # Pad with history events until the object lands in the 5-10 KB band.
        lo, hi = self.target_bytes
        target = rng.randint(lo, hi)
        while object_wire_size(obj) < target:
            obj["history"].append({
                "t_us": rng.randint(0, 10**12),
                "kind": rng.choice(["ATTACH", "TAU", "HANDOVER", "PAGING",
                                    "SERVICE_REQ", "DETACH"]),
                "detail": random_string(rng, 96),
            })
        self.schema.validate(obj)
        return obj

    def sessions(self, count: int) -> List[Dict[str, object]]:
        return [self.session(i) for i in range(count)]


def touch_session(obj: Dict[str, object], rng: random.Random) -> None:
    """A typical small session update (mutates in place; used with
    :meth:`GmdbClient.update` to produce realistic deltas)."""
    obj["last_seen_us"] = int(obj["last_seen_us"]) + rng.randint(1, 10**6)
    obj["state"] = rng.choice(["REGISTERED", "IDLE", "CONNECTED"])
    if obj["bearers"]:
        bearer = obj["bearers"][rng.randrange(len(obj["bearers"]))]
        bearer["bitrate_dl"] = rng.choice([10, 50, 100, 300]) * 10**6
