"""Operation-granular interleaved transaction execution.

The OLTP driver replays whole transactions; this executor instead advances
a population of transactions *one operation at a time* in any caller-chosen
order — including through the middle of their two-phase commits.  It exists
to expose every interleaving the paper's protocol must survive (and powers
the property tests that hammer GTM-lite with random schedules plus a crash
at the end).

A transaction script is a list of blind writes (key, value) plus its commit
style; the executor tracks, per key, the order of *successful* heap writes
and which transactions ultimately committed, yielding an exact oracle for
the final visible state under first-updater-wins snapshot isolation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.mpp import MppCluster
from repro.cluster.recovery import resolve_in_doubt
from repro.common.errors import SerializationConflict, TransactionError


class Phase(enum.Enum):
    RUNNING = "running"
    PREPARED = "prepared"
    GTM_COMMITTED = "gtm_committed"
    DONE = "done"
    ABORTED = "aborted"


@dataclass
class TxnScript:
    """Blind writes to apply, in order."""

    writes: List[Tuple[int, int]]          # (key, value)
    multi_shard: bool = True
    table: str = "t"


@dataclass
class _Live:
    script: TxnScript
    txn: object = None
    steps_done: int = 0
    phase: Phase = Phase.RUNNING
    commit_steps: object = None
    confirms_left: List[int] = field(default_factory=list)
    successful_writes: List[Tuple[int, int]] = field(default_factory=list)


class InterleavedRun:
    """Drives a set of scripts through a cluster, one step per call."""

    def __init__(self, cluster: MppCluster, scripts: Sequence[TxnScript]):
        self.cluster = cluster
        self.session = cluster.session()
        self.live = [_Live(script) for script in scripts]
        #: Per-key append log of successful heap writes: (txn index, value).
        self.write_log: Dict[int, List[Tuple[int, int]]] = {}

    # -- stepping -----------------------------------------------------------

    def is_finished(self, index: int) -> bool:
        return self.live[index].phase in (Phase.DONE, Phase.ABORTED)

    @property
    def all_finished(self) -> bool:
        return all(self.is_finished(i) for i in range(len(self.live)))

    def step(self, index: int) -> Phase:
        """Advance transaction ``index`` by one operation."""
        state = self.live[index]
        if state.phase in (Phase.DONE, Phase.ABORTED):
            return state.phase
        try:
            self._advance(index, state)
        except SerializationConflict:
            self._abort(index, state)
        return state.phase

    def _advance(self, index: int, state: _Live) -> None:
        script = state.script
        if state.phase is Phase.RUNNING:
            if state.txn is None:
                state.txn = self.session.begin(multi_shard=script.multi_shard)
            if state.steps_done < len(script.writes):
                key, value = script.writes[state.steps_done]
                state.txn.update(script.table, key, {"v": value})
                self.write_log.setdefault(key, []).append((index, value))
                state.successful_writes.append((key, value))
                state.steps_done += 1
                return
            # All writes done: begin commit.
            if script.multi_shard:
                state.commit_steps = state.txn.commit_stepwise()
                state.commit_steps.prepare_all()
                state.phase = Phase.PREPARED
            else:
                state.txn.commit()
                state.phase = Phase.DONE
            return
        if state.phase is Phase.PREPARED:
            state.commit_steps.commit_at_gtm()
            state.confirms_left = list(state.commit_steps.pending_nodes)
            state.phase = Phase.GTM_COMMITTED
            return
        if state.phase is Phase.GTM_COMMITTED:
            if state.confirms_left:
                state.commit_steps.confirm_at(state.confirms_left.pop(0))
            if not state.confirms_left:
                state.commit_steps.finish()
                state.phase = Phase.DONE

    def _abort(self, index: int, state: _Live) -> None:
        if state.txn is not None:
            try:
                state.txn.abort()
            except TransactionError:
                pass
        # Conflicted writes never reached the heap; earlier successful ones
        # are rolled back by the abort.
        state.phase = Phase.ABORTED

    def run_schedule(self, schedule: Sequence[int]) -> None:
        """Apply a schedule; finished transactions' slots are skipped."""
        for index in schedule:
            if 0 <= index < len(self.live):
                self.step(index)

    # -- crash + recovery ---------------------------------------------------------

    def crash_and_recover(self) -> None:
        """Coordinator failure: abandon running txns, resolve in-doubt ones.

        Transactions past their GTM commit roll forward; prepared-only ones
        are presumed aborted; running ones abort like a dropped connection.
        """
        for index, state in enumerate(self.live):
            if state.phase is Phase.RUNNING:
                self._abort(index, state)
        resolve_in_doubt(self.cluster)
        for state in self.live:
            if state.phase is Phase.PREPARED:
                state.phase = Phase.ABORTED
            elif state.phase is Phase.GTM_COMMITTED:
                state.phase = Phase.DONE

    # -- the oracle ------------------------------------------------------------------

    def committed(self, index: int) -> bool:
        """Did transaction ``index`` (survive to) commit?

        A multi-shard transaction is committed once its GXID committed at
        the GTM (recovery rolls it forward); single-shard once its local
        commit ran.
        """
        return self.live[index].phase is Phase.DONE

    def expected_final_state(self, initial: Dict[int, int]) -> Dict[int, int]:
        """Last successful write per key among committed transactions."""
        state = dict(initial)
        for key, entries in self.write_log.items():
            for index, value in entries:
                if self.committed(index):
                    state[key] = value
        return state

    def actual_final_state(self, keys: Sequence[int],
                           table: str = "t") -> Dict[int, int]:
        reader = self.cluster.session().begin(multi_shard=True)
        state = {k: reader.read(table, k)["v"] for k in keys}
        reader.commit()
        return state
