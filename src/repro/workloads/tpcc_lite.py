"""TPC-C-lite: the modified TPC-C workload of the paper's Figure 3.

The paper "modified the TPC-C benchmark to issue 100% single-shard (SS) or
90% single-shard transactions (MS)".  The only workload property that
experiment depends on is the fraction of transactions that cross shards, so
this module provides a faithful-in-shape TPC-C subset:

* warehouse-sharded schema (warehouse, district, customer, stock,
  orders, order_line; item is replicated),
* NewOrder and Payment transaction profiles,
* a ``multi_shard_fraction`` knob: that fraction of transactions touch a
  *remote* warehouse (NewOrder with remote stock / Payment with a remote
  customer), the rest stay on the home warehouse's shard.

Primary keys are composite-encoded integers; every table carries a
``key_router`` so point operations route to the warehouse's shard.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator, List, Optional, Sequence

from repro.cluster.mpp import MppCluster, Session
from repro.common.rng import make_rng
from repro.storage.table import (Column, Distribution, Orientation,
                                 TableSchema)
from repro.storage.types import DataType

# Encoding strides for composite keys.
_DISTRICTS_PER_WAREHOUSE = 10
_CUSTOMERS_PER_DISTRICT = 30
_ITEMS = 100
_STOCK_STRIDE = 1_000_000
_ORDER_STRIDE = 10_000_000


def district_key(w_id: int, d_id: int) -> int:
    return w_id * _DISTRICTS_PER_WAREHOUSE + d_id


def customer_key(w_id: int, d_id: int, c_id: int) -> int:
    return (w_id * _DISTRICTS_PER_WAREHOUSE + d_id) * _CUSTOMERS_PER_DISTRICT + c_id


def stock_key(w_id: int, i_id: int) -> int:
    return w_id * _STOCK_STRIDE + i_id


def order_key(w_id: int, o_seq: int) -> int:
    return w_id * _ORDER_STRIDE + o_seq


def tpcc_schemas() -> List[TableSchema]:
    """The TPC-C-lite table set, warehouse-sharded."""

    def cols(*pairs) -> List[Column]:
        return [Column(name, data_type) for name, data_type in pairs]

    return [
        TableSchema(
            "warehouse",
            cols(("w_id", DataType.INT), ("w_ytd", DataType.DOUBLE),
                 ("w_name", DataType.TEXT)),
            primary_key="w_id",
        ),
        TableSchema(
            "district",
            cols(("d_key", DataType.INT), ("w_id", DataType.INT),
                 ("d_id", DataType.INT), ("d_ytd", DataType.DOUBLE),
                 ("d_next_o_id", DataType.INT)),
            primary_key="d_key",
            distribution_column="w_id",
            key_router=lambda k: k // _DISTRICTS_PER_WAREHOUSE,
        ),
        TableSchema(
            "customer",
            cols(("c_key", DataType.INT), ("w_id", DataType.INT),
                 ("d_id", DataType.INT), ("c_id", DataType.INT),
                 ("c_balance", DataType.DOUBLE), ("c_ytd_payment", DataType.DOUBLE),
                 ("c_name", DataType.TEXT)),
            primary_key="c_key",
            distribution_column="w_id",
            key_router=lambda k: k // (_DISTRICTS_PER_WAREHOUSE * _CUSTOMERS_PER_DISTRICT),
        ),
        TableSchema(
            "stock",
            cols(("s_key", DataType.INT), ("w_id", DataType.INT),
                 ("i_id", DataType.INT), ("s_quantity", DataType.INT),
                 ("s_ytd", DataType.INT)),
            primary_key="s_key",
            distribution_column="w_id",
            key_router=lambda k: k // _STOCK_STRIDE,
        ),
        TableSchema(
            "orders",
            cols(("o_key", DataType.INT), ("w_id", DataType.INT),
                 ("d_id", DataType.INT), ("c_id", DataType.INT),
                 ("o_ol_cnt", DataType.INT), ("o_entry_ts", DataType.TIMESTAMP)),
            primary_key="o_key",
            distribution_column="w_id",
            key_router=lambda k: k // _ORDER_STRIDE,
        ),
        TableSchema(
            "order_line",
            cols(("ol_key", DataType.INT), ("w_id", DataType.INT),
                 ("o_key", DataType.INT), ("ol_number", DataType.INT),
                 ("i_id", DataType.INT), ("ol_quantity", DataType.INT),
                 ("ol_amount", DataType.DOUBLE)),
            primary_key="ol_key",
            distribution_column="w_id",
            key_router=lambda k: k // (_ORDER_STRIDE * 100),
        ),
        TableSchema(
            "item",
            cols(("i_id", DataType.INT), ("i_name", DataType.TEXT),
                 ("i_price", DataType.DOUBLE)),
            primary_key="i_id",
            distribution=Distribution.REPLICATION,
        ),
    ]


def load_tpcc(cluster: MppCluster, num_warehouses: int, seed: int = 7,
              column_oriented: Sequence[str] = ()) -> None:
    """Populate the schema; runs outside cost tracking (bulk load).

    ``column_oriented`` names tables to create column-oriented instead of
    row-oriented — the HTAP mixed benchmark flips ``orders``/``order_line``
    so reporting scans run against the delta-merge column path while the
    TPC-C transaction profiles keep writing them.
    """
    rng = make_rng(seed)
    for schema in tpcc_schemas():
        if schema.name in column_oriented:
            schema = replace(schema, orientation=Orientation.COLUMN)
        cluster.create_table(schema)
    session = cluster.session(track_costs=False)

    txn = session.begin(multi_shard=True)
    for i_id in range(_ITEMS):
        txn.insert("item", {"i_id": i_id, "i_name": f"item-{i_id}",
                            "i_price": round(rng.uniform(1.0, 100.0), 2)})
    txn.commit()

    for w_id in range(num_warehouses):
        txn = session.begin(multi_shard=True)
        txn.insert("warehouse", {"w_id": w_id, "w_ytd": 0.0, "w_name": f"wh-{w_id}"})
        for d_id in range(_DISTRICTS_PER_WAREHOUSE):
            txn.insert("district", {
                "d_key": district_key(w_id, d_id), "w_id": w_id, "d_id": d_id,
                "d_ytd": 0.0, "d_next_o_id": 1,
            })
            for c_id in range(_CUSTOMERS_PER_DISTRICT):
                txn.insert("customer", {
                    "c_key": customer_key(w_id, d_id, c_id), "w_id": w_id,
                    "d_id": d_id, "c_id": c_id, "c_balance": 0.0,
                    "c_ytd_payment": 0.0, "c_name": f"cust-{w_id}-{d_id}-{c_id}",
                })
        for i_id in range(_ITEMS):
            txn.insert("stock", {
                "s_key": stock_key(w_id, i_id), "w_id": w_id, "i_id": i_id,
                "s_quantity": 1000, "s_ytd": 0,
            })
        txn.commit()


@dataclass
class TxnSpec:
    """One generated transaction: its body plus routing metadata."""

    kind: str
    multi_shard: bool
    body: Callable[[object], None]
    home_warehouse: int


class TpccLiteWorkload:
    """Generates NewOrder/Payment transaction specs.

    ``multi_shard_fraction`` is the paper's knob: 0.0 reproduces the "SS"
    series of Figure 3, 0.1 the "MS" (90% single-shard) series.
    """

    def __init__(self, num_warehouses: int, multi_shard_fraction: float = 0.0,
                 seed: int = 42, items_per_order: int = 5,
                 payment_weight: float = 0.5):
        if not (0.0 <= multi_shard_fraction <= 1.0):
            raise ValueError("multi_shard_fraction must be in [0, 1]")
        if num_warehouses < 1:
            raise ValueError("need at least one warehouse")
        if multi_shard_fraction > 0 and num_warehouses < 2:
            raise ValueError("multi-shard transactions need >= 2 warehouses")
        self.num_warehouses = num_warehouses
        self.multi_shard_fraction = multi_shard_fraction
        self.items_per_order = items_per_order
        self.payment_weight = payment_weight
        self._seed = seed
        self._order_seq: List[int] = [0] * num_warehouses

    def stream(self, home_warehouse: Optional[int] = None,
               seed_offset: int = 0) -> Iterator[TxnSpec]:
        """Infinite stream of transaction specs for one client terminal."""
        rng = make_rng(self._seed + 1_000_003 * seed_offset)
        while True:
            w_id = (home_warehouse if home_warehouse is not None
                    else rng.randrange(self.num_warehouses))
            remote = rng.random() < self.multi_shard_fraction
            if rng.random() < self.payment_weight:
                yield self._payment(rng, w_id, remote)
            else:
                yield self._new_order(rng, w_id, remote)

    # -- transaction profiles ------------------------------------------------

    def _payment(self, rng: random.Random, w_id: int, remote: bool) -> TxnSpec:
        d_id = rng.randrange(_DISTRICTS_PER_WAREHOUSE)
        amount = round(rng.uniform(1.0, 500.0), 2)
        if remote:
            c_w = rng.randrange(self.num_warehouses - 1)
            if c_w >= w_id:
                c_w += 1
        else:
            c_w = w_id
        c_id = rng.randrange(_CUSTOMERS_PER_DISTRICT)
        c_key = customer_key(c_w, d_id, c_id)

        def body(txn) -> None:
            wh = txn.read("warehouse", w_id)
            txn.update("warehouse", w_id, {"w_ytd": wh["w_ytd"] + amount})
            d_key = district_key(w_id, d_id)
            dist = txn.read("district", d_key)
            txn.update("district", d_key, {"d_ytd": dist["d_ytd"] + amount})
            cust = txn.read("customer", c_key)
            txn.update("customer", c_key, {
                "c_balance": cust["c_balance"] - amount,
                "c_ytd_payment": cust["c_ytd_payment"] + amount,
            })

        return TxnSpec("payment", remote, body, w_id)

    def _new_order(self, rng: random.Random, w_id: int, remote: bool) -> TxnSpec:
        d_id = rng.randrange(_DISTRICTS_PER_WAREHOUSE)
        c_id = rng.randrange(_CUSTOMERS_PER_DISTRICT)
        lines = []
        for n in range(self.items_per_order):
            i_id = rng.randrange(_ITEMS)
            supply_w = w_id
            if remote and n == 0:
                supply_w = rng.randrange(self.num_warehouses - 1)
                if supply_w >= w_id:
                    supply_w += 1
            lines.append((i_id, supply_w, rng.randint(1, 10)))
        self._order_seq[w_id] += 1
        o_seq = self._order_seq[w_id] * 1000 + rng.randrange(1000)
        o_key = order_key(w_id, o_seq)
        entry_ts = o_seq

        def body(txn) -> None:
            d_key = district_key(w_id, d_id)
            dist = txn.read("district", d_key)
            txn.update("district", d_key, {"d_next_o_id": dist["d_next_o_id"] + 1})
            txn.read("customer", customer_key(w_id, d_id, c_id))
            txn.insert("orders", {
                "o_key": o_key, "w_id": w_id, "d_id": d_id, "c_id": c_id,
                "o_ol_cnt": len(lines), "o_entry_ts": entry_ts,
            })
            for number, (i_id, supply_w, qty) in enumerate(lines):
                item = txn.read("item", i_id)
                s_key = stock_key(supply_w, i_id)
                stock = txn.read("stock", s_key)
                quantity = stock["s_quantity"] - qty
                if quantity < 10:
                    quantity += 91
                txn.update("stock", s_key, {
                    "s_quantity": quantity, "s_ytd": stock["s_ytd"] + qty,
                })
                txn.insert("order_line", {
                    "ol_key": o_key * 100 + number, "w_id": w_id,
                    "o_key": o_key, "ol_number": number, "i_id": i_id,
                    "ol_quantity": qty, "ol_amount": round(item["i_price"] * qty, 2),
                })

        return TxnSpec("new_order", remote, body, w_id)
