"""OLTP simulation driver.

Runs a population of simulated client terminals against an
:class:`~repro.cluster.mpp.MppCluster`, each with its own simulated-time
cursor, and reports throughput over the simulated makespan.  Clients are
scheduled earliest-cursor-first, so resource queueing is resolved in
(simulated) time order and runs are deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.cluster.mpp import MppCluster
from repro.common.errors import SerializationConflict
from repro.obs import InfoStoreExporter
from repro.workloads.tpcc_lite import TpccLiteWorkload, TxnSpec


@dataclass
class SimResult:
    """Outcome of one OLTP simulation run."""

    committed: int
    aborted: int
    makespan_us: float
    utilization: Dict[str, float]
    gtm_requests: int
    merges: int
    upgrades: int
    downgrades: int

    @property
    def throughput_tps(self) -> float:
        if self.makespan_us <= 0:
            return 0.0
        return self.committed / (self.makespan_us / 1_000_000.0)

    @property
    def bottleneck(self) -> str:
        if not self.utilization:
            return "none"
        return max(self.utilization.items(), key=lambda kv: kv[1])[0]

    def as_dict(self) -> dict:
        return {
            "committed": self.committed,
            "aborted": self.aborted,
            "makespan_us": self.makespan_us,
            "throughput_tps": self.throughput_tps,
            "bottleneck": self.bottleneck,
            "gtm_requests": self.gtm_requests,
            "merges": self.merges,
            "upgrades": self.upgrades,
            "downgrades": self.downgrades,
        }


def run_oltp(
    cluster: MppCluster,
    workload: TpccLiteWorkload,
    clients_per_dn: int = 8,
    txns_per_client: int = 50,
    max_retries: int = 10,
    exporter: Optional[InfoStoreExporter] = None,
) -> SimResult:
    """Drive the cluster with ``clients_per_dn * num_dns`` terminals.

    Each terminal is pinned to a home warehouse (round-robin over
    warehouses) as TPC-C terminals are, runs ``txns_per_client``
    transactions, and advances its private simulated clock through the
    shared resources.  Transactions that hit a serialization conflict are
    retried (each retry pays its costs, like a real retry would).
    """
    num_clients = clients_per_dn * cluster.num_dns
    committed = 0
    aborted = 0
    obs = cluster.obs
    latency_hist = (obs.metrics.histogram("query.latency_us")
                    if obs is not None else None)

    clients = []
    for i in range(num_clients):
        session = cluster.session(track_costs=True)
        home = i % workload.num_warehouses
        stream = workload.stream(home_warehouse=home, seed_offset=i)
        clients.append((session, stream))

    # (ready_time, client_index, remaining) min-heap: always advance the
    # client that is earliest in simulated time.
    heap: List[tuple] = [(0.0, i, txns_per_client) for i in range(num_clients)]
    heapq.heapify(heap)

    while heap:
        _, idx, remaining = heapq.heappop(heap)
        if remaining <= 0:
            continue
        session, stream = clients[idx]
        spec: TxnSpec = next(stream)
        attempts = 0
        start_us = session.now_us
        while True:
            attempts += 1
            txn = session.begin(multi_shard=spec.multi_shard)
            try:
                spec.body(txn)
                txn.commit()
                committed += 1
                # The terminal's end-to-end "query" latency, retries
                # included — the series the workload manager's SLA checks
                # and Fig. 12's information store consume.
                if latency_hist is not None:
                    latency_hist.observe(session.now_us - start_us)
                break
            except SerializationConflict:
                txn.note_conflict_stall()
                txn.abort()
                aborted += 1
                if attempts > max_retries:
                    break
        if obs is not None:
            obs.advance_to(session.now_us)
        if exporter is not None:
            exporter.maybe_flush(session.now_us)
        remaining -= 1
        if remaining > 0:
            heapq.heappush(heap, (session.now_us, idx, remaining))

    # Bottleneck law: the run cannot finish before the slowest client's
    # cursor, nor faster than the busiest resource can serve its demand.
    makespan = max(
        cluster.resources.max_busy_us(),
        max((s.now_us for s, _ in clients), default=0.0),
    )
    if cluster.obs is not None:
        cluster.obs.advance_to(makespan)
    if exporter is not None:
        exporter.flush(makespan)    # final snapshot at the run's end
    return SimResult(
        committed=committed,
        aborted=aborted,
        makespan_us=makespan,
        utilization=cluster.resources.report(makespan),
        gtm_requests=cluster.gtm.stats.total_requests,
        merges=cluster.stats.snapshot_merges,
        upgrades=cluster.stats.upgrades,
        downgrades=cluster.stats.downgrades,
    )
