"""Workload generators and simulation drivers."""

from repro.workloads.driver import SimResult, run_oltp
from repro.workloads.interleaved import InterleavedRun, Phase, TxnScript
from repro.workloads.mme import MME_VERSIONS, MmeSessionGenerator, mme_schema
from repro.workloads.tpcc_lite import TpccLiteWorkload, load_tpcc, tpcc_schemas

__all__ = ["TpccLiteWorkload", "load_tpcc", "tpcc_schemas",
           "InterleavedRun", "TxnScript", "Phase",
           "run_oltp", "SimResult",
           "MmeSessionGenerator", "mme_schema", "MME_VERSIONS"]
