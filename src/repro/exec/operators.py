"""Physical (volcano-style) operators.

Every operator yields row tuples and counts the rows it produces.  The
counters are the learning optimizer's *producer* input: after a query runs,
the engine walks the physical tree and compares each cardinality-bearing
operator's ``actual_rows`` with its ``estimated_rows`` (Fig. 5's capture
path).  Operators carry the canonical ``step_text`` of the logical node they
implement, because the plan store is keyed on *logical* steps — "only the
logical operator (join instead of hash join ...) is needed" (Sec. II-C).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.common.errors import ExecutionError
from repro.optimizer.expr import BoundExpr
from repro.optimizer.logical import AggSpec, Schema


class PhysicalOp:
    """Base class for physical operators."""

    #: Fragmented plans clone partitioned operators once per data node; the
    #: clones share a capture group so the learning producer sums their
    #: ``actual_rows`` back into one observation per *logical* step (the
    #: plan store is keyed on logical steps, not per-DN instances).
    capture_group: Optional[int] = None
    #: Set by :func:`repro.wlm.attach_to_plan` when workload management
    #: governs the query: ``wlm_ctx`` enables per-row cancellation
    #: checkpoints and memory accounting, ``_wlm_dn`` is the data node this
    #: operator's fragment runs on (spill is charged there).  Class-level
    #: defaults keep ungoverned execution on the exact pre-WLM path.
    wlm_ctx = None
    _wlm_dn: Optional[int] = None
    #: Spill accounting (``repro.wlm.memory``): bytes this operator spilled
    #: and the simulated I/O time charged for them.
    spilled_bytes: int = 0
    spill_time_us: float = 0.0
    #: Batch-mode flags set by :func:`repro.exec.batch.enable_batches`.
    #: When on, ``execute()`` bridges the operator's counted batch stream
    #: back to rows; batch-capable parents call :meth:`batches` directly so
    #: column batches flow between operators without materializing tuples.
    batch_mode: bool = False
    batch_size: int = 1024

    def __init__(self, schema: Schema, estimated_rows: float = 0.0,
                 step_text: Optional[str] = None):
        self.schema = schema
        self.estimated_rows = estimated_rows
        self.step_text = step_text
        self.actual_rows = 0
        #: Set by :class:`repro.obs.profiler.QueryProfiler.attach`; when
        #: present, ``_count`` routes the row stream through the profiler's
        #: open/next/close instrumentation.
        self.profiler = None

    def children(self) -> Sequence["PhysicalOp"]:
        return ()

    def execute(self) -> Iterator[tuple]:
        raise NotImplementedError

    def reset_counters(self) -> None:
        self.actual_rows = 0
        self.spilled_bytes = 0
        self.spill_time_us = 0.0
        for child in self.children():
            child.reset_counters()

    def _count(self, rows: Iterator[tuple]) -> Iterator[tuple]:
        if self.profiler is not None:
            rows = self.profiler.wrap(self, rows)
        ctx = self.wlm_ctx
        if ctx is not None:
            for row in rows:
                ctx.tick(self)
                self.actual_rows += 1
                yield row
            return
        for row in rows:
            self.actual_rows += 1
            yield row

    # -- batch protocol ----------------------------------------------------

    def execute_batches(self):
        """Produce :class:`repro.exec.batch.Batch` column batches.

        Implemented by batch-capable operators; only called when the
        activation pass set ``batch_mode``.
        """
        raise ExecutionError(
            f"{type(self).__name__} has no batch implementation")

    def batches(self):
        """Counted batch stream — the batch-mode analogue of ``execute``."""
        return self._count_batches(self.execute_batches())

    def _count_batches(self, stream):
        """Mirror of :meth:`_count` at batch grain.

        ``actual_rows`` advances by ``batch.n`` per batch, so row counts
        (and every profile time derived from them) match the row path; the
        WLM checkpoint accrues the same per-row progress but checks for
        cancellation once per batch.
        """
        if self.profiler is not None:
            stream = self.profiler.wrap(self, stream)
        ctx = self.wlm_ctx
        if ctx is not None:
            for batch in stream:
                ctx.tick_batch(self, batch.n)
                self.actual_rows += batch.n
                yield batch
            return
        for batch in stream:
            self.actual_rows += batch.n
            yield batch

    def _bridge_rows(self) -> Iterator[tuple]:
        """Row view of this operator's counted batch stream (no recount)."""
        from repro.exec.batch import rows_from_batches

        return rows_from_batches(self.batches())

    def name(self) -> str:
        return type(self).__name__[1:]  # strip the single 'P' prefix

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        line = (f"{pad}{self.describe()}  "
                f"(est={self.estimated_rows:.0f}, actual={self.actual_rows})")
        return "\n".join([line] + [c.pretty(indent + 1) for c in self.children()])

    def describe(self) -> str:
        return self.name()


def _entry_bytes(schema: Schema) -> int:
    """Estimated in-memory footprint of one buffered row / hash entry."""
    from repro.net.costing import row_width_bytes
    from repro.wlm.memory import ENTRY_OVERHEAD_BYTES

    return (row_width_bytes(getattr(c, "data_type", None) for c in schema)
            + ENTRY_OVERHEAD_BYTES)


def _op_memory(op: PhysicalOp):
    """(tracker, per-entry bytes) when the query is governed, else (None, 0)."""
    if op.wlm_ctx is None:
        return None, 0
    return op.wlm_ctx.memory_for(op), _entry_bytes(op.schema)


class PScan(PhysicalOp):
    """Table scan over a row source supplied by the engine.

    When the engine binds a column store for this scan target (a
    column-oriented table's shard) *and* the predicate compiled to vector
    specs, execution runs through the vectorized kernels
    (:mod:`repro.exec.vectorized`) instead of row-at-a-time evaluation.

    A coordinator-side scan of a distributed table is not free: every raw
    tuple crosses the network from ``remote_sources`` shards before the
    predicate even runs.  When ``remote_sources > 0`` the scan charges that
    movement through the same :func:`repro.net.costing.exchange_cost_us`
    model the exchanges use — this is what makes the gather-all baseline
    honest next to fragmented plans, whose per-DN scans are local reads.
    """

    def __init__(self, table: str, source: Callable[[], Iterable[tuple]],
                 schema: Schema, predicate: Optional[BoundExpr] = None,
                 estimated_rows: float = 0.0, step_text: Optional[str] = None,
                 vector_store: Optional[Callable[[], object]] = None,
                 vector_preds: Optional[List[Tuple[str, str, object]]] = None,
                 table_schema=None, remote_sources: int = 0, cost_model=None):
        super().__init__(schema, estimated_rows, step_text)
        self.table = table
        self.source = source
        self.predicate = predicate
        self.vector_store = vector_store
        self.vector_preds = vector_preds
        self.table_schema = table_schema
        #: Shards drained over the wire (0 = the scan is node-local).
        self.remote_sources = remote_sources
        self.cost_model = cost_model
        #: One-way hop latency the drained streams cross.  ``None`` means
        #: LAN (single-region topology); a multi-region planner resolves
        #: this through :meth:`repro.net.fabric.Fabric.hop_us` instead of
        #: hand-picking a WAN/LAN ratio.
        self.hop_us: Optional[float] = None
        #: Raw tuples pulled from the source, pre-predicate; this is the
        #: volume that crossed the network for a remote scan.
        self.scanned_rows = 0

    def reset_counters(self) -> None:
        super().reset_counters()
        self.scanned_rows = 0

    def _drain(self) -> Iterator[tuple]:
        for row in self.source():
            self.scanned_rows += 1
            yield row

    def execute(self) -> Iterator[tuple]:
        if self.batch_mode:
            return self._bridge_rows()
        if self.vector_store is not None and self.vector_preds is not None:
            from repro.exec.fragments import vector_scan_rows

            return self._count(vector_scan_rows(self))
        rows = self._drain()
        if self.predicate is not None:
            predicate = self.predicate
            rows = (row for row in rows if predicate.eval(row))
        return self._count(rows)

    def execute_batches(self):
        """Filtered column batches straight off the shard's column store.

        Compiled vector predicates filter via selection masks; a predicate
        too rich for vector specs is evaluated by its compiled batch
        expression over whole chunks instead (``_batch_pred``, set by the
        activation pass).
        """
        from repro.exec.batch import Batch, truth_mask
        from repro.exec.vectorized import scan_filter_vectors

        store = self.vector_store()
        names = [c.name for c in self.schema]
        if self.vector_preds is not None:
            for chunk in scan_filter_vectors(store, names, self.vector_preds):
                yield Batch([chunk[name] for name in names],
                            len(chunk[names[0]]))
            return
        pred = self._batch_pred
        for chunk in scan_filter_vectors(store, names):
            batch = Batch([chunk[name] for name in names],
                          len(chunk[names[0]]))
            mask = truth_mask(pred(batch))
            if not mask.any():
                continue
            yield batch if mask.all() else batch.select(mask)

    def sim_self_time_us(self, rows_in: int, rows_out: int,
                         batches: int) -> Optional[float]:
        """Add shard-draining network cost for coordinator-side scans.

        Returns ``None`` for local scans so the profiler falls back to the
        generic CPU formula.
        """
        if not self.remote_sources:
            return None
        from repro.net.costing import exchange_cost_us, row_width_bytes
        from repro.net.latency import DEFAULT_PROFILE
        from repro.obs.profiler import (BATCH_COST_US, DEFAULT_ROW_COST_US,
                                        OPEN_COST_US)

        model = self.cost_model if self.cost_model is not None else DEFAULT_PROFILE.mpp
        width = row_width_bytes(getattr(c, "data_type", None)
                                for c in self.schema)
        cpu = (OPEN_COST_US + BATCH_COST_US * batches
               + DEFAULT_ROW_COST_US["Scan"] * (self.scanned_rows + rows_out))
        return cpu + exchange_cost_us(model, self.scanned_rows, width,
                                      edges=self.remote_sources,
                                      hop_us=self.hop_us)

    @property
    def network_rows(self) -> int:
        """Rows this scan pulled across the network (0 for local scans)."""
        return self.scanned_rows if self.remote_sources else 0

    def describe(self) -> str:
        pred = f" [{self.predicate.text()}]" if self.predicate is not None else ""
        return f"SeqScan {self.table}{pred}"


class PTableFunction(PhysicalOp):
    def __init__(self, fn_name: str, rows_provider: Callable[[], Iterable[tuple]],
                 schema: Schema, estimated_rows: float = 0.0,
                 step_text: Optional[str] = None):
        super().__init__(schema, estimated_rows, step_text)
        self.fn_name = fn_name
        self.rows_provider = rows_provider

    def execute(self) -> Iterator[tuple]:
        return self._count(iter(self.rows_provider()))

    def describe(self) -> str:
        return f"TableFunction {self.fn_name}"


class PValues(PhysicalOp):
    def __init__(self, rows: List[tuple], schema: Schema):
        super().__init__(schema, float(len(rows)))
        self.rows = rows

    def execute(self) -> Iterator[tuple]:
        return self._count(iter(self.rows))


class PFilter(PhysicalOp):
    def __init__(self, child: PhysicalOp, predicate: BoundExpr,
                 estimated_rows: float = 0.0, step_text: Optional[str] = None):
        super().__init__(child.schema, estimated_rows, step_text)
        self.child = child
        self.predicate = predicate

    def children(self) -> Sequence[PhysicalOp]:
        return (self.child,)

    def execute(self) -> Iterator[tuple]:
        if self.batch_mode:
            return self._bridge_rows()
        predicate = self.predicate
        return self._count(
            row for row in self.child.execute() if predicate.eval(row)
        )

    def execute_batches(self):
        from repro.exec.batch import truth_mask

        pred = self._batch_pred
        for batch in self.child.batches():
            mask = truth_mask(pred(batch))
            if not mask.any():
                continue
            yield batch if mask.all() else batch.select(mask)

    def describe(self) -> str:
        return f"Filter [{self.predicate.text()}]"


class PProject(PhysicalOp):
    def __init__(self, child: PhysicalOp, exprs: List[BoundExpr], schema: Schema,
                 estimated_rows: float = 0.0):
        super().__init__(schema, estimated_rows)
        self.child = child
        self.exprs = exprs

    def children(self) -> Sequence[PhysicalOp]:
        return (self.child,)

    def execute(self) -> Iterator[tuple]:
        if self.batch_mode:
            return self._bridge_rows()
        exprs = self.exprs
        return self._count(
            tuple(e.eval(row) for e in exprs) for row in self.child.execute()
        )

    def execute_batches(self):
        from repro.exec.batch import Batch

        fns = self._batch_exprs
        for batch in self.child.batches():
            yield Batch([fn(batch) for fn in fns], batch.n)


class PHashJoin(PhysicalOp):
    """Equi hash join (inner / left outer), build side = right."""

    def __init__(self, kind: str, left: PhysicalOp, right: PhysicalOp,
                 left_keys: List[BoundExpr], right_keys: List[BoundExpr],
                 residual: Optional[BoundExpr], schema: Schema,
                 estimated_rows: float = 0.0, step_text: Optional[str] = None):
        if kind not in ("inner", "left"):
            raise ExecutionError(f"hash join cannot run kind {kind!r}")
        super().__init__(schema, estimated_rows, step_text)
        self.kind = kind
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual = residual

    def children(self) -> Sequence[PhysicalOp]:
        return (self.left, self.right)

    def execute(self) -> Iterator[tuple]:
        if self.batch_mode:
            return self._bridge_rows()
        return self._count(self._join())

    def _join(self) -> Iterator[tuple]:
        mem = None
        if self.wlm_ctx is not None:
            # The build side is what resides in memory: charge per right row.
            mem = self.wlm_ctx.memory_for(self)
            entry_bytes = _entry_bytes(self.right.schema)
        try:
            yield from self._join_inner(mem, entry_bytes if mem else 0)
        finally:
            if mem is not None:
                mem.finish()

    def execute_batches(self):
        """Batched probe: row-built hash table, vectorized key extraction.

        The build side stays row-at-a-time (identical memory accounting and
        NULL-key handling); the probe consumes left batches and emits
        combined batches in the row path's exact output order.
        """
        from repro.exec.batch import probe_batches

        mem = None
        entry_bytes = 0
        if self.wlm_ctx is not None:
            mem = self.wlm_ctx.memory_for(self)
            entry_bytes = _entry_bytes(self.right.schema)
        try:
            table: Dict[tuple, List[tuple]] = {}
            for row in self.right.execute():
                key = tuple(k.eval(row) for k in self.right_keys)
                if any(v is None for v in key):
                    continue
                table.setdefault(key, []).append(row)
                if mem is not None:
                    mem.grow(entry_bytes)
            yield from probe_batches(self, table)
        finally:
            if mem is not None:
                mem.finish()

    def _join_inner(self, mem, entry_bytes: int) -> Iterator[tuple]:
        table: Dict[tuple, List[tuple]] = {}
        for row in self.right.execute():
            key = tuple(k.eval(row) for k in self.right_keys)
            if any(v is None for v in key):
                continue
            table.setdefault(key, []).append(row)
            if mem is not None:
                mem.grow(entry_bytes)
        null_pad = (None,) * len(self.right.schema)
        residual = self.residual
        for lrow in self.left.execute():
            key = tuple(k.eval(lrow) for k in self.left_keys)
            matched = False
            if not any(v is None for v in key):
                for rrow in table.get(key, ()):
                    combined = lrow + rrow
                    if residual is None or residual.eval(combined):
                        matched = True
                        yield combined
            if not matched and self.kind == "left":
                yield lrow + null_pad

    def describe(self) -> str:
        keys = ", ".join(
            f"{l.text()}={r.text()}"
            for l, r in zip(self.left_keys, self.right_keys)
        )
        return f"HashJoin {self.kind} [{keys}]"


class PNestedLoopJoin(PhysicalOp):
    """Fallback join for non-equi or cross joins."""

    def __init__(self, kind: str, left: PhysicalOp, right: PhysicalOp,
                 condition: Optional[BoundExpr], schema: Schema,
                 estimated_rows: float = 0.0, step_text: Optional[str] = None):
        super().__init__(schema, estimated_rows, step_text)
        self.kind = kind
        self.left = left
        self.right = right
        self.condition = condition

    def children(self) -> Sequence[PhysicalOp]:
        return (self.left, self.right)

    def execute(self) -> Iterator[tuple]:
        return self._count(self._join())

    def _join(self) -> Iterator[tuple]:
        right_rows = list(self.right.execute())
        null_pad = (None,) * len(self.right.schema)
        condition = self.condition
        for lrow in self.left.execute():
            matched = False
            for rrow in right_rows:
                combined = lrow + rrow
                if condition is None or condition.eval(combined):
                    matched = True
                    yield combined
            if not matched and self.kind == "left":
                yield lrow + null_pad

    def describe(self) -> str:
        cond = f" [{self.condition.text()}]" if self.condition is not None else ""
        return f"NestLoopJoin {self.kind}{cond}"


class _Accumulator:
    """State for one aggregate function over one group."""

    __slots__ = ("func", "count", "total", "minimum", "maximum", "distinct_set")

    def __init__(self, func: str, distinct: bool):
        self.func = func
        self.count = 0
        self.total = 0.0
        self.minimum = None
        self.maximum = None
        self.distinct_set = set() if distinct else None

    def add(self, value: object) -> None:
        if self.func == "count" and value is _STAR:
            self.count += 1
            return
        if value is None:
            return
        if self.distinct_set is not None:
            if value in self.distinct_set:
                return
            self.distinct_set.add(value)
        self.count += 1
        if self.func in ("sum", "avg"):
            self.total += value
        elif self.func == "min":
            if self.minimum is None or value < self.minimum:
                self.minimum = value
        elif self.func == "max":
            if self.maximum is None or value > self.maximum:
                self.maximum = value

    def result(self) -> object:
        if self.func == "count":
            return self.count
        if self.func == "sum":
            return self.total if self.count else None
        if self.func == "avg":
            return self.total / self.count if self.count else None
        if self.func == "min":
            return self.minimum
        if self.func == "max":
            return self.maximum
        raise ExecutionError(f"unknown aggregate {self.func!r}")


_STAR = object()


class PHashAggregate(PhysicalOp):
    def __init__(self, child: PhysicalOp, group_exprs: List[BoundExpr],
                 aggs: List[AggSpec], schema: Schema,
                 estimated_rows: float = 0.0, step_text: Optional[str] = None):
        super().__init__(schema, estimated_rows, step_text)
        self.child = child
        self.group_exprs = group_exprs
        self.aggs = aggs

    def children(self) -> Sequence[PhysicalOp]:
        return (self.child,)

    def execute(self) -> Iterator[tuple]:
        return self._count(self._aggregate())

    def _aggregate(self) -> Iterator[tuple]:
        mem, entry_bytes = _op_memory(self)
        try:
            groups: Dict[tuple, List[_Accumulator]] = {}
            ordered_keys: List[tuple] = []
            for row in self.child.execute():
                key = tuple(g.eval(row) for g in self.group_exprs)
                accs = groups.get(key)
                if accs is None:
                    accs = [_Accumulator(a.func, a.distinct) for a in self.aggs]
                    groups[key] = accs
                    ordered_keys.append(key)
                    if mem is not None:
                        mem.grow(entry_bytes)
                for spec, acc in zip(self.aggs, accs):
                    value = _STAR if spec.arg is None else spec.arg.eval(row)
                    acc.add(value)
            if not groups and not self.group_exprs:
                # Global aggregate over zero rows still yields one row.
                accs = [_Accumulator(a.func, a.distinct) for a in self.aggs]
                yield tuple(acc.result() for acc in accs)
                return
            for key in ordered_keys:
                yield key + tuple(acc.result() for acc in groups[key])
        finally:
            if mem is not None:
                mem.finish()

    def describe(self) -> str:
        return ("HashAggregate group=["
                + ", ".join(g.text() for g in self.group_exprs) + "] aggs=["
                + ", ".join(a.text() for a in self.aggs) + "]")


class PSort(PhysicalOp):
    def __init__(self, child: PhysicalOp, keys: List[Tuple[BoundExpr, bool]],
                 estimated_rows: float = 0.0):
        super().__init__(child.schema, estimated_rows)
        self.child = child
        self.keys = keys

    def children(self) -> Sequence[PhysicalOp]:
        return (self.child,)

    def execute(self) -> Iterator[tuple]:
        if self.batch_mode:
            return self._bridge_rows()

        def gen() -> Iterator[tuple]:
            mem, entry_bytes = _op_memory(self)
            try:
                rows = []
                for row in self.child.execute():
                    rows.append(row)
                    if mem is not None:
                        mem.grow(entry_bytes)
                # Stable multi-key sort: apply keys last-to-first; NULLs
                # sort last ascending, first descending.
                for expr, descending in reversed(self.keys):
                    rows.sort(
                        key=lambda row: _sort_key(expr.eval(row), descending),
                        reverse=descending,
                    )
                yield from rows
            finally:
                if mem is not None:
                    mem.finish()

        return self._count(gen())

    def execute_batches(self):
        """Buffer child batches, sort once with stable lexsort passes.

        Memory is charged per buffered batch (``entry_bytes * n``) — the
        same total as the row path's per-row charge, at coarser spill grain.
        """
        from repro.exec.batch import sorted_batches

        mem, entry_bytes = _op_memory(self)
        try:
            collected = []
            for batch in self.child.batches():
                collected.append(batch)
                if mem is not None:
                    mem.grow(entry_bytes * batch.n)
            yield from sorted_batches(self, collected)
        finally:
            if mem is not None:
                mem.finish()

    def describe(self) -> str:
        keys = ", ".join(f"{e.text()}{' DESC' if d else ''}" for e, d in self.keys)
        return f"Sort [{keys}]"


def _sort_key(value: object, descending: bool):
    if value is None:
        # (1, ...) sorts after every (0, ...): NULLs last when ascending;
        # with reverse=True this puts them first, matching DESC NULLS FIRST.
        return (1, 0) if not descending else (1, 0)
    return (0, value)


class PLimit(PhysicalOp):
    def __init__(self, child: PhysicalOp, limit: int,
                 estimated_rows: float = 0.0, step_text: Optional[str] = None):
        super().__init__(child.schema, estimated_rows, step_text)
        self.child = child
        self.limit = limit

    def children(self) -> Sequence[PhysicalOp]:
        return (self.child,)

    def execute(self) -> Iterator[tuple]:
        def gen():
            if self.limit <= 0:
                return
            produced = 0
            for row in self.child.execute():
                yield row
                produced += 1
                if produced >= self.limit:
                    break   # stop before pulling a row we would discard
        return self._count(gen())

    def describe(self) -> str:
        return f"Limit {self.limit}"


class PDistinct(PhysicalOp):
    def __init__(self, child: PhysicalOp, estimated_rows: float = 0.0,
                 step_text: Optional[str] = None):
        super().__init__(child.schema, estimated_rows, step_text)
        self.child = child

    def children(self) -> Sequence[PhysicalOp]:
        return (self.child,)

    def execute(self) -> Iterator[tuple]:
        def gen():
            seen = set()
            for row in self.child.execute():
                if row not in seen:
                    seen.add(row)
                    yield row
        return self._count(gen())


class PUnionAll(PhysicalOp):
    """Concatenate schema-compatible inputs (UNION ALL)."""

    def __init__(self, children: List[PhysicalOp], schema: Schema,
                 estimated_rows: float = 0.0, step_text: Optional[str] = None):
        super().__init__(schema, estimated_rows, step_text)
        if not children:
            raise ExecutionError("UNION ALL needs at least one input")
        self._children = children

    def children(self) -> Sequence[PhysicalOp]:
        return tuple(self._children)

    def execute(self) -> Iterator[tuple]:
        if self.batch_mode:
            return self._bridge_rows()

        def gen():
            for child in self._children:
                yield from child.execute()
        return self._count(gen())

    def execute_batches(self):
        for child in self._children:
            yield from child.batches()

    def describe(self) -> str:
        return f"UnionAll [{len(self._children)} inputs]"


class PExchange(PhysicalOp):
    """Data movement: gather / broadcast / redistribute.

    A real operator since the fragmented-execution refactor: its inputs are
    the per-DN fragments it collects (or a single subtree for broadcasts and
    legacy plans), and it charges simulated network cost — rows moved times
    estimated row width, per sender edge — through the
    :mod:`repro.net.costing` exchange model.  The rows that flow through it
    are exactly the rows that cross the CN/DN boundary, so a plan that
    pushes a partial aggregate below the gather moves groups, not tuples.
    """

    def __init__(self, kind: str, child,
                 estimated_rows: float = 0.0, cost_model=None):
        children = (list(child) if isinstance(child, (list, tuple))
                    else [child])
        if not children:
            raise ExecutionError("exchange needs at least one input")
        super().__init__(children[0].schema, estimated_rows)
        if kind not in ("gather", "broadcast", "redistribute"):
            raise ExecutionError(f"unknown exchange kind {kind!r}")
        self.kind = kind
        self._children: List[PhysicalOp] = children
        #: Backward-compatible alias (single-input exchanges predate
        #: fragment fan-in).
        self.child = children[0]
        self.cost_model = cost_model
        #: One-way hop latency this exchange's sender streams cross; see
        #: ``PSeqScan.hop_us`` (``None`` = LAN, the single-region default).
        self.hop_us: Optional[float] = None

    def children(self) -> Sequence[PhysicalOp]:
        return tuple(self._children)

    def execute(self) -> Iterator[tuple]:
        if self.batch_mode:
            return self._bridge_rows()

        def gen() -> Iterator[tuple]:
            for child in self._children:
                yield from child.execute()

        return self._count(gen())

    def execute_batches(self):
        """Exchange serialization at batch grain: per-DN fragments ship
        column batches across the (simulated) wire, not row tuples."""
        for child in self._children:
            yield from child.batches()

    def sim_self_time_us(self, rows_in: int, rows_out: int,
                         batches: int) -> float:
        """Network cost hook for the profiler (replaces per-row CPU cost)."""
        from repro.net.costing import exchange_cost_us, row_width_bytes
        from repro.net.latency import DEFAULT_PROFILE

        model = self.cost_model if self.cost_model is not None else DEFAULT_PROFILE.mpp
        width = row_width_bytes(getattr(c, "data_type", None)
                                for c in self.schema)
        return exchange_cost_us(model, rows_out, width,
                                edges=len(self._children),
                                hop_us=self.hop_us)

    @property
    def network_rows(self) -> int:
        """Rows that crossed this exchange's wire."""
        return self.actual_rows

    def describe(self) -> str:
        if len(self._children) > 1:
            return f"Exchange {self.kind} [{len(self._children)} fragments]"
        return f"Exchange {self.kind}"


class PFragment(PhysicalOp):
    """One data node's slice of a fragmented plan.

    Everything beneath it executes "on" data node ``dn_index`` (scans read
    only that shard); fragments sharing a ``group_id`` are the parallel
    instances of the same plan slice, so the profiler charges the *max* of
    their simulated times — they run concurrently on different nodes.
    """

    is_fragment = True

    def __init__(self, child: PhysicalOp, dn_index: int, group_id: int):
        super().__init__(child.schema, child.estimated_rows)
        self.child = child
        self.dn_index = dn_index
        self.group_id = group_id

    @property
    def fragment_key(self) -> Tuple[int, int]:
        return (self.group_id, self.dn_index)

    def children(self) -> Sequence[PhysicalOp]:
        return (self.child,)

    def execute(self) -> Iterator[tuple]:
        if self.batch_mode:
            return self._bridge_rows()
        return self._count(self.child.execute())

    def execute_batches(self):
        yield from self.child.batches()

    def describe(self) -> str:
        return f"Fragment dn{self.dn_index}"


def _partial_add(cell: List[object], func: str, value: object) -> None:
    if value is _STAR:
        cell[0] += 1
        return
    if value is None:
        return
    cell[0] += 1
    if func in ("sum", "avg"):
        cell[1] += value
    elif func == "min":
        if cell[2] is None or value < cell[2]:
            cell[2] = value
    elif func == "max":
        if cell[3] is None or value > cell[3]:
            cell[3] = value


def _merge_state(cell: List[object], state: tuple) -> None:
    count, total, minimum, maximum = state
    cell[0] += count
    cell[1] += total
    if minimum is not None and (cell[2] is None or minimum < cell[2]):
        cell[2] = minimum
    if maximum is not None and (cell[3] is None or maximum > cell[3]):
        cell[3] = maximum


def _finalize_state(cell: List[object], func: str) -> object:
    count, total, minimum, maximum = cell
    if func == "count":
        return count
    if func == "sum":
        return total if count else None
    if func == "avg":
        return total / count if count else None
    if func == "min":
        return minimum
    if func == "max":
        return maximum
    raise ExecutionError(f"unknown aggregate {func!r}")


class PPartialAgg(PhysicalOp):
    """DN-side half of two-phase aggregation.

    Emits one row per local group: the group key followed by one partial
    state tuple ``(count, total, minimum, maximum)`` per aggregate.  The
    coordinator's :class:`PFinalAgg` merges states across data nodes, so
    only group-grain rows cross the gather exchange.  Carries no
    ``step_text`` — per-DN partials are a physical artifact, not a logical
    step the plan store should learn.
    """

    def __init__(self, child: PhysicalOp, group_exprs: List[BoundExpr],
                 aggs: List[AggSpec], schema: Schema,
                 estimated_rows: float = 0.0):
        super().__init__(schema, estimated_rows)
        self.child = child
        self.group_exprs = group_exprs
        self.aggs = aggs

    def children(self) -> Sequence[PhysicalOp]:
        return (self.child,)

    def execute(self) -> Iterator[tuple]:
        if self.batch_mode:
            return self._bridge_rows()
        return self._count(self._aggregate())

    def execute_batches(self):
        """Ship partial states as object batches across the exchange.

        Aggregation math stays bit-identical to the row path: the shared
        vector fast path is tried first (the row path would use it too);
        otherwise the batch-native kernel accumulates over column lanes
        with the row path's exact arithmetic; only then does the row-path
        ``_aggregate`` run over bridged rows.
        """
        from repro.exec.batch import (batches_from_rows,
                                      partial_states_from_batches)
        from repro.exec.fragments import vector_partial_states

        states = vector_partial_states(self)
        if states is None:
            states = partial_states_from_batches(self)
        if states is None:
            states = self._aggregate()
        yield from batches_from_rows(states, len(self.schema),
                                     self.batch_size)

    def _aggregate(self) -> Iterator[tuple]:
        from repro.exec.fragments import vector_partial_states

        fast = vector_partial_states(self)
        if fast is not None:
            yield from fast
            return
        mem, entry_bytes = _op_memory(self)
        try:
            groups: Dict[tuple, List[List[object]]] = {}
            ordered: List[tuple] = []
            for row in self.child.execute():
                key = tuple(g.eval(row) for g in self.group_exprs)
                cells = groups.get(key)
                if cells is None:
                    cells = groups[key] = [[0, 0.0, None, None]
                                           for _ in self.aggs]
                    ordered.append(key)
                    if mem is not None:
                        mem.grow(entry_bytes)
                for spec, cell in zip(self.aggs, cells):
                    value = _STAR if spec.arg is None else spec.arg.eval(row)
                    _partial_add(cell, spec.func, value)
            if not groups and not self.group_exprs:
                # A global aggregate ships one (empty) state row per node, so
                # the final aggregate sees every node even over zero rows.
                yield tuple((0, 0.0, None, None) for _ in self.aggs)
                return
            for key in ordered:
                yield key + tuple(tuple(cell) for cell in groups[key])
        finally:
            if mem is not None:
                mem.finish()

    def describe(self) -> str:
        return ("PartialAggregate group=["
                + ", ".join(g.text() for g in self.group_exprs) + "] aggs=["
                + ", ".join(a.text() for a in self.aggs) + "]")


class PFinalAgg(PhysicalOp):
    """CN-side half of two-phase aggregation: merge partial states.

    Input rows are ``group key + state tuples`` from the data nodes'
    :class:`PPartialAgg` instances (concatenated through a gather exchange).
    Carries the logical aggregate's ``step_text``: its output *is* the
    logical step's output, so learning feedback captures global group
    counts here.
    """

    def __init__(self, child: PhysicalOp, n_group_cols: int,
                 aggs: List[AggSpec], schema: Schema,
                 estimated_rows: float = 0.0, step_text: Optional[str] = None):
        super().__init__(schema, estimated_rows, step_text)
        self.child = child
        self.n_group_cols = n_group_cols
        self.aggs = aggs

    def children(self) -> Sequence[PhysicalOp]:
        return (self.child,)

    def execute(self) -> Iterator[tuple]:
        return self._count(self._aggregate())

    def _aggregate(self) -> Iterator[tuple]:
        n = self.n_group_cols
        mem, entry_bytes = _op_memory(self)
        try:
            groups: Dict[tuple, List[List[object]]] = {}
            ordered: List[tuple] = []
            for row in self.child.execute():
                key = row[:n]
                cells = groups.get(key)
                if cells is None:
                    cells = groups[key] = [[0, 0.0, None, None]
                                           for _ in self.aggs]
                    ordered.append(key)
                    if mem is not None:
                        mem.grow(entry_bytes)
                for cell, state in zip(cells, row[n:]):
                    _merge_state(cell, state)
            if not groups and n == 0:
                cells = [[0, 0.0, None, None] for _ in self.aggs]
                yield tuple(_finalize_state(c, s.func)
                            for c, s in zip(cells, self.aggs))
                return
            for key in ordered:
                yield key + tuple(_finalize_state(c, s.func)
                                  for c, s in zip(groups[key], self.aggs))
        finally:
            if mem is not None:
                mem.finish()

    def describe(self) -> str:
        names = ", ".join(c.name for c in self.schema[:self.n_group_cols])
        return (f"FinalAggregate group=[{names}] aggs=["
                + ", ".join(a.text() for a in self.aggs) + "]")


def walk_physical(op: PhysicalOp):
    yield op
    for child in op.children():
        yield from walk_physical(child)
