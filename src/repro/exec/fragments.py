"""Plan fragments: the per-data-node pieces of a distributed plan.

FI-MPPDB cuts a physical plan at exchange boundaries (Sec. II, Fig. 1):
everything below an exchange runs on the data nodes against local storage,
everything above it on the coordinator.  This module holds the pieces that
make the cut explicit:

* :class:`Locus` — where a distributed subplan's rows live (the planner's
  distribution property, Greenplum would say "flow");
* :class:`ScanBinding` — what the engine hands the planner for one
  ``(table, data node)`` scan target: a row source, and for column-oriented
  tables a :class:`~repro.storage.colstore.ColumnStore` the vectorized
  kernels can chew through;
* predicate compilation from bound expression trees to the
  :data:`~repro.exec.vectorized.PredicateSpec` form the kernels accept;
* the vectorized fast paths used by ``PScan`` and ``PPartialAgg`` when a
  fragment lands on a column-oriented shard.

The operator classes themselves (``PFragment``, ``PExchange``,
``PPartialAgg``/``PFinalAgg``) live in :mod:`repro.exec.operators`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exec.vectorized import (PredicateSpec, group_bounds, scan_filter,
                                   selection_mask)
from repro.optimizer.expr import BoundBinary, BoundColumn, BoundConst, conjuncts
from repro.storage.types import DataType


# -- distribution property ------------------------------------------------

@dataclass(frozen=True)
class Locus:
    """Where a distributed subplan's output rows live.

    * ``singleton`` — one stream on the coordinator (already gathered);
    * ``replicated`` — a full copy on every data node, so any one node
      (or the coordinator-side gather-all source) can serve it;
    * ``hash`` — partitioned across data nodes by the cluster's versioned
      shard map (value → hash slot → owning DN;
      :mod:`repro.cluster.shardmap`).  ``key`` is the canonical upper-cased
      text of the partitioning column *in the current output schema*
      (``None`` when partitioned but on no surviving column), and
      ``key_type`` its data type — both feed co-location checks.  Two hash
      loci are co-located exactly when their keys share the same *slot
      assignment*: the slot function is type-sensitive (ints slot by
      modulo, everything else by repr-hash), and every slot has one owner
      in the map, so equal keys of equal type always land on the same DN —
      even mid-rebalance, because a slot's owner flips atomically for all
      tables at once.
    """

    kind: str                          # 'singleton' | 'replicated' | 'hash'
    key: Optional[str] = None
    key_type: Optional[DataType] = None

    @property
    def is_partitioned(self) -> bool:
        return self.kind == "hash"


SINGLETON = Locus("singleton")
REPLICATED = Locus("replicated")

#: A builder produces a fresh operator subtree for one execution site:
#: ``build(dn_index)`` for data node ``dn_index``, ``build(None)`` for the
#: gather-all (coordinator-side) instantiation used by broadcasts and by
#: plans that never fragment.
FragmentBuilder = Callable[[Optional[int]], object]


# -- engine -> planner scan contract --------------------------------------

@dataclass
class ScanBinding:
    """One scan target, as supplied by the engine to the planner.

    ``rows`` yields tuples in table-column order.  ``column_store`` is
    present for column-oriented tables scanned on a specific data node: it
    builds that shard's :class:`~repro.storage.colstore.ColumnStore`
    snapshot on demand.  ``table_schema`` carries nullability and type
    metadata the vectorized fast paths need.
    """

    rows: Callable[[], Iterable[tuple]]
    column_store: Optional[Callable[[], object]] = None
    table_schema: Optional[object] = None


# -- predicate compilation ------------------------------------------------

_MIRROR = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def compile_predicates(predicate, schema) -> Optional[List[PredicateSpec]]:
    """Compile a bound predicate to vector specs, or ``None`` if it uses
    anything beyond ANDed ``column <op> constant`` comparisons."""
    if predicate is None:
        return []
    specs: List[PredicateSpec] = []
    for factor in conjuncts(predicate):
        if not isinstance(factor, BoundBinary):
            return None
        op, left, right = factor.op, factor.left, factor.right
        if isinstance(left, BoundConst) and isinstance(right, BoundColumn):
            left, right, op = right, left, _MIRROR.get(op)
        if op not in _MIRROR:
            return None
        if not (isinstance(left, BoundColumn) and isinstance(right, BoundConst)):
            return None
        if right.value is None or not (0 <= left.index < len(schema)):
            return None
        specs.append((schema[left.index].name, op, right.value))
    return specs


# -- vectorized fast paths ------------------------------------------------

def _unbox(value):
    return value.item() if hasattr(value, "item") else value


def vector_scan_rows(scan) -> Iterator[tuple]:
    """Run a ``PScan`` through the vector kernels, yielding row tuples.

    Uses :func:`selection_mask` directly (rather than ``scan_filter``) so
    validity masks survive and NULLs materialize as ``None``, exactly like
    the row-at-a-time path.
    """
    store = scan.vector_store()
    names = [c.name for c in scan.schema]
    preds = scan.vector_preds
    needed = list(dict.fromkeys(names + [p[0] for p in preds]))
    for chunk in store.scan_chunks(needed):
        mask = selection_mask(chunk, preds)
        if not mask.any():
            continue
        cols = [(chunk[name].data[mask], chunk[name].validity[mask])
                for name in names]
        for i in range(int(mask.sum())):
            yield tuple(
                _unbox(data[i]) if valid[i] else None for data, valid in cols
            )


def vector_partial_states(agg) -> Optional[Iterator[tuple]]:
    """Vectorized ``PPartialAgg`` over a column-oriented shard scan.

    Applicable when the child is a vector-capable scan, grouping is on at
    most one plain column, and every referenced column is non-nullable (the
    ``scan_filter`` kernel drops validity masks, so NULL-bearing columns
    fall back to the row path).  Returns ``None`` when not applicable.
    """
    scan = agg.child
    store_fn = getattr(scan, "vector_store", None)
    preds = getattr(scan, "vector_preds", None)
    tschema = getattr(scan, "table_schema", None)
    if store_fn is None or preds is None or tschema is None:
        return None
    schema = scan.schema
    group_names: List[str] = []
    for g in agg.group_exprs:
        if not isinstance(g, BoundColumn) or not (0 <= g.index < len(schema)):
            return None
        group_names.append(schema[g.index].name)
    if len(group_names) > 1:
        return None
    agg_names: List[Optional[str]] = []
    for spec in agg.aggs:
        if spec.distinct or spec.func not in ("count", "sum", "avg", "min", "max"):
            return None
        if spec.arg is None:
            agg_names.append(None)
            continue
        arg = spec.arg
        if not isinstance(arg, BoundColumn) or not (0 <= arg.index < len(schema)):
            return None
        agg_names.append(schema[arg.index].name)
    touched = (list(zip(agg_names, agg.aggs))
               + [(n, None) for n in group_names]
               + [(p[0], None) for p in preds])
    for name, spec in touched:
        if name is None:
            continue
        col = tschema.column(name)
        if col.nullable and name != tschema.primary_key:
            return None
        if spec is not None and spec.func != "count" and not col.data_type.is_numeric:
            return None
    return _vector_partial_iter(scan, store_fn(), group_names, agg_names,
                                agg.aggs, preds, agg=agg)


def _vector_partial_iter(scan, store, group_names, agg_names, specs,
                         preds, agg=None) -> Iterator[tuple]:
    import numpy as np

    needed = list(dict.fromkeys(
        group_names + [n for n in agg_names if n is not None]))
    if not needed:
        needed = [scan.table_schema.primary_key]   # COUNT(*)-only: row counts
    states: Dict[tuple, List[list]] = {}
    order: List[tuple] = []
    # Memory-governed queries charge each new group's state against the
    # resource-group budget, exactly like the row-at-a-time path; the
    # tracker spills on the DN this fragment runs on (agg._wlm_dn).
    mem = entry_bytes = None
    if agg is not None and getattr(agg, "wlm_ctx", None) is not None:
        from repro.exec.operators import _entry_bytes as _width

        mem = agg.wlm_ctx.memory_for(agg)
        entry_bytes = _width(agg.schema)

    def cells_for(key: tuple) -> List[list]:
        cells = states.get(key)
        if cells is None:
            cells = states[key] = [[0, 0.0, None, None] for _ in specs]
            order.append(key)
            if mem is not None:
                mem.grow(entry_bytes)
        return cells

    def update(cells: List[list], count: int, values: Dict[str, object]) -> None:
        for cell, name, spec in zip(cells, agg_names, specs):
            if name is None:                       # COUNT(*)
                cell[0] += count
                continue
            vals = values[name]
            cell[0] += int(len(vals))
            if spec.func in ("sum", "avg"):
                cell[1] += float(np.sum(vals))
            elif spec.func == "min":
                low = _unbox(vals.min())
                if cell[2] is None or low < cell[2]:
                    cell[2] = low
            elif spec.func == "max":
                high = _unbox(vals.max())
                if cell[3] is None or high > cell[3]:
                    cell[3] = high

    try:
        rows_in = 0
        for batch in scan_filter(store, needed, preds):
            n = int(len(batch[needed[0]]))
            rows_in += n
            if group_names:
                gvals = batch[group_names[0]]
                uniq, order_idx, bounds = group_bounds(gvals)
                for i, gv in enumerate(uniq):
                    member = order_idx[bounds[i]:bounds[i + 1]]
                    update(cells_for((_unbox(gv),)), int(len(member)),
                           {name: batch[name][member] for name in needed})
            else:
                update(cells_for(()), n, batch)
        # The fast path bypasses the scan's own execute(); account its rows
        # so profiling and learning feedback still see the fragment's scan
        # volume.
        scan.actual_rows += rows_in
        if not order and not group_names:
            cells_for(())                           # global agg over zero rows
        for key in order:
            yield key + tuple(tuple(cell) for cell in states[key])
    finally:
        if mem is not None:
            mem.finish()
