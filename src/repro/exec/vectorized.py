"""Vectorized (batch) execution kernels over the column store.

FI-MPPDB's "vectorized execution engine is equipped with latest SIMD
instructions for fine-grained parallelism"; numpy plays the role of the
SIMD unit here.  The kernels operate on
:class:`~repro.storage.colstore.ColumnVector` chunks:

* predicate evaluation producing boolean selection masks,
* filtered materialization,
* chunked aggregation (sum/min/max/count/avg) with group-by,

and a row-at-a-time fallback exists in :mod:`repro.exec.operators`, so the
ablation benchmark can compare the two — the classic row-store vs
column-store gap on scan-heavy OLAP work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ExecutionError
from repro.storage.colstore import ColumnStore, ColumnVector

#: predicate spec: (column, op, literal); ANDed together.
PredicateSpec = Tuple[str, str, object]

_OPS: Dict[str, Callable[[np.ndarray, object], np.ndarray]] = {
    "=": lambda a, v: a == v,
    "<>": lambda a, v: a != v,
    "<": lambda a, v: a < v,
    "<=": lambda a, v: a <= v,
    ">": lambda a, v: a > v,
    ">=": lambda a, v: a >= v,
}


def selection_mask(chunk: Dict[str, ColumnVector],
                   predicates: Sequence[PredicateSpec]) -> np.ndarray:
    """Boolean mask for the rows of ``chunk`` satisfying all predicates."""
    n = len(next(iter(chunk.values()))) if chunk else 0
    mask = np.ones(n, dtype=bool)
    for column, op, literal in predicates:
        if column not in chunk:
            raise ExecutionError(f"predicate column {column!r} not scanned")
        if op not in _OPS:
            raise ExecutionError(f"unsupported vector op {op!r}")
        vec = chunk[column]
        mask &= vec.validity & _OPS[op](vec.data, literal)
    return mask


def scan_filter_vectors(store: ColumnStore, columns: Sequence[str],
                        predicates: Sequence[PredicateSpec] = (),
                        obs=None) -> Iterable[Dict[str, ColumnVector]]:
    """Yield filtered column batches with their validity masks intact.

    Predicates follow SQL three-valued logic: a NULL operand makes the
    comparison unknown, and unknown rows are filtered (``selection_mask``
    ANDs the validity mask in) — the same semantics as the row path in
    :func:`row_aggregate`.

    When an :class:`repro.obs.Observability` is passed, every produced batch
    bumps ``exec.batches`` and its surviving rows bump ``exec.rows``.
    """
    needed = list(dict.fromkeys(list(columns) + [p[0] for p in predicates]))
    for chunk in store.scan_chunks(needed):
        mask = selection_mask(chunk, predicates)
        if not mask.any():
            continue
        if obs is not None:
            obs.metrics.counter("exec.batches").inc()
            obs.metrics.counter("exec.rows").inc(int(mask.sum()))
        yield {name: ColumnVector(chunk[name].data[mask],
                                  chunk[name].validity[mask])
               for name in columns}


def scan_filter(store: ColumnStore, columns: Sequence[str],
                predicates: Sequence[PredicateSpec] = (),
                obs=None) -> Iterable[Dict[str, np.ndarray]]:
    """Like :func:`scan_filter_vectors` but yields bare data arrays.

    Only safe when the caller knows the scanned columns carry no NULLs
    (the validity mask is dropped, so NULL lanes would surface as their
    encoded sentinels).  NULL-aware consumers want the vectors variant.
    """
    for vecs in scan_filter_vectors(store, columns, predicates, obs=obs):
        yield {name: vec.data for name, vec in vecs.items()}


def group_bounds(keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Bucket ``keys`` in one pass: ``(uniq, order, bounds)``.

    ``order[bounds[i]:bounds[i + 1]]`` are the row indices holding
    ``uniq[i]``, in ascending row order (the stable argsort keeps ties in
    input order), so per-group gathers see exactly the rows a boolean
    ``keys == uniq[i]`` mask would select — without rescanning the whole
    batch once per distinct group.
    """
    uniq, inverse = np.unique(keys, return_inverse=True)
    order = np.argsort(inverse, kind="stable")
    bounds = np.searchsorted(inverse[order], np.arange(len(uniq) + 1))
    return uniq, order, bounds


@dataclass
class VectorAggState:
    """Running state for one aggregate over chunked input."""

    func: str
    count: int = 0
    total: float = 0.0
    minimum: Optional[float] = None
    maximum: Optional[float] = None

    def update(self, values: np.ndarray) -> None:
        if len(values) == 0:
            return
        self.count += int(len(values))
        if self.func in ("sum", "avg"):
            self.total += float(np.sum(values))
        elif self.func == "min":
            low = float(np.min(values))
            self.minimum = low if self.minimum is None else min(self.minimum, low)
        elif self.func == "max":
            high = float(np.max(values))
            self.maximum = high if self.maximum is None else max(self.maximum, high)
        elif self.func != "count":
            raise ExecutionError(f"unknown aggregate {self.func!r}")

    def result(self) -> Optional[float]:
        if self.func == "count":
            return float(self.count)
        if self.func == "sum":
            return self.total if self.count else None
        if self.func == "avg":
            return self.total / self.count if self.count else None
        if self.func == "min":
            return self.minimum
        if self.func == "max":
            return self.maximum
        raise ExecutionError(f"unknown aggregate {self.func!r}")


def aggregate(store: ColumnStore, column: str, func: str,
              predicates: Sequence[PredicateSpec] = (),
              obs=None) -> Optional[float]:
    """One whole-table aggregate via chunked vector kernels."""
    state = VectorAggState(func)
    if obs is not None:
        with obs.tracer.span("vector.aggregate", column=column, func=func):
            for batch in scan_filter_vectors(store, [column], predicates,
                                             obs=obs):
                vec = batch[column]
                state.update(vec.data[vec.validity])
        return state.result()
    for batch in scan_filter_vectors(store, [column], predicates):
        vec = batch[column]
        state.update(vec.data[vec.validity])
    return state.result()


def group_aggregate(store: ColumnStore, group_column: str, value_column: str,
                    func: str, predicates: Sequence[PredicateSpec] = (),
                    obs=None) -> Dict[object, Optional[float]]:
    """Hash group-by over vector batches.

    Buckets each chunk with one ``np.unique(..., return_inverse=True)``
    pass (:func:`group_bounds`) instead of rescanning the chunk with a
    boolean mask per distinct group — O(rows log rows) instead of
    O(groups x rows).  NULL group keys collect under ``None``; NULL input
    values are skipped, like the row path and SQL aggregates.
    """
    states: Dict[object, VectorAggState] = {}

    def feed(key: object, vec: ColumnVector, member: np.ndarray) -> None:
        state = states.get(key)
        if state is None:
            state = states[key] = VectorAggState(func)
        valid = member[vec.validity[member]]
        state.update(vec.data[valid])

    for batch in scan_filter_vectors(store, [group_column, value_column],
                                     predicates, obs=obs):
        gvec = batch[group_column]
        vvec = batch[value_column]
        valid_idx = np.flatnonzero(gvec.validity)
        if len(valid_idx):
            uniq, order, bounds = group_bounds(gvec.data[valid_idx])
            for i, group in enumerate(uniq):
                member = valid_idx[order[bounds[i]:bounds[i + 1]]]
                key = group.item() if isinstance(group, np.generic) else group
                feed(key, vvec, member)
        null_idx = np.flatnonzero(~gvec.validity)
        if len(null_idx):
            feed(None, vvec, null_idx)
    return {key: state.result() for key, state in states.items()}


def row_aggregate(rows: Iterable[dict], column: str, func: str,
                  predicates: Sequence[PredicateSpec] = ()) -> Optional[float]:
    """Row-at-a-time reference implementation (the ablation baseline).

    Shares the vectorized kernels' NULL semantics: a NULL predicate operand
    makes the comparison unknown and the row is filtered (for every
    operator, ``<>`` included), and NULL aggregation inputs are skipped.
    """
    state = VectorAggState(func)
    buffer: List[float] = []
    for row in rows:
        keep = True
        for pred_col, op, literal in predicates:
            value = row.get(pred_col)
            if value is None:
                keep = False
                break
            if op == "=":
                keep = value == literal
            elif op == "<>":
                keep = value != literal
            elif op == "<":
                keep = value < literal
            elif op == "<=":
                keep = value <= literal
            elif op == ">":
                keep = value > literal
            elif op == ">=":
                keep = value >= literal
            else:
                raise ExecutionError(f"unsupported op {op!r}")
            if not keep:
                break
        if keep and row.get(column) is not None:
            buffer.append(row[column])
    if buffer:
        state.update(np.asarray(buffer, dtype=np.float64))
    return state.result()
