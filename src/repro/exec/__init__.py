"""Physical execution: volcano operators and vectorized kernels."""

from repro.exec.operators import PhysicalOp, walk_physical

__all__ = ["PhysicalOp", "walk_physical"]
