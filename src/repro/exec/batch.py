"""Columnar batch execution: numpy column batches as the executor currency.

The row executor in :mod:`repro.exec.operators` is a classic volcano
pipeline — every operator yields Python tuples.  This module makes column
batches (positionally schema-aligned :class:`~repro.storage.colstore.
ColumnVector` lists) the unit of exchange instead: scans emit whole filtered
chunks, filters and projections evaluate compiled numpy expressions over
them, joins probe with vectorized key extraction, sorts run stable
``np.lexsort`` passes, and the per-DN fragment path ships partial-aggregate
states as object batches across exchanges.  Rows materialize only at the
client boundary (or wherever a row-only operator sits above a batched one).

Two invariants keep batch execution *replay-identical* to the row path:

* **Row counts** — ``PhysicalOp._count_batches`` adds ``batch.n`` per batch,
  so ``actual_rows`` (and with it every simulated profile time, which is a
  pure function of row counts) matches the row path exactly.  Because a
  ``LIMIT`` stops pulling mid-stream, batching is disabled in any subtree
  under one — a batched descendant would count rows the row path never
  produced.
* **Values** — kernels either reuse the row path's own math (partial
  aggregation states) or perform the same elementwise operation the row
  expression interpreter would (comparisons, arithmetic on the same
  operands), and the row bridge unboxes numpy scalars back to the Python
  values the row path yields.

``enable_batches`` is the activation pass: it walks a physical plan, marks
operators whose subtree can batch, and pre-compiles their expressions.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.common.errors import ExecutionError
from repro.optimizer.expr import (
    BoundBinary,
    BoundColumn,
    BoundConst,
    BoundExpr,
    BoundInList,
    BoundIsNull,
    BoundUnary,
)
from repro.storage.colstore import ColumnVector

#: Rows per materialized batch for operators that re-chunk their output
#: (sorts, partial-aggregate state shipping, the row->batch boundary).
DEFAULT_BATCH_SIZE = 1024


class Batch:
    """One column batch: vectors positionally aligned with the op schema."""

    __slots__ = ("columns", "n")

    def __init__(self, columns: List[ColumnVector], n: int):
        self.columns = columns
        self.n = n

    def take(self, idx: np.ndarray) -> "Batch":
        return Batch([ColumnVector(c.data[idx], c.validity[idx])
                      for c in self.columns], int(len(idx)))

    def select(self, mask: np.ndarray) -> "Batch":
        return Batch([ColumnVector(c.data[mask], c.validity[mask])
                      for c in self.columns], int(mask.sum()))


def _unbox(value):
    return value.item() if hasattr(value, "item") else value


def rows_from_batches(batches: Iterable[Batch]) -> Iterator[tuple]:
    """The batch->row bridge: the only place values unbox.

    NULL lanes materialize as ``None`` and numpy scalars unbox to Python
    values, exactly like ``vector_scan_rows`` — the bridge output is
    byte-identical to what the row path yields.  Columns unbox in bulk
    (``ndarray.tolist`` converts at C speed and yields the same Python
    values per element as ``.item()``).
    """
    for batch in batches:
        cols = []
        for c in batch.columns:
            values = c.data.tolist()
            if not c.validity.all():
                values = [v if ok else None
                          for v, ok in zip(values, c.validity.tolist())]
            cols.append(values)
        if len(cols) == 1:
            for v in cols[0]:
                yield (v,)
        else:
            yield from zip(*cols)


def batches_from_rows(rows: Iterable[tuple], width: int,
                      batch_size: int) -> Iterator[Batch]:
    """Wrap a row stream into object-dtype batches.

    Values are stored as the exact Python objects the row produced (state
    tuples included), so bridging back to rows reproduces them bit for bit.
    """
    buf: List[tuple] = []
    for row in rows:
        buf.append(row)
        if len(buf) >= batch_size:
            yield Batch(_object_columns(buf, width), len(buf))
            buf = []
    if buf:
        yield Batch(_object_columns(buf, width), len(buf))


def _object_columns(rows: List[tuple], width: int) -> List[ColumnVector]:
    cols = []
    for j in range(width):
        data = np.empty(len(rows), dtype=object)
        validity = np.empty(len(rows), dtype=bool)
        for i, row in enumerate(rows):
            value = row[j]
            data[i] = value
            validity[i] = value is not None
        cols.append(ColumnVector(data, validity))
    return cols


def concat_batches(batches: List[Batch], width: int) -> Batch:
    if len(batches) == 1:
        return batches[0]
    columns = [
        ColumnVector(np.concatenate([b.columns[j].data for b in batches]),
                     np.concatenate([b.columns[j].validity for b in batches]))
        for j in range(width)
    ]
    return Batch(columns, sum(b.n for b in batches))


# -- compiled batch expressions -------------------------------------------
#
# ``compile_expr`` turns a bound expression into a ``Batch -> ColumnVector``
# function, or returns None when the expression uses something the batch
# interpreter cannot reproduce exactly (LIKE, CASE, scalar calls, string
# concat, division by a non-constant) — the operator then stays on the row
# path.  NULL handling mirrors the row interpreter's semantics operator for
# operator (including its short-circuit AND, where a NULL left side yields
# NULL regardless of the right side).

BatchFn = Callable[[Batch], ColumnVector]

_CMP = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "%": lambda a, b: a % b,
}


def _truth(vec: ColumnVector) -> np.ndarray:
    """Lanes that are valid and truthy (SQL predicate acceptance)."""
    data = vec.data
    if data.dtype != np.bool_:
        data = data.astype(bool)
    return data & vec.validity


def truth_mask(vec: ColumnVector) -> np.ndarray:
    """Filter mask for a predicate result: NULL and false lanes drop."""
    return _truth(vec)


def _const_vector(value: object, n: int) -> ColumnVector:
    if value is None:
        return ColumnVector(np.zeros(n, dtype=np.int64),
                            np.zeros(n, dtype=bool))
    if isinstance(value, bool):
        dtype = np.bool_
    elif isinstance(value, int):
        dtype = np.int64
    elif isinstance(value, float):
        dtype = np.float64
    else:
        dtype = object
    return ColumnVector(np.full(n, value, dtype=dtype),
                        np.ones(n, dtype=bool))


def _lanewise(fn, left: ColumnVector, right: ColumnVector, n: int,
              out_dtype=None) -> ColumnVector:
    """Apply ``fn`` on lanes where both sides are valid.

    Invalid lanes are never handed to ``fn`` (object columns may carry
    ``None`` there, which would blow up ``<`` or ``+``); their output lanes
    hold a dtype sentinel and validity False — NULL in, NULL out.
    """
    both = left.validity & right.validity
    if both.all():
        try:
            data = fn(left.data, right.data)
        except TypeError:
            raise ExecutionError("cannot compare incompatible batch lanes"
                                 ) from None
        data = np.asarray(data)
        return ColumnVector(data, both)
    if not both.any():
        dtype = out_dtype if out_dtype is not None else np.int64
        return ColumnVector(np.zeros(n, dtype=dtype), both)
    try:
        sub = np.asarray(fn(left.data[both], right.data[both]))
    except TypeError:
        raise ExecutionError("cannot compare incompatible batch lanes"
                             ) from None
    data = np.zeros(n, dtype=sub.dtype if out_dtype is None else out_dtype)
    data[both] = sub
    return ColumnVector(data, both)


def compile_expr(expr: BoundExpr) -> Optional[BatchFn]:
    if isinstance(expr, BoundColumn):
        index = expr.index

        return lambda batch: batch.columns[index]
    if isinstance(expr, BoundConst):
        value = expr.value

        return lambda batch: _const_vector(value, batch.n)
    if isinstance(expr, BoundIsNull):
        fn = compile_expr(expr.operand)
        if fn is None:
            return None
        negated = expr.negated

        def is_null(batch: Batch) -> ColumnVector:
            vec = fn(batch)
            data = vec.validity.copy() if negated else ~vec.validity
            return ColumnVector(data, np.ones(batch.n, dtype=bool))

        return is_null
    if isinstance(expr, BoundUnary):
        fn = compile_expr(expr.operand)
        if fn is None:
            return None
        if expr.op == "not":
            def negate(batch: Batch) -> ColumnVector:
                vec = fn(batch)
                return ColumnVector(~_truth(vec), vec.validity)

            return negate
        if expr.op == "-":
            def minus(batch: Batch) -> ColumnVector:
                vec = fn(batch)
                if vec.data.dtype == object:
                    data = np.array(
                        [-v if valid else 0 for v, valid
                         in zip(vec.data, vec.validity)], dtype=object)
                else:
                    data = -vec.data
                return ColumnVector(data, vec.validity)

            return minus
        return None
    if isinstance(expr, BoundInList):
        return _compile_in_list(expr)
    if isinstance(expr, BoundBinary):
        return _compile_binary(expr)
    return None


def _compile_in_list(expr: BoundInList) -> Optional[BatchFn]:
    needle_fn = compile_expr(expr.needle)
    item_fns = [compile_expr(item) for item in expr.items]
    if needle_fn is None or any(fn is None for fn in item_fns):
        return None
    negated = expr.negated

    def in_list(batch: Batch) -> ColumnVector:
        needle = needle_fn(batch)
        found = np.zeros(batch.n, dtype=bool)
        for fn in item_fns:
            item = fn(batch)
            # Row semantics: a NULL item simply never matches (== is False).
            eq = _lanewise(lambda a, b: a == b, needle, item, batch.n)
            found |= eq.data.astype(bool) & eq.validity
        return ColumnVector(~found if negated else found, needle.validity)

    return in_list


def _compile_binary(expr: BoundBinary) -> Optional[BatchFn]:
    op = expr.op
    left_fn = compile_expr(expr.left)
    right_fn = compile_expr(expr.right)
    if left_fn is None or right_fn is None:
        return None
    if op == "and":
        def and_(batch: Batch) -> ColumnVector:
            left, right = left_fn(batch), right_fn(batch)
            lt, rt = _truth(left), _truth(right)
            # Row interpreter: NULL left short-circuits to NULL; a false
            # left yields False; otherwise the right side decides.
            validity = left.validity & (~lt | right.validity)
            return ColumnVector(lt & rt, validity)

        return and_
    if op == "or":
        def or_(batch: Batch) -> ColumnVector:
            left, right = left_fn(batch), right_fn(batch)
            lt, rt = _truth(left), _truth(right)
            data = lt | rt
            validity = data | (left.validity & right.validity)
            return ColumnVector(data, validity)

        return or_
    if op in _CMP:
        cmp = _CMP[op]

        def compare(batch: Batch) -> ColumnVector:
            vec = _lanewise(cmp, left_fn(batch), right_fn(batch), batch.n,
                            out_dtype=np.bool_)
            if vec.data.dtype != np.bool_:
                vec = ColumnVector(vec.data.astype(bool), vec.validity)
            return vec

        return compare
    if op == "/":
        # Only a non-zero constant divisor is compiled: the row interpreter
        # raises per offending row, a semantics a whole-batch kernel cannot
        # reproduce for arbitrary divisors.
        if not isinstance(expr.right, BoundConst) or expr.right.value in (None, 0):
            return None

        def divide(batch: Batch) -> ColumnVector:
            return _lanewise(lambda a, b: a / b, left_fn(batch),
                             right_fn(batch), batch.n, out_dtype=np.float64)

        return divide
    if op in _ARITH:
        arith = _ARITH[op]

        def arithmetic(batch: Batch) -> ColumnVector:
            return _lanewise(arith, left_fn(batch), right_fn(batch), batch.n)

        return arithmetic
    return None


# -- partial aggregation --------------------------------------------------

_STAR = object()


def partial_states_from_batches(agg) -> Optional[Iterator[tuple]]:
    """Batch-native ``PPartialAgg``: group and accumulate over column lanes.

    Only used when the shared vector fast path (``vector_partial_states``)
    does not apply — there the row path does per-row Python accumulation,
    and this kernel reproduces that math bit for bit:

    * sums accumulate with ``sum(values, start)`` — the same left-to-right
      float additions, in the same row order, as ``cell[1] += value``;
    * groups are created in first-seen row order (the NULL group
      included), so state rows emit in exactly the row path's order;
    * counts skip NULL arguments, min/max compare the same values.

    Returns ``None`` when the shape is out of scope (multi-column group
    keys, uncompilable arguments, object-typed group sources) — the caller
    falls back to the row-path ``_aggregate``.
    """
    child = agg.child
    if not child.batch_mode:
        return None
    from repro.exec import operators as ops
    if not isinstance(child, (ops.PScan, ops.PFilter)):
        # joins and state-shipping children can carry object-dtype columns
        # whose lanes np.unique cannot order; stay on the row path there
        return None
    if len(agg.group_exprs) > 1:
        return None
    group_fn = None
    if agg.group_exprs:
        group_fn = compile_expr(agg.group_exprs[0])
        if group_fn is None:
            return None
    arg_fns: List[object] = []
    for spec in agg.aggs:
        if spec.distinct or spec.func not in ("count", "sum", "avg",
                                              "min", "max"):
            return None
        if spec.arg is None:
            arg_fns.append(_STAR)
            continue
        fn = compile_expr(spec.arg)
        if fn is None:
            return None
        arg_fns.append(fn)
    return _partial_states_iter(agg, group_fn, arg_fns)


def _partial_states_iter(agg, group_fn, arg_fns) -> Iterator[tuple]:
    from repro.exec.operators import _entry_bytes

    mem = entry_bytes = None
    if getattr(agg, "wlm_ctx", None) is not None:
        mem = agg.wlm_ctx.memory_for(agg)
        entry_bytes = _entry_bytes(agg.schema)
    specs = agg.aggs
    states: dict = {}
    ordered: List[tuple] = []

    def cells_for(key: tuple) -> List[list]:
        cells = states.get(key)
        if cells is None:
            cells = states[key] = [[0, 0.0, None, None] for _ in specs]
            ordered.append(key)
            if mem is not None:
                mem.grow(entry_bytes)
        return cells

    def feed(cells: List[list], member: np.ndarray, count: int,
             arg_vecs: List[Optional[ColumnVector]]) -> None:
        for spec, cell, vec in zip(specs, cells, arg_vecs):
            if vec is None:                        # COUNT(*)
                cell[0] += count
                continue
            mvalid = vec.validity[member]
            sub = member if mvalid.all() else member[mvalid]
            k = int(len(sub))
            if not k:
                continue
            cell[0] += k
            func = spec.func
            if func in ("sum", "avg"):
                # left-to-right adds from the running total: identical
                # float rounding to the row path's per-row `+=`
                cell[1] = sum(vec.data[sub].tolist(), cell[1])
            elif func == "min":
                low = min(vec.data[sub].tolist())
                if cell[2] is None or low < cell[2]:
                    cell[2] = low
            elif func == "max":
                high = max(vec.data[sub].tolist())
                if cell[3] is None or high > cell[3]:
                    cell[3] = high

    try:
        for batch in agg.child.batches():
            arg_vecs = [None if fn is _STAR else fn(batch)
                        for fn in arg_fns]
            if group_fn is None:
                all_rows = np.arange(batch.n)
                feed(cells_for(()), all_rows, batch.n, arg_vecs)
                continue
            gvec = group_fn(batch)
            validity = gvec.validity
            n = batch.n
            # dense group codes with the NULL group as its own bucket
            if validity.all():
                uniq, codes = np.unique(gvec.data, return_inverse=True)
                n_groups = len(uniq)
            elif not validity.any():
                uniq = np.empty(0, dtype=gvec.data.dtype)
                codes = np.zeros(n, dtype=np.int64)
                n_groups = 0
            else:
                valid_idx = np.flatnonzero(validity)
                uniq, inverse = np.unique(gvec.data[valid_idx],
                                          return_inverse=True)
                n_groups = len(uniq)
                codes = np.full(n, n_groups, dtype=np.int64)
                codes[valid_idx] = inverse
            total = n_groups + (0 if validity.all() else 1)
            # members of each code in ascending row order
            order_idx = np.argsort(codes, kind="stable")
            bounds = np.searchsorted(codes[order_idx], np.arange(total + 1))
            # process codes by first occurrence so groups are created in
            # first-seen row order, exactly like the row path's dict
            first = np.full(total, n, dtype=np.int64)
            np.minimum.at(first, codes, np.arange(n))
            for code in np.argsort(first, kind="stable").tolist():
                member = order_idx[bounds[code]:bounds[code + 1]]
                if code < n_groups:
                    key = (_unbox(uniq[code]),)
                else:
                    key = (None,)
                feed(cells_for(key), member, int(len(member)), arg_vecs)
        if not states and group_fn is None:
            yield tuple((0, 0.0, None, None) for _ in specs)
            return
        for key in ordered:
            yield key + tuple(tuple(cell) for cell in states[key])
    finally:
        if mem is not None:
            mem.finish()


# -- sort kernel ----------------------------------------------------------

def _sort_codes(data: np.ndarray, validity: np.ndarray) -> np.ndarray:
    """Dense ordinal codes for one sort key (NULL lanes neutralized).

    Invalid lanes get the first valid lane's value before coding so object
    columns never compare ``None`` against real values; the null flag pass
    separates them anyway, exactly like the row path's ``(is_null, value)``
    composite key.
    """
    if validity.all():
        return np.unique(data, return_inverse=True)[1].astype(np.int64)
    if not validity.any():
        return np.zeros(len(data), dtype=np.int64)
    filled = data.copy()
    filled[~validity] = data[np.flatnonzero(validity)[0]]
    return np.unique(filled, return_inverse=True)[1].astype(np.int64)


def sort_indices(keys: List[Tuple[ColumnVector, bool]], n: int) -> np.ndarray:
    """Row order for a stable multi-key sort, matching the row path.

    Applies keys last-to-first with one stable ``lexsort`` per key —
    ascending sorts NULLs last, descending first, ties keep input order —
    which is exactly the successive stable ``list.sort`` passes the row
    executor runs.
    """
    order = np.arange(n)
    for vec, descending in reversed(keys):
        data = vec.data[order]
        validity = vec.validity[order]
        codes = _sort_codes(data, validity)
        null_flag = (~validity).astype(np.int64)
        if descending:
            perm = np.lexsort((-codes, 1 - null_flag))
        else:
            perm = np.lexsort((codes, null_flag))
        order = order[perm]
    return order


def sorted_batches(sort_op, collected: List[Batch]) -> Iterator[Batch]:
    """Sort buffered batches and re-emit them in ``batch_size`` slices."""
    if not collected:
        return
    width = len(sort_op.schema)
    big = concat_batches(collected, width)
    keys = [(fn(big), descending)
            for fn, descending in sort_op._batch_keys]
    order = sort_indices(keys, big.n)
    step = max(1, int(sort_op.batch_size))
    for start in range(0, big.n, step):
        yield big.take(order[start:start + step])


# -- join probe -----------------------------------------------------------

def probe_batches(join, table) -> Iterator[Batch]:
    """Vectorized-probe inner equi-join: batched left, row-built right.

    Keys are extracted with compiled batch expressions; the per-lane dict
    probe emits (left lane, build row) pairs in lane-major, build-insertion
    order — the exact output order of the row path's probe loop.  Right-side
    columns materialize as object vectors holding the build rows' original
    Python values.
    """
    key_fns = join._batch_keys
    right_width = len(join.right.schema)
    for batch in join.left.batches():
        key_vecs = [fn(batch) for fn in key_fns]
        left_idx: List[int] = []
        right_rows: List[tuple] = []
        for i in range(batch.n):
            if not all(vec.validity[i] for vec in key_vecs):
                continue
            matches = table.get(tuple(vec.data[i] for vec in key_vecs))
            if not matches:
                continue
            for row in matches:
                left_idx.append(i)
                right_rows.append(row)
        if not left_idx:
            continue
        idx = np.asarray(left_idx, dtype=np.int64)
        left_cols = [ColumnVector(c.data[idx], c.validity[idx])
                     for c in batch.columns]
        yield Batch(left_cols + _object_columns(right_rows, right_width),
                    len(idx))


# -- activation pass ------------------------------------------------------

def enable_batches(root, batch_size: int = DEFAULT_BATCH_SIZE) -> None:
    """Mark every operator whose subtree can run in batch mode.

    Top-down: a ``LIMIT`` forbids batching in its whole subtree (it stops
    pulling mid-stream, so a batched descendant would over-count rows
    relative to the row path); every other operator fully drains its
    children, which makes batch->row bridges count-exact.  Compiled batch
    expressions are cached on the operators, so a plan activated once (and
    then held in the plan cache) never recompiles.
    """
    _activate(root, batch_size, allow=True)


def _activate(op, batch_size: int, allow: bool) -> None:
    from repro.exec import operators as ops

    if isinstance(op, ops.PLimit):
        allow = False
    for child in op.children():
        _activate(child, batch_size, allow)
    if not allow:
        op.batch_mode = False
        return
    op.batch_size = batch_size
    op.batch_mode = _can_batch(op, ops)


def _can_batch(op, ops) -> bool:
    if isinstance(op, ops.PScan):
        if op.vector_store is None:
            return False
        if op.vector_preds is not None:
            return True
        if op.predicate is None:
            return False
        pred_fn = compile_expr(op.predicate)
        if pred_fn is None:
            return False
        op._batch_pred = pred_fn
        return True
    if isinstance(op, ops.PFilter):
        if not op.child.batch_mode:
            return False
        pred_fn = compile_expr(op.predicate)
        if pred_fn is None:
            return False
        op._batch_pred = pred_fn
        return True
    if isinstance(op, ops.PProject):
        if not op.child.batch_mode:
            return False
        fns = [compile_expr(e) for e in op.exprs]
        if any(fn is None for fn in fns):
            return False
        op._batch_exprs = fns
        return True
    if isinstance(op, ops.PSort):
        if not op.child.batch_mode:
            return False
        keys = [(compile_expr(e), d) for e, d in op.keys]
        if any(fn is None for fn, _ in keys):
            return False
        op._batch_keys = keys
        return True
    if isinstance(op, ops.PHashJoin):
        # Inner equi-joins without residuals: the probe's output order is
        # lane-major/build-order either way.  Outer joins and residuals
        # interleave pad rows mid-stream and stay on the row path.
        if op.kind != "inner" or op.residual is not None:
            return False
        if not op.left.batch_mode:
            return False
        keys = [compile_expr(k) for k in op.left_keys]
        if any(fn is None for fn in keys):
            return False
        op._batch_keys = keys
        return True
    if isinstance(op, ops.PPartialAgg):
        # Reuses its own row/vector aggregation math and ships the state
        # rows as object batches, so exchange serialization is batched.
        return True
    if isinstance(op, (ops.PFragment,)):
        return op.child.batch_mode
    if isinstance(op, (ops.PExchange, ops.PUnionAll)):
        return all(child.batch_mode for child in op.children())
    return False
