"""The time-series engine (Sec. II-B).

The paper asks for "high ingestion rate for time-series data" plus
spatial-temporal processing.  This engine provides:

* an append-optimized ingest buffer that seals into time-ordered,
  numpy-backed chunks (out-of-order arrivals within a slack window are
  sorted at seal time),
* range scans, sliding windows (``last_window`` backs the paper's
  ``now() - time < 30 minutes`` idiom), window aggregation and
  downsampling,
* per-series tags and multi-column values,
* pre-aggregation hooks, the paper's own suggestion for device/edge data
  reduction ("perform data pre-aggregation for time series data at devices
  and edges").
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigError, ExecutionError, StorageError

DEFAULT_CHUNK_POINTS = 2048

_AGG_FUNCS: Dict[str, Callable[[np.ndarray], float]] = {
    "min": lambda a: float(np.min(a)),
    "max": lambda a: float(np.max(a)),
    "avg": lambda a: float(np.mean(a)),
    "sum": lambda a: float(np.sum(a)),
    "count": lambda a: float(len(a)),
    "first": lambda a: float(a[0]),
    "last": lambda a: float(a[-1]),
}


@dataclass
class _Chunk:
    """A sealed, time-sorted block of points."""

    times: np.ndarray                      # int64 microseconds, ascending
    values: Dict[str, np.ndarray]

    @property
    def t_min(self) -> int:
        return int(self.times[0])

    @property
    def t_max(self) -> int:
        return int(self.times[-1])

    def slice(self, t0: int, t1: int) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        lo = int(np.searchsorted(self.times, t0, side="left"))
        hi = int(np.searchsorted(self.times, t1, side="right"))
        return self.times[lo:hi], {k: v[lo:hi] for k, v in self.values.items()}


class TimeSeries:
    """One named series with multi-column float values."""

    def __init__(self, name: str, value_columns: Sequence[str],
                 tags: Optional[Dict[str, str]] = None,
                 chunk_points: int = DEFAULT_CHUNK_POINTS):
        if not value_columns:
            raise ConfigError("a series needs at least one value column")
        if chunk_points <= 0:
            raise ConfigError("chunk_points must be positive")
        self.name = name
        self.value_columns = list(value_columns)
        self.tags = dict(tags or {})
        self.chunk_points = chunk_points
        self._chunks: List[_Chunk] = []
        self._buf_times: List[int] = []
        self._buf_values: Dict[str, List[float]] = {c: [] for c in value_columns}
        self.points_ingested = 0

    # -- ingest ------------------------------------------------------------

    def append(self, t_us: int, *args: float, **kwargs: float) -> None:
        """Ingest one point; values positionally or by column name."""
        if args and kwargs:
            raise ExecutionError("pass values positionally or by name, not both")
        if args:
            if len(args) != len(self.value_columns):
                raise ExecutionError(
                    f"{self.name}: expected {len(self.value_columns)} values"
                )
            values = dict(zip(self.value_columns, args))
        else:
            values = kwargs
        missing = set(self.value_columns) - set(values)
        if missing:
            raise ExecutionError(f"{self.name}: missing values {sorted(missing)}")
        self._buf_times.append(int(t_us))
        for column in self.value_columns:
            self._buf_values[column].append(float(values[column]))
        self.points_ingested += 1
        if len(self._buf_times) >= self.chunk_points:
            self._seal()

    def flush(self) -> None:
        if self._buf_times:
            self._seal()

    def _seal(self) -> None:
        times = np.asarray(self._buf_times, dtype=np.int64)
        order = np.argsort(times, kind="stable")
        chunk = _Chunk(
            times=times[order],
            values={c: np.asarray(self._buf_values[c], dtype=np.float64)[order]
                    for c in self.value_columns},
        )
        if self._chunks and chunk.t_min < self._chunks[-1].t_max:
            # Late data overlapping the previous chunk: merge the two so the
            # chunk list stays time-ordered and disjoint.
            prev = self._chunks.pop()
            merged_times = np.concatenate([prev.times, chunk.times])
            order = np.argsort(merged_times, kind="stable")
            chunk = _Chunk(
                times=merged_times[order],
                values={
                    c: np.concatenate([prev.values[c], chunk.values[c]])[order]
                    for c in self.value_columns
                },
            )
        self._chunks.append(chunk)
        self._buf_times = []
        self._buf_values = {c: [] for c in self.value_columns}

    # -- queries -----------------------------------------------------------------

    @property
    def point_count(self) -> int:
        return self.points_ingested

    def time_bounds(self) -> Optional[Tuple[int, int]]:
        self.flush()
        if not self._chunks:
            return None
        return self._chunks[0].t_min, self._chunks[-1].t_max

    def range(self, t0: int, t1: int) -> Iterator[Tuple[int, Dict[str, float]]]:
        """All points with t0 <= t <= t1, in time order."""
        self.flush()
        for chunk in self._chunks:
            if chunk.t_max < t0 or chunk.t_min > t1:
                continue
            times, values = chunk.slice(t0, t1)
            for i in range(len(times)):
                yield int(times[i]), {c: float(values[c][i])
                                      for c in self.value_columns}

    def last_window(self, window_us: int,
                    now_us: int) -> Iterator[Tuple[int, Dict[str, float]]]:
        """Points with ``now - t < window`` — the Example 1 idiom."""
        return self.range(now_us - window_us + 1, now_us)

    def aggregate(self, t0: int, t1: int, column: str, func: str) -> Optional[float]:
        """One aggregate over a time range; None over an empty range."""
        if func not in _AGG_FUNCS:
            raise ExecutionError(f"unknown aggregate {func!r}")
        if column not in self.value_columns:
            raise StorageError(f"{self.name}: no column {column!r}")
        self.flush()
        parts: List[np.ndarray] = []
        for chunk in self._chunks:
            if chunk.t_max < t0 or chunk.t_min > t1:
                continue
            _, values = chunk.slice(t0, t1)
            if len(values[column]):
                parts.append(values[column])
        if not parts:
            return None
        return _AGG_FUNCS[func](np.concatenate(parts))

    def window_aggregate(self, t0: int, t1: int, step_us: int, column: str,
                         func: str) -> List[Tuple[int, Optional[float]]]:
        """Tumbling-window aggregation: one value per [t, t+step) bucket."""
        if step_us <= 0:
            raise ConfigError("step must be positive")
        out: List[Tuple[int, Optional[float]]] = []
        t = t0
        while t < t1:
            out.append((t, self.aggregate(t, min(t + step_us - 1, t1), column, func)))
            t += step_us
        return out

    def downsample(self, step_us: int, column: str,
                   func: str = "avg") -> "TimeSeries":
        """Materialize a coarser series (device/edge pre-aggregation)."""
        bounds = self.time_bounds()
        result = TimeSeries(f"{self.name}_{func}_{step_us}", [column],
                            tags=dict(self.tags))
        if bounds is None:
            return result
        t0 = (bounds[0] // step_us) * step_us
        for t, value in self.window_aggregate(t0, bounds[1] + 1, step_us,
                                              column, func):
            if value is not None:
                result.append(t, value)
        result.flush()
        return result


class TimeSeriesEngine:
    """Registry of named series (the time-series runtime engine of Fig. 4)."""

    def __init__(self) -> None:
        self._series: Dict[str, TimeSeries] = {}

    def create_series(self, name: str, value_columns: Sequence[str],
                      tags: Optional[Dict[str, str]] = None) -> TimeSeries:
        if name in self._series:
            raise StorageError(f"series {name!r} already exists")
        series = TimeSeries(name, value_columns, tags)
        self._series[name] = series
        return series

    def series(self, name: str) -> TimeSeries:
        try:
            return self._series[name]
        except KeyError:
            raise StorageError(f"no series {name!r}") from None

    def has(self, name: str) -> bool:
        return name in self._series

    def names(self) -> List[str]:
        return sorted(self._series)

    def drop(self, name: str) -> None:
        self._series.pop(name, None)
