"""The spatial engine (Sec. II-B).

A uniform-grid spatial index over 2-D points with the query set the paper's
autonomous-vehicle scenario needs: bounding-box search, radius search and
k-nearest-neighbours, plus great-circle distance for GPS coordinates.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.common.errors import ConfigError, StorageError


@dataclass(frozen=True)
class SpatialPoint:
    oid: object
    x: float
    y: float
    props: Tuple[Tuple[str, object], ...] = ()

    def prop(self, key: str, default=None):
        for name, value in self.props:
            if name == key:
                return value
        return default


def euclidean(x1: float, y1: float, x2: float, y2: float) -> float:
    return math.hypot(x1 - x2, y1 - y2)


def haversine_m(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance in meters (for GPS lat/lon data)."""
    r = 6_371_000.0
    p1, p2 = math.radians(lat1), math.radians(lat2)
    dp = math.radians(lat2 - lat1)
    dl = math.radians(lon2 - lon1)
    a = math.sin(dp / 2) ** 2 + math.cos(p1) * math.cos(p2) * math.sin(dl / 2) ** 2
    return 2 * r * math.asin(math.sqrt(a))


class GridIndex:
    """Uniform grid over 2-D points."""

    def __init__(self, cell_size: float = 1.0):
        if cell_size <= 0:
            raise ConfigError("cell_size must be positive")
        self.cell_size = cell_size
        self._cells: Dict[Tuple[int, int], Set[object]] = {}
        self._points: Dict[object, SpatialPoint] = {}

    def _cell_of(self, x: float, y: float) -> Tuple[int, int]:
        return (int(math.floor(x / self.cell_size)),
                int(math.floor(y / self.cell_size)))

    # -- mutation ---------------------------------------------------------

    def insert(self, oid: object, x: float, y: float, **props: object) -> None:
        if oid in self._points:
            raise StorageError(f"spatial object {oid!r} already exists")
        point = SpatialPoint(oid, float(x), float(y), tuple(sorted(props.items())))
        self._points[oid] = point
        self._cells.setdefault(self._cell_of(x, y), set()).add(oid)

    def remove(self, oid: object) -> None:
        point = self._points.pop(oid, None)
        if point is None:
            return
        cell = self._cell_of(point.x, point.y)
        bucket = self._cells.get(cell)
        if bucket is not None:
            bucket.discard(oid)
            if not bucket:
                del self._cells[cell]

    def move(self, oid: object, x: float, y: float) -> None:
        point = self._points.get(oid)
        if point is None:
            raise StorageError(f"no spatial object {oid!r}")
        props = dict(point.props)
        self.remove(oid)
        self.insert(oid, x, y, **props)

    # -- queries ------------------------------------------------------------

    def get(self, oid: object) -> Optional[SpatialPoint]:
        return self._points.get(oid)

    def __len__(self) -> int:
        return len(self._points)

    def bbox(self, x0: float, y0: float, x1: float, y1: float
             ) -> Iterator[SpatialPoint]:
        """All points with x0<=x<=x1 and y0<=y<=y1."""
        if x1 < x0 or y1 < y0:
            return
        cx0, cy0 = self._cell_of(x0, y0)
        cx1, cy1 = self._cell_of(x1, y1)
        for cx in range(cx0, cx1 + 1):
            for cy in range(cy0, cy1 + 1):
                for oid in self._cells.get((cx, cy), ()):
                    point = self._points[oid]
                    if x0 <= point.x <= x1 and y0 <= point.y <= y1:
                        yield point

    def radius(self, x: float, y: float, r: float) -> List[SpatialPoint]:
        """Points within Euclidean distance r, nearest first."""
        if r < 0:
            raise ConfigError("radius must be non-negative")
        hits = []
        for point in self.bbox(x - r, y - r, x + r, y + r):
            d = euclidean(x, y, point.x, point.y)
            if d <= r:
                hits.append((d, point))
        hits.sort(key=lambda h: (h[0], repr(h[1].oid)))
        return [point for _, point in hits]

    def knn(self, x: float, y: float, k: int) -> List[SpatialPoint]:
        """The k nearest points, expanding the search ring by ring."""
        if k <= 0:
            return []
        if not self._points:
            return []
        best: List[Tuple[float, str, SpatialPoint]] = []
        cx, cy = self._cell_of(x, y)
        ring = 0
        max_ring = self._max_ring()
        while ring <= max_ring:
            for cell in self._ring_cells(cx, cy, ring):
                for oid in self._cells.get(cell, ()):
                    point = self._points[oid]
                    d = euclidean(x, y, point.x, point.y)
                    heapq.heappush(best, (d, repr(oid), point))
            # Points in farther rings are at least (ring) * cell_size away;
            # stop once the k-th best is closer than the next ring can reach.
            if len(best) >= k:
                kth = heapq.nsmallest(k, best)[-1][0]
                if kth <= ring * self.cell_size:
                    break
            ring += 1
        return [point for _, _, point in heapq.nsmallest(k, best)]

    # -- internals ------------------------------------------------------------------

    def _max_ring(self) -> int:
        if not self._cells:
            return 0
        xs = [c[0] for c in self._cells]
        ys = [c[1] for c in self._cells]
        return max(max(xs) - min(xs), max(ys) - min(ys)) + 1

    @staticmethod
    def _ring_cells(cx: int, cy: int, ring: int) -> Iterator[Tuple[int, int]]:
        if ring == 0:
            yield (cx, cy)
            return
        for dx in range(-ring, ring + 1):
            yield (cx + dx, cy - ring)
            yield (cx + dx, cy + ring)
        for dy in range(-ring + 1, ring):
            yield (cx - ring, cy + dy)
            yield (cx + ring, cy + dy)


class SpatialEngine:
    """Named spatial layers (the spatial runtime engine of Fig. 4)."""

    def __init__(self, cell_size: float = 1.0):
        self._layers: Dict[str, GridIndex] = {}
        self._cell_size = cell_size

    def create_layer(self, name: str, cell_size: Optional[float] = None) -> GridIndex:
        if name in self._layers:
            raise StorageError(f"layer {name!r} already exists")
        index = GridIndex(cell_size if cell_size is not None else self._cell_size)
        self._layers[name] = index
        return index

    def layer(self, name: str) -> GridIndex:
        try:
            return self._layers[name]
        except KeyError:
            raise StorageError(f"no spatial layer {name!r}") from None

    def has(self, name: str) -> bool:
        return name in self._layers

    def names(self) -> List[str]:
        return sorted(self._layers)
