"""Multi-model engines: graph, time-series, spatial, unified SQL (Sec. II-B)."""

from repro.multimodel.graph import P, PropertyGraph, Traversal, __
from repro.multimodel.gremlin import parse_gremlin
from repro.multimodel.mmdb import MultiModelDB
from repro.multimodel.spatial import GridIndex, SpatialEngine
from repro.multimodel.timeseries import TimeSeries, TimeSeriesEngine
from repro.multimodel.streaming import ContinuousQuery, EventStream, StreamEngine, WindowResult
from repro.multimodel.vision import BoundingBox, FeatureIndex, VisionEngine, VisionStore

__all__ = ["MultiModelDB", "PropertyGraph", "Traversal", "P", "__",
           "parse_gremlin", "TimeSeriesEngine", "TimeSeries",
           "SpatialEngine", "GridIndex"]

__all__ += ["VisionEngine", "VisionStore", "FeatureIndex", "BoundingBox"]
__all__ += ["StreamEngine", "EventStream", "ContinuousQuery", "WindowResult"]
