"""The graph engine (Sec. II-B).

Per the paper's unified storage design, "graphs are represented through
tables for vertexes and edges": the property graph is backed by two
relational row stores plus adjacency indexes, and is queried with a
Gremlin-style traversal DSL — both a fluent Python API and a parser for
Gremlin strings, which is how ``ggraph('g.V()...')`` table expressions enter
SQL (Example 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.common.errors import ExecutionError, SqlSyntaxError


# -- predicates (Gremlin's P.*) ----------------------------------------------


@dataclass(frozen=True)
class P:
    """A comparison predicate usable inside ``has`` steps."""

    op: str
    value: object

    def test(self, other: object) -> bool:
        if other is None:
            return False
        if self.op == "eq":
            return other == self.value
        if self.op == "neq":
            return other != self.value
        try:
            if self.op == "gt":
                return other > self.value
            if self.op == "gte":
                return other >= self.value
            if self.op == "lt":
                return other < self.value
            if self.op == "lte":
                return other <= self.value
        except TypeError:
            return False
        if self.op == "within":
            return other in self.value  # type: ignore[operator]
        raise ExecutionError(f"unknown predicate {self.op!r}")

    @staticmethod
    def gt(value): return P("gt", value)          # noqa: E704
    @staticmethod
    def gte(value): return P("gte", value)        # noqa: E704
    @staticmethod
    def lt(value): return P("lt", value)          # noqa: E704
    @staticmethod
    def lte(value): return P("lte", value)        # noqa: E704
    @staticmethod
    def eq(value): return P("eq", value)          # noqa: E704
    @staticmethod
    def neq(value): return P("neq", value)        # noqa: E704
    @staticmethod
    def within(*values): return P("within", set(values))  # noqa: E704


def _matches(actual: object, expected: object) -> bool:
    if isinstance(expected, P):
        return expected.test(actual)
    return actual == expected


# -- storage -------------------------------------------------------------------


@dataclass
class Vertex:
    vid: object
    label: str
    props: Dict[str, object] = field(default_factory=dict)


@dataclass
class Edge:
    eid: object
    src: object
    dst: object
    label: str
    props: Dict[str, object] = field(default_factory=dict)


class PropertyGraph:
    """Vertex/edge tables with adjacency indexes."""

    def __init__(self, name: str = "graph"):
        self.name = name
        self._vertices: Dict[object, Vertex] = {}
        self._edges: Dict[object, Edge] = {}
        self._out: Dict[object, List[object]] = {}   # vid -> [eid]
        self._in: Dict[object, List[object]] = {}
        self._next_eid = 0

    # -- mutation ---------------------------------------------------------

    def add_vertex(self, vid: object, label: str = "vertex",
                   **props: object) -> Vertex:
        if vid in self._vertices:
            raise ExecutionError(f"vertex {vid!r} already exists")
        vertex = Vertex(vid, label, dict(props))
        self._vertices[vid] = vertex
        self._out.setdefault(vid, [])
        self._in.setdefault(vid, [])
        return vertex

    def add_edge(self, src: object, dst: object, label: str = "edge",
                 eid: Optional[object] = None, **props: object) -> Edge:
        if src not in self._vertices or dst not in self._vertices:
            raise ExecutionError(f"edge endpoints must exist ({src!r} -> {dst!r})")
        if eid is None:
            eid = f"e{self._next_eid}"
            self._next_eid += 1
        if eid in self._edges:
            raise ExecutionError(f"edge {eid!r} already exists")
        edge = Edge(eid, src, dst, label, dict(props))
        self._edges[eid] = edge
        self._out[src].append(eid)
        self._in[dst].append(eid)
        return edge

    def remove_vertex(self, vid: object) -> None:
        for eid in list(self._out.get(vid, ())) + list(self._in.get(vid, ())):
            self.remove_edge(eid)
        self._vertices.pop(vid, None)
        self._out.pop(vid, None)
        self._in.pop(vid, None)

    def remove_edge(self, eid: object) -> None:
        edge = self._edges.pop(eid, None)
        if edge is not None:
            self._out[edge.src].remove(eid)
            self._in[edge.dst].remove(eid)

    # -- access -----------------------------------------------------------------

    def vertex(self, vid: object) -> Vertex:
        try:
            return self._vertices[vid]
        except KeyError:
            raise ExecutionError(f"no vertex {vid!r}") from None

    def edge(self, eid: object) -> Edge:
        try:
            return self._edges[eid]
        except KeyError:
            raise ExecutionError(f"no edge {eid!r}") from None

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._vertices.values())

    def edges(self) -> Iterator[Edge]:
        return iter(self._edges.values())

    def out_edges(self, vid: object) -> List[Edge]:
        return [self._edges[e] for e in self._out.get(vid, ())]

    def in_edges(self, vid: object) -> List[Edge]:
        return [self._edges[e] for e in self._in.get(vid, ())]

    @property
    def vertex_count(self) -> int:
        return len(self._vertices)

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    # -- relational projection (the unified storage view) -----------------------

    def vertex_rows(self) -> List[dict]:
        """The graph's vertex table, as the unified storage engine sees it."""
        return [dict(vid=v.vid, label=v.label, **v.props)
                for v in self._vertices.values()]

    def edge_rows(self) -> List[dict]:
        return [dict(eid=e.eid, src=e.src, dst=e.dst, label=e.label, **e.props)
                for e in self._edges.values()]

    # -- traversal entry (Gremlin's ``g``) -------------------------------------

    def traversal(self) -> "Traversal":
        return Traversal(self)

    g = property(traversal)


# -- traversal ---------------------------------------------------------------------


class Traversal:
    """A lazy Gremlin-style traversal.

    Steps build a pipeline of generator transformations over *traverser*
    objects (the current element).  Terminal steps (``to_list``, ``count``,
    ``values`` iteration) run the pipeline.
    """

    def __init__(self, graph: Optional[PropertyGraph],
                 steps: Tuple[Callable, ...] = ()):
        self._graph = graph
        self._steps = steps

    def _with(self, step: Callable) -> "Traversal":
        return Traversal(self._graph, self._steps + (step,))

    def _run(self, source: Optional[Iterable] = None) -> Iterator:
        items: Iterable = source if source is not None else ()
        stream: Iterator = iter(items)
        graph = self._graph
        for step in self._steps:
            stream = step(stream, graph)
        return stream

    # -- start steps -------------------------------------------------------

    def V(self, *vids: object) -> "Traversal":
        def step(stream, graph):
            yield from stream
            if vids:
                for vid in vids:
                    if vid in graph._vertices:
                        yield graph._vertices[vid]
            else:
                yield from graph.vertices()
        return self._with(step)

    def E(self) -> "Traversal":
        def step(stream, graph):
            yield from stream
            yield from graph.edges()
        return self._with(step)

    # -- filter steps -----------------------------------------------------------

    def has(self, key: str, value: object) -> "Traversal":
        def step(stream, graph):
            for item in stream:
                actual = _prop(item, key)
                if _matches(actual, value):
                    yield item
        return self._with(step)

    def hasLabel(self, *labels: str) -> "Traversal":
        def step(stream, graph):
            for item in stream:
                if getattr(item, "label", None) in labels:
                    yield item
        return self._with(step)

    def where(self, sub: "Traversal") -> "Traversal":
        """Keep items for which the sub-traversal yields anything."""
        def step(stream, graph):
            for item in stream:
                inner = Traversal(graph, sub._steps)
                if next(inner._run([item]), None) is not None:
                    yield item
        return self._with(step)

    def dedup(self) -> "Traversal":
        def step(stream, graph):
            seen: Set = set()
            for item in stream:
                key = getattr(item, "vid", None) or getattr(item, "eid", None) or item
                if key not in seen:
                    seen.add(key)
                    yield item
        return self._with(step)

    def limit(self, n: int) -> "Traversal":
        def step(stream, graph):
            for i, item in enumerate(stream):
                if i >= n:
                    break
                yield item
        return self._with(step)

    def is_(self, value: object) -> "Traversal":
        """Filter a scalar stream (e.g. after count()) by value/predicate."""
        def step(stream, graph):
            for item in stream:
                if _matches(item, value):
                    yield item
        return self._with(step)

    # -- move steps -----------------------------------------------------------------

    def out(self, *labels: str) -> "Traversal":
        def step(stream, graph):
            for item in stream:
                for edge in graph.out_edges(_vid(item)):
                    if not labels or edge.label in labels:
                        yield graph.vertex(edge.dst)
        return self._with(step)

    def in_(self, *labels: str) -> "Traversal":
        def step(stream, graph):
            for item in stream:
                for edge in graph.in_edges(_vid(item)):
                    if not labels or edge.label in labels:
                        yield graph.vertex(edge.src)
        return self._with(step)

    def both(self, *labels: str) -> "Traversal":
        def step(stream, graph):
            for item in stream:
                vid = _vid(item)
                for edge in graph.out_edges(vid):
                    if not labels or edge.label in labels:
                        yield graph.vertex(edge.dst)
                for edge in graph.in_edges(vid):
                    if not labels or edge.label in labels:
                        yield graph.vertex(edge.src)
        return self._with(step)

    def outE(self, *labels: str) -> "Traversal":
        def step(stream, graph):
            for item in stream:
                for edge in graph.out_edges(_vid(item)):
                    if not labels or edge.label in labels:
                        yield edge
        return self._with(step)

    def inE(self, *labels: str) -> "Traversal":
        def step(stream, graph):
            for item in stream:
                for edge in graph.in_edges(_vid(item)):
                    if not labels or edge.label in labels:
                        yield edge
        return self._with(step)

    def outV(self) -> "Traversal":
        def step(stream, graph):
            for edge in stream:
                yield graph.vertex(edge.src)
        return self._with(step)

    def inV(self) -> "Traversal":
        def step(stream, graph):
            for edge in stream:
                yield graph.vertex(edge.dst)
        return self._with(step)

    # -- map steps -----------------------------------------------------------------

    def values(self, *keys: str) -> "Traversal":
        def step(stream, graph):
            for item in stream:
                for key in keys:
                    value = _prop(item, key)
                    if value is not None:
                        yield value
        return self._with(step)

    def id_(self) -> "Traversal":
        def step(stream, graph):
            for item in stream:
                yield _vid(item)
        return self._with(step)

    def count(self) -> "Traversal":
        def step(stream, graph):
            yield sum(1 for _ in stream)
        return self._with(step)

    # -- terminals -----------------------------------------------------------------

    def to_list(self) -> List:
        return list(self._run())

    def next(self, default=None):
        return next(self._run(), default)

    def __iter__(self):
        return self._run()


def _vid(item) -> object:
    vid = getattr(item, "vid", None)
    if vid is None:
        raise ExecutionError(f"step expected a vertex, got {type(item).__name__}")
    return vid


def _prop(item, key: str) -> object:
    if key == "id":
        return getattr(item, "vid", None) or getattr(item, "eid", None)
    if key == "label":
        return getattr(item, "label", None)
    props = getattr(item, "props", None)
    if props is None:
        return None
    return props.get(key)


#: Anonymous traversal source for where() sub-traversals (Gremlin's ``__``).
class _Anonymous:
    def __getattr__(self, name: str):
        def start(*args, **kwargs):
            return getattr(Traversal(None), name)(*args, **kwargs)
        return start


__ = _Anonymous()


def bind_anonymous(traversal: Traversal, graph: PropertyGraph) -> Traversal:
    """Attach a graph to an anonymous (``__``) traversal."""
    return Traversal(graph, traversal._steps)
