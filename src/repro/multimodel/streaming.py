"""Continuous queries over streams (Sec. II-B).

The uniformed framework "integrates two languages in our SQL extensions:
the Gremlin language ... and a continuous query language used in streaming
processing".  This module provides that second hook: standing queries over
an event stream that emit results as data arrives.

* :class:`EventStream` — an append-only stream of (t_us, payload dict);
* :class:`ContinuousQuery` — filter + tumbling- or sliding-window aggregate
  + emit callback, evaluated incrementally on ingest;
* a tiny CQL parser: ``SELECT <agg>(<field>) FROM <stream> [WHERE ...]
  WINDOW <n> SECONDS [SLIDE <m> SECONDS]`` reusing the SQL expression
  grammar for predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import ConfigError, SqlAnalysisError, SqlSyntaxError
from repro.optimizer.expr import BoundExpr
from repro.optimizer.logical import ColumnInfo
from repro.sql.binder import Binder
from repro.sql.parser import parse_expression
from repro.cluster.catalog import Catalog
from repro.storage.types import DataType

SECOND_US = 1_000_000

_AGGS = {
    "count": (lambda acc, v: acc + 1, lambda acc, n: acc, 0.0),
    "sum": (lambda acc, v: acc + v, lambda acc, n: acc, 0.0),
    "avg": (lambda acc, v: acc + v, lambda acc, n: acc / n if n else None, 0.0),
    "min": (lambda acc, v: v if acc is None else min(acc, v), lambda acc, n: acc, None),
    "max": (lambda acc, v: v if acc is None else max(acc, v), lambda acc, n: acc, None),
}


@dataclass(frozen=True)
class WindowResult:
    """One emission of a continuous query."""

    window_start_us: int
    window_end_us: int
    value: Optional[float]
    events: int


EmitFn = Callable[[WindowResult], None]


class ContinuousQuery:
    """A standing windowed aggregate over one stream."""

    def __init__(self, name: str, fields: Dict[str, DataType],
                 agg: str, agg_field: Optional[str],
                 window_us: int, slide_us: Optional[int] = None,
                 predicate: Optional[BoundExpr] = None,
                 field_order: Optional[List[str]] = None):
        if agg not in _AGGS:
            raise ConfigError(f"unknown aggregate {agg!r}")
        if window_us <= 0:
            raise ConfigError("window must be positive")
        slide_us = slide_us if slide_us is not None else window_us
        if slide_us <= 0 or slide_us > window_us:
            raise ConfigError("slide must be in (0, window]")
        self.name = name
        self.agg = agg
        self.agg_field = agg_field
        self.window_us = window_us
        self.slide_us = slide_us
        self.predicate = predicate
        self._field_order = field_order or sorted(fields)
        self._subscribers: List[EmitFn] = []
        #: Matching events retained for open windows: (t_us, value).
        self._pending: List[Tuple[int, Optional[float]]] = []
        #: Next window boundary to close (start time).
        self._next_close: Optional[int] = None
        self.results: List[WindowResult] = []

    def subscribe(self, emit: EmitFn) -> None:
        self._subscribers.append(emit)

    # -- incremental evaluation ---------------------------------------------

    def _row_of(self, payload: dict) -> tuple:
        return tuple(payload.get(name) for name in self._field_order)

    def on_event(self, t_us: int, payload: dict) -> List[WindowResult]:
        """Feed one event; returns any windows this event's time closed."""
        closed = self.advance_to(t_us)
        if self.predicate is None or self.predicate.eval(self._row_of(payload)):
            value = payload.get(self.agg_field) if self.agg_field else None
            if self.agg != "count" and value is None:
                return closed
            self._pending.append((t_us, value))
            if self._next_close is None:
                start = (t_us // self.slide_us) * self.slide_us
                self._next_close = start + self.window_us
        return closed

    def advance_to(self, now_us: int) -> List[WindowResult]:
        """Close every window that ends at or before ``now_us``."""
        closed: List[WindowResult] = []
        while self._next_close is not None and now_us >= self._next_close:
            end = self._next_close
            start = end - self.window_us
            step, final, init = _AGGS[self.agg]
            acc = init
            events = 0
            for t, value in self._pending:
                if start <= t < end:
                    acc = step(acc, value)
                    events += 1
            result = WindowResult(start, end, final(acc, events)
                                  if events else None, events)
            closed.append(result)
            self.results.append(result)
            for emit in self._subscribers:
                emit(result)
            # Retire events older than the next window's start; when no
            # events remain, go idle (empty windows are not emitted).
            next_start = start + self.slide_us
            self._pending = [(t, v) for t, v in self._pending
                             if t >= next_start]
            self._next_close = (end + self.slide_us) if self._pending else None
        return closed


class EventStream:
    """An append-only event stream with attached continuous queries."""

    def __init__(self, name: str, fields: Dict[str, DataType]):
        self.name = name
        self.fields = dict(fields)
        self._queries: Dict[str, ContinuousQuery] = {}
        self.events_ingested = 0
        self._last_t: Optional[int] = None

    def attach(self, query: ContinuousQuery) -> None:
        if query.name in self._queries:
            raise ConfigError(f"query {query.name!r} already attached")
        self._queries[query.name] = query

    def detach(self, name: str) -> None:
        self._queries.pop(name, None)

    def queries(self) -> List[str]:
        return sorted(self._queries)

    def append(self, t_us: int, **payload: object) -> Dict[str, List[WindowResult]]:
        """Ingest an event (monotone time) and run every standing query."""
        if self._last_t is not None and t_us < self._last_t:
            raise ConfigError(
                f"stream {self.name}: time went backwards "
                f"({t_us} < {self._last_t})")
        self._last_t = t_us
        unknown = set(payload) - set(self.fields)
        if unknown:
            raise ConfigError(f"stream {self.name}: unknown fields {unknown}")
        self.events_ingested += 1
        return {name: q.on_event(int(t_us), payload)
                for name, q in self._queries.items()}

    def advance_to(self, now_us: int) -> Dict[str, List[WindowResult]]:
        """Close windows by the passage of time alone (no event needed)."""
        return {name: q.advance_to(int(now_us))
                for name, q in self._queries.items()}


class StreamEngine:
    """Named streams + the CQL front door."""

    def __init__(self) -> None:
        self._streams: Dict[str, EventStream] = {}

    def create_stream(self, name: str,
                      fields: Dict[str, DataType]) -> EventStream:
        if name in self._streams:
            raise ConfigError(f"stream {name!r} already exists")
        stream = EventStream(name, fields)
        self._streams[name] = stream
        return stream

    def stream(self, name: str) -> EventStream:
        try:
            return self._streams[name]
        except KeyError:
            raise ConfigError(f"no stream {name!r}") from None

    def register_cql(self, query_name: str, cql: str,
                     emit: Optional[EmitFn] = None) -> ContinuousQuery:
        """Parse and attach a continuous query.

        Grammar: ``SELECT <agg>(<field>|*) FROM <stream>
        [WHERE <predicate>] WINDOW <n> SECONDS [SLIDE <m> SECONDS]``.
        """
        query = parse_cql(query_name, cql, self)
        self.stream(query._stream_name).attach(query)   # type: ignore[attr-defined]
        if emit is not None:
            query.subscribe(emit)
        return query


def parse_cql(name: str, cql: str, engine: StreamEngine) -> ContinuousQuery:
    text = cql.strip().rstrip(";")
    lowered = text.lower()
    if not lowered.startswith("select "):
        raise SqlSyntaxError("CQL starts with SELECT", 0)

    # WINDOW ... [SLIDE ...] tail.
    window_at = lowered.rfind(" window ")
    if window_at < 0:
        raise SqlSyntaxError("continuous queries need a WINDOW clause", 0)
    head, tail = text[:window_at], text[window_at + len(" window "):]
    tail_parts = tail.split()
    window_us = _parse_duration(tail_parts)
    slide_us = None
    if "slide" in [p.lower() for p in tail_parts]:
        at = [p.lower() for p in tail_parts].index("slide")
        slide_us = _parse_duration(tail_parts[at + 1:])

    lowered_head = head.lower()
    from_at = lowered_head.find(" from ")
    if from_at < 0:
        raise SqlSyntaxError("missing FROM", 0)
    select_list = head[len("select "):from_at].strip()
    rest = head[from_at + len(" from "):].strip()
    where_at = rest.lower().find(" where ")
    if where_at >= 0:
        stream_name = rest[:where_at].strip()
        where_text = rest[where_at + len(" where "):].strip()
    else:
        stream_name, where_text = rest.strip(), None

    # Aggregate: e.g. avg(speed) or count(*).
    if "(" not in select_list or not select_list.endswith(")"):
        raise SqlSyntaxError("CQL select list must be one aggregate", 0)
    agg = select_list[:select_list.index("(")].strip().lower()
    inner = select_list[select_list.index("(") + 1:-1].strip()
    agg_field = None if inner in ("*", "") else inner

    stream = engine.stream(stream_name)
    field_order = sorted(stream.fields)
    predicate = None
    if where_text:
        schema = [ColumnInfo(n, stream_name, stream.fields[n])
                  for n in field_order]
        binder = Binder(Catalog())
        predicate = binder._bind_expr(  # noqa: SLF001 - friend module
            parse_expression(where_text), schema)
    if agg_field is not None and agg_field not in stream.fields:
        raise SqlAnalysisError(f"stream {stream_name} has no field {agg_field!r}")

    query = ContinuousQuery(
        name, stream.fields, agg, agg_field, window_us, slide_us,
        predicate, field_order)
    query._stream_name = stream_name   # type: ignore[attr-defined]
    return query


def _parse_duration(parts: List[str]) -> int:
    if len(parts) < 2:
        raise SqlSyntaxError("duration needs '<n> SECONDS'", 0)
    try:
        amount = float(parts[0])
    except ValueError:
        raise SqlSyntaxError(f"bad duration {parts[0]!r}", 0) from None
    unit = parts[1].lower().rstrip(",")
    scale = {"second": SECOND_US, "seconds": SECOND_US,
             "minute": 60 * SECOND_US, "minutes": 60 * SECOND_US,
             "ms": 1000, "milliseconds": 1000}.get(unit)
    if scale is None:
        raise SqlSyntaxError(f"bad duration unit {unit!r}", 0)
    return int(amount * scale)
