"""The multi-model database facade (Sec. II-B, Fig. 4).

One database object with:

* the **relational engine** as the main engine (the full SQL stack over the
  MPP cluster),
* the **graph**, **time-series** and **spatial** engines integrated through
  "light-weighted hooks" — table functions the planner folds into a single
  relational plan, exactly how Example 1 embeds ``gtimeseries`` and
  ``ggraph`` table expressions in SQL,
* a uniformed interface: ``execute(sql)`` accepts everything.

Table functions provided:

* ``gtimeseries('series', window_us)`` — points of the last window
  (``now() - time < window``), columns ``(time, <value columns...>)``;
* ``gtimeseries_range('series', t0, t1)`` — explicit time range;
* ``ggraph('g.V()...')`` — a Gremlin traversal; scalar outputs become a
  one-column table ``(value)``, vertices/edges expand to their properties;
* ``gspatial_radius('layer', x, y, r)`` and ``gspatial_knn('layer', x, y, k)``
  — spatial lookups with columns ``(oid, x, y, distance)``.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.cluster.mpp import MppCluster
from repro.common.errors import ExecutionError
from repro.multimodel.graph import Edge, PropertyGraph, Traversal, Vertex
from repro.multimodel.gremlin import parse_gremlin
from repro.multimodel.spatial import SpatialEngine, euclidean
from repro.multimodel.streaming import StreamEngine
from repro.multimodel.timeseries import TimeSeriesEngine
from repro.multimodel.vision import VisionEngine
from repro.sql.engine import SqlEngine
from repro.storage.types import DataType


class _GTimeseries:
    """gtimeseries('name', window_us): the sliding-window table function."""

    def __init__(self, mmdb: "MultiModelDB"):
        self._mmdb = mmdb

    def _series(self, args):
        if not args:
            raise ExecutionError("gtimeseries needs a series name")
        return self._mmdb.timeseries.series(str(args[0]))

    def output_schema(self, args: Sequence[object]):
        series = self._series(args)
        return [("time", DataType.TIMESTAMP)] + [
            (c, DataType.DOUBLE) for c in series.value_columns
        ]

    def rows(self, args: Sequence[object]) -> Iterable[tuple]:
        series = self._series(args)
        window_us = int(args[1]) if len(args) > 1 else 60_000_000
        now_us = self._mmdb.now_us()
        for t, values in series.last_window(window_us, now_us):
            yield (t,) + tuple(values[c] for c in series.value_columns)

    def estimated_rows(self, args: Sequence[object]) -> int:
        return max(1, self._series(args).point_count // 10)


class _GTimeseriesRange(_GTimeseries):
    """gtimeseries_range('name', t0, t1): explicit range scan."""

    def rows(self, args: Sequence[object]) -> Iterable[tuple]:
        series = self._series(args)
        if len(args) < 3:
            raise ExecutionError("gtimeseries_range needs (name, t0, t1)")
        t0, t1 = int(args[1]), int(args[2])
        for t, values in series.range(t0, t1):
            yield (t,) + tuple(values[c] for c in series.value_columns)


class _GGraph:
    """ggraph('g.V()...'): a Gremlin traversal as a table expression."""

    def __init__(self, mmdb: "MultiModelDB"):
        self._mmdb = mmdb

    def _traversal(self, args) -> Traversal:
        if not args:
            raise ExecutionError("ggraph needs a gremlin string")
        return parse_gremlin(str(args[0]), self._mmdb.graph)

    def output_schema(self, args: Sequence[object]):
        results = self._materialize(args)
        if results and isinstance(results[0], Vertex):
            keys = sorted({k for v in results for k in v.props})
            return [("vid", DataType.TEXT)] + [(k, _infer(results, k)) for k in keys]
        if results and isinstance(results[0], Edge):
            keys = sorted({k for e in results for k in e.props})
            return ([("eid", DataType.TEXT), ("src", DataType.TEXT),
                     ("dst", DataType.TEXT)]
                    + [(k, _infer(results, k)) for k in keys])
        return [("value", _scalar_type(results))]

    def rows(self, args: Sequence[object]) -> Iterable[tuple]:
        results = self._materialize(args)
        if results and isinstance(results[0], Vertex):
            keys = sorted({k for v in results for k in v.props})
            for v in results:
                yield (v.vid,) + tuple(v.props.get(k) for k in keys)
            return
        if results and isinstance(results[0], Edge):
            keys = sorted({k for e in results for k in e.props})
            for e in results:
                yield (e.eid, e.src, e.dst) + tuple(e.props.get(k) for k in keys)
            return
        for value in results:
            yield (value,)

    def estimated_rows(self, args: Sequence[object]) -> int:
        return max(1, len(self._materialize(args)))

    def _materialize(self, args) -> List:
        key = str(args[0])
        cache = self._mmdb._ggraph_cache
        if key not in cache:
            cache[key] = self._traversal(args).to_list()
        return cache[key]


class _GSpatial:
    """gspatial_radius / gspatial_knn table functions."""

    def __init__(self, mmdb: "MultiModelDB", mode: str):
        self._mmdb = mmdb
        self._mode = mode

    def output_schema(self, args: Sequence[object]):
        return [("oid", DataType.TEXT), ("x", DataType.DOUBLE),
                ("y", DataType.DOUBLE), ("distance", DataType.DOUBLE)]

    def rows(self, args: Sequence[object]) -> Iterable[tuple]:
        if len(args) < 4:
            raise ExecutionError(
                f"gspatial_{self._mode} needs (layer, x, y, "
                f"{'r' if self._mode == 'radius' else 'k'})"
            )
        layer = self._mmdb.spatial.layer(str(args[0]))
        x, y = float(args[1]), float(args[2])
        if self._mode == "radius":
            points = layer.radius(x, y, float(args[3]))
        else:
            points = layer.knn(x, y, int(args[3]))
        for point in points:
            yield (str(point.oid), point.x, point.y,
                   euclidean(x, y, point.x, point.y))

    def estimated_rows(self, args: Sequence[object]) -> int:
        return 32


class _GVision:
    """gvision('store', label, min_confidence): detections as a table."""

    def __init__(self, mmdb: "MultiModelDB"):
        self._mmdb = mmdb

    def output_schema(self, args: Sequence[object]):
        return [("detection_id", DataType.BIGINT), ("frame_id", DataType.TEXT),
                ("t", DataType.TIMESTAMP), ("label", DataType.TEXT),
                ("confidence", DataType.DOUBLE)]

    def rows(self, args: Sequence[object]) -> Iterable[tuple]:
        if not args:
            raise ExecutionError("gvision needs a store name")
        store = self._mmdb.vision.store(str(args[0]))
        label = str(args[1]) if len(args) > 1 else None
        min_confidence = float(args[2]) if len(args) > 2 else 0.0
        if label is not None:
            detections = store.by_label(label, min_confidence)
        else:
            detections = [d for d in (store.get(i) for i in range(len(store)))
                          if d.confidence >= min_confidence]
        for d in detections:
            yield (d.detection_id, d.frame_id, d.t_us, d.label, d.confidence)

    def estimated_rows(self, args: Sequence[object]) -> int:
        try:
            return max(1, len(self._mmdb.vision.store(str(args[0]))) // 4)
        except Exception:
            return 32


class _GVisionSimilar:
    """gvision_similar('store', detection_id, k): embedding k-NN."""

    def __init__(self, mmdb: "MultiModelDB"):
        self._mmdb = mmdb

    def output_schema(self, args: Sequence[object]):
        return [("detection_id", DataType.BIGINT), ("frame_id", DataType.TEXT),
                ("label", DataType.TEXT), ("similarity", DataType.DOUBLE)]

    def rows(self, args: Sequence[object]) -> Iterable[tuple]:
        if len(args) < 2:
            raise ExecutionError("gvision_similar needs (store, detection_id)")
        store = self._mmdb.vision.store(str(args[0]))
        k = int(args[2]) if len(args) > 2 else 5
        for d, similarity in store.similar_to(int(args[1]), k):
            yield (d.detection_id, d.frame_id, d.label, similarity)

    def estimated_rows(self, args: Sequence[object]) -> int:
        return int(args[2]) if len(args) > 2 else 5


def _infer(elements, key) -> DataType:
    for element in elements:
        value = element.props.get(key)
        if isinstance(value, bool):
            return DataType.BOOL
        if isinstance(value, int):
            return DataType.BIGINT
        if isinstance(value, float):
            return DataType.DOUBLE
        if isinstance(value, str):
            return DataType.TEXT
    return DataType.TEXT


def _scalar_type(values) -> DataType:
    for value in values:
        if isinstance(value, bool):
            return DataType.BOOL
        if isinstance(value, int):
            return DataType.BIGINT
        if isinstance(value, float):
            return DataType.DOUBLE
    return DataType.TEXT


class MultiModelDB:
    """Relational + graph + time-series + spatial under one interface."""

    def __init__(self, cluster: Optional[MppCluster] = None,
                 now_fn: Optional[Callable[[], int]] = None):
        self.cluster = cluster if cluster is not None else MppCluster(num_dns=2)
        self._now_us = 0
        self._user_now_fn = now_fn
        self.sql = SqlEngine(self.cluster, now_fn=self.now_us)
        self.graph = PropertyGraph("mmdb")
        self.timeseries = TimeSeriesEngine()
        self.spatial = SpatialEngine()
        self.vision = VisionEngine()
        self.streams = StreamEngine()
        self._ggraph_cache: dict = {}
        self.sql.register_table_function("gtimeseries", _GTimeseries(self))
        self.sql.register_table_function("gtimeseries_range", _GTimeseriesRange(self))
        self.sql.register_table_function("ggraph", _GGraph(self))
        self.sql.register_table_function("gspatial_radius", _GSpatial(self, "radius"))
        self.sql.register_table_function("gspatial_knn", _GSpatial(self, "knn"))
        self.sql.register_table_function("gvision", _GVision(self))
        self.sql.register_table_function("gvision_similar", _GVisionSimilar(self))

    # -- the uniformed interface ---------------------------------------------

    def execute(self, sql: str):
        self._ggraph_cache.clear()
        return self.sql.execute(sql)

    def query(self, sql: str) -> List[dict]:
        return self.execute(sql).as_dicts()

    def gremlin(self, text: str) -> List:
        """Run a Gremlin string directly against the graph engine."""
        return parse_gremlin(text, self.graph).to_list()

    def continuous_query(self, name: str, cql: str, emit=None):
        """Register a standing CQL query (the second extension language)."""
        return self.streams.register_cql(name, cql, emit)

    # -- simulated clock ----------------------------------------------------------

    def now_us(self) -> int:
        if self._user_now_fn is not None:
            return int(self._user_now_fn())
        return self._now_us

    def set_now_us(self, t_us: int) -> None:
        self._now_us = int(t_us)
