"""The vision engine (Sec. II-B / Sec. IV-B.3).

The paper: "Sophisticated AI based algorithms have been developed to
recognize objects in vision or point cloud data.  A multi-model system
needs to store these objects and process queries on them.  The storage of
these objects requires special indexing and proper metadata" — and, for
autonomous vehicles, "hundreds and even thousands of dimensions/features
... Indexes are created between the dimensions and the original raw data so
that queries can be answered within sub-second latency."

This engine stores *detections* (the metadata an upstream AI model
extracted from frames: label, confidence, bounding box, feature embedding)
rather than raw pixels, exactly as the paper prescribes, with:

* metadata indexes: by label (hash), by frame time (ordered),
* a **high-dimensional feature index** for similarity search — exact
  cosine k-NN on a numpy matrix, plus a random-hyperplane LSH accelerator
  that can be (re)built online ("flexible ... high dimensional index
  (re)building"),
* a table-function adapter so detections join with the other models in SQL.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigError, ExecutionError, StorageError


@dataclass(frozen=True)
class BoundingBox:
    x: float
    y: float
    w: float
    h: float

    def area(self) -> float:
        return max(0.0, self.w) * max(0.0, self.h)

    def iou(self, other: "BoundingBox") -> float:
        """Intersection-over-union (the standard detection overlap metric)."""
        x0 = max(self.x, other.x)
        y0 = max(self.y, other.y)
        x1 = min(self.x + self.w, other.x + other.w)
        y1 = min(self.y + self.h, other.y + other.h)
        inter = max(0.0, x1 - x0) * max(0.0, y1 - y0)
        union = self.area() + other.area() - inter
        return inter / union if union > 0 else 0.0


@dataclass(frozen=True)
class Detection:
    """One recognized object: metadata plus an embedding."""

    detection_id: int
    frame_id: str
    t_us: int
    label: str
    confidence: float
    bbox: BoundingBox
    feature: Tuple[float, ...] = ()


class FeatureIndex:
    """Cosine k-NN over unit-normalized embeddings, with optional LSH.

    Exact mode scans the full matrix (numpy matvec — fast enough for
    hundreds of thousands of vectors).  LSH mode hashes vectors by the sign
    pattern of random hyperplane projections and probes only the query's
    bucket (plus single-bit-flip neighbors), trading recall for latency.
    """

    def __init__(self, dim: int, lsh_bits: int = 0, seed: int = 1234):
        if dim <= 0:
            raise ConfigError("dim must be positive")
        if lsh_bits < 0 or lsh_bits > 24:
            raise ConfigError("lsh_bits must be in [0, 24]")
        self.dim = dim
        self.lsh_bits = lsh_bits
        self._seed = seed
        self._vectors: List[np.ndarray] = []
        self._ids: List[int] = []
        self._matrix: Optional[np.ndarray] = None
        self._planes: Optional[np.ndarray] = None
        self._buckets: Dict[int, List[int]] = {}
        if lsh_bits:
            rng = np.random.default_rng(seed)
            self._planes = rng.standard_normal((lsh_bits, dim))

    def __len__(self) -> int:
        return len(self._ids)

    @staticmethod
    def _normalize(vector: Sequence[float], dim: int) -> np.ndarray:
        arr = np.asarray(vector, dtype=np.float64)
        if arr.shape != (dim,):
            raise StorageError(f"feature must have {dim} dimensions")
        norm = float(np.linalg.norm(arr))
        if norm == 0:
            raise StorageError("zero feature vector")
        return arr / norm

    def add(self, item_id: int, vector: Sequence[float]) -> None:
        unit = self._normalize(vector, self.dim)
        position = len(self._ids)
        self._ids.append(item_id)
        self._vectors.append(unit)
        self._matrix = None   # lazily rebuilt
        if self._planes is not None:
            self._buckets.setdefault(self._hash(unit), []).append(position)

    def _hash(self, unit: np.ndarray) -> int:
        signs = (self._planes @ unit) > 0
        code = 0
        for bit in signs:
            code = (code << 1) | int(bit)
        return code

    def _ensure_matrix(self) -> np.ndarray:
        if self._matrix is None or len(self._matrix) != len(self._vectors):
            self._matrix = np.vstack(self._vectors) if self._vectors else \
                np.empty((0, self.dim))
        return self._matrix

    def rebuild(self, lsh_bits: Optional[int] = None,
                seed: Optional[int] = None) -> None:
        """(Re)build the LSH structure online — the paper's re-indexing."""
        if lsh_bits is not None:
            if lsh_bits < 0 or lsh_bits > 24:
                raise ConfigError("lsh_bits must be in [0, 24]")
            self.lsh_bits = lsh_bits
        if seed is not None:
            self._seed = seed
        self._buckets = {}
        if self.lsh_bits:
            rng = np.random.default_rng(self._seed)
            self._planes = rng.standard_normal((self.lsh_bits, self.dim))
            for position, unit in enumerate(self._vectors):
                self._buckets.setdefault(self._hash(unit), []).append(position)
        else:
            self._planes = None

    def knn(self, vector: Sequence[float], k: int,
            exact: bool = True) -> List[Tuple[int, float]]:
        """The k most cosine-similar items as (item_id, similarity)."""
        if k <= 0 or not self._ids:
            return []
        unit = self._normalize(vector, self.dim)
        if exact or self._planes is None:
            candidates = np.arange(len(self._ids))
        else:
            code = self._hash(unit)
            probe = [code] + [code ^ (1 << b) for b in range(self.lsh_bits)]
            positions: List[int] = []
            for bucket in probe:
                positions.extend(self._buckets.get(bucket, ()))
            if not positions:
                return []
            candidates = np.asarray(sorted(set(positions)))
        matrix = self._ensure_matrix()
        sims = matrix[candidates] @ unit
        order = np.argsort(-sims)[:k]
        return [(self._ids[int(candidates[i])], float(sims[i])) for i in order]


class VisionStore:
    """Detections + metadata indexes + the feature index."""

    def __init__(self, name: str, feature_dim: int = 16, lsh_bits: int = 0):
        self.name = name
        self.feature_dim = feature_dim
        self._detections: Dict[int, Detection] = {}
        self._by_label: Dict[str, List[int]] = {}
        self._times: List[int] = []           # sorted t_us
        self._time_ids: List[int] = []        # parallel detection ids
        self.features = FeatureIndex(feature_dim, lsh_bits=lsh_bits)
        self._next_id = 0

    # -- ingest ------------------------------------------------------------

    def ingest(self, frame_id: str, t_us: int, label: str, confidence: float,
               bbox: BoundingBox,
               feature: Optional[Sequence[float]] = None) -> Detection:
        if not (0.0 <= confidence <= 1.0):
            raise StorageError(f"confidence {confidence} outside [0, 1]")
        detection_id = self._next_id
        self._next_id += 1
        detection = Detection(
            detection_id, frame_id, int(t_us), label, float(confidence),
            bbox, tuple(feature) if feature is not None else ())
        self._detections[detection_id] = detection
        self._by_label.setdefault(label, []).append(detection_id)
        position = bisect.bisect_right(self._times, detection.t_us)
        self._times.insert(position, detection.t_us)
        self._time_ids.insert(position, detection_id)
        if feature is not None:
            self.features.add(detection_id, feature)
        return detection

    def __len__(self) -> int:
        return len(self._detections)

    # -- metadata queries ---------------------------------------------------------

    def get(self, detection_id: int) -> Detection:
        try:
            return self._detections[detection_id]
        except KeyError:
            raise StorageError(f"no detection {detection_id}") from None

    def by_label(self, label: str,
                 min_confidence: float = 0.0) -> List[Detection]:
        return [self._detections[d] for d in self._by_label.get(label, ())
                if self._detections[d].confidence >= min_confidence]

    def labels(self) -> List[str]:
        return sorted(self._by_label)

    def in_window(self, t0_us: int, t1_us: int) -> List[Detection]:
        lo = bisect.bisect_left(self._times, t0_us)
        hi = bisect.bisect_right(self._times, t1_us)
        return [self._detections[d] for d in self._time_ids[lo:hi]]

    def overlapping(self, bbox: BoundingBox, min_iou: float = 0.3,
                    label: Optional[str] = None) -> List[Detection]:
        """Detections whose boxes overlap ``bbox`` (spatial metadata query)."""
        pool = (self.by_label(label) if label is not None
                else self._detections.values())
        return [d for d in pool if d.bbox.iou(bbox) >= min_iou]

    # -- similarity ------------------------------------------------------------------

    def similar(self, feature: Sequence[float], k: int = 5,
                exact: bool = True) -> List[Tuple[Detection, float]]:
        return [(self._detections[item_id], sim)
                for item_id, sim in self.features.knn(feature, k, exact)]

    def similar_to(self, detection_id: int, k: int = 5,
                   exact: bool = True) -> List[Tuple[Detection, float]]:
        detection = self.get(detection_id)
        if not detection.feature:
            raise ExecutionError(f"detection {detection_id} has no feature")
        hits = self.similar(detection.feature, k + 1, exact)
        return [(d, s) for d, s in hits if d.detection_id != detection_id][:k]


class VisionEngine:
    """Named vision stores (completing the Fig. 4 engine roster)."""

    def __init__(self) -> None:
        self._stores: Dict[str, VisionStore] = {}

    def create_store(self, name: str, feature_dim: int = 16,
                     lsh_bits: int = 0) -> VisionStore:
        if name in self._stores:
            raise StorageError(f"vision store {name!r} already exists")
        store = VisionStore(name, feature_dim, lsh_bits)
        self._stores[name] = store
        return store

    def store(self, name: str) -> VisionStore:
        try:
            return self._stores[name]
        except KeyError:
            raise StorageError(f"no vision store {name!r}") from None

    def has(self, name: str) -> bool:
        return name in self._stores

    def names(self) -> List[str]:
        return sorted(self._stores)
