"""Parser for Gremlin traversal strings.

``ggraph('g.V().has(''cid'',11111)...')`` table expressions (Example 1)
carry their traversal as a string; this module parses the method-chain
grammar into a :class:`~repro.multimodel.graph.Traversal`:

* chains start with ``g`` or ``__`` (anonymous, inside ``where``),
* step arguments are literals (numbers, quoted strings), predicate calls
  (``gt(3)``, ``within('a','b')``) or nested anonymous traversals.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.errors import SqlSyntaxError
from repro.multimodel.graph import P, PropertyGraph, Traversal

_STEP_ALIASES = {
    "in": "in_",
    "is": "is_",
    "id": "id_",
}

_PREDICATES = {"gt", "gte", "lt", "lte", "eq", "neq", "within"}


def parse_gremlin(text: str, graph: PropertyGraph) -> Traversal:
    """Parse a Gremlin string into a traversal bound to ``graph``."""
    parser = _Parser(text)
    traversal = parser.parse_chain(graph)
    parser.skip_ws()
    if not parser.at_end():
        raise SqlSyntaxError(f"trailing input in gremlin at {parser.pos}: "
                             f"{text[parser.pos:]!r}", parser.pos)
    return traversal


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    # -- low-level ---------------------------------------------------------

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def skip_ws(self) -> None:
        while not self.at_end() and self.text[self.pos].isspace():
            self.pos += 1

    def expect(self, ch: str) -> None:
        self.skip_ws()
        if self.peek() != ch:
            raise SqlSyntaxError(
                f"expected {ch!r} at {self.pos} in gremlin", self.pos)
        self.pos += 1

    def accept(self, ch: str) -> bool:
        self.skip_ws()
        if self.peek() == ch:
            self.pos += 1
            return True
        return False

    def ident(self) -> str:
        self.skip_ws()
        start = self.pos
        while not self.at_end() and (self.text[self.pos].isalnum()
                                     or self.text[self.pos] == "_"):
            self.pos += 1
        if start == self.pos:
            raise SqlSyntaxError(f"expected name at {start} in gremlin", start)
        return self.text[start:self.pos]

    # -- grammar -----------------------------------------------------------------

    def parse_chain(self, graph: Optional[PropertyGraph]) -> Traversal:
        self.skip_ws()
        head = self.ident()
        if head == "g":
            traversal = Traversal(graph)
        elif head == "__":
            traversal = Traversal(graph)   # anonymous: graph threads at run
        else:
            raise SqlSyntaxError(
                f"gremlin chains start with g or __, got {head!r}", self.pos)
        while self.accept("."):
            name = self.ident()
            args = self.parse_args(graph)
            method = _STEP_ALIASES.get(name, name)
            step = getattr(traversal, method, None)
            if step is None or not callable(step):
                raise SqlSyntaxError(f"unknown gremlin step {name!r}", self.pos)
            traversal = step(*args)
        return traversal

    def parse_args(self, graph) -> List[object]:
        self.expect("(")
        args: List[object] = []
        self.skip_ws()
        if self.accept(")"):
            return args
        while True:
            args.append(self.parse_value(graph))
            self.skip_ws()
            if self.accept(")"):
                return args
            self.expect(",")

    def parse_value(self, graph) -> object:
        self.skip_ws()
        ch = self.peek()
        if ch == "'":
            return self.parse_string()
        if ch.isdigit() or ch == "-":
            return self.parse_number()
        name_start = self.pos
        name = self.ident()
        self.skip_ws()
        if name in ("g", "__") and self.peek() == ".":
            self.pos = name_start
            return self.parse_chain(None if name == "__" else graph)
        if name in _PREDICATES and self.peek() == "(":
            args = self.parse_args(graph)
            return getattr(P, name)(*args)
        if name == "true":
            return True
        if name == "false":
            return False
        # A bare word is treated as a string (the paper's Example 1 writes
        # unquoted property names like has(cid, 11111)).
        return name

    def parse_string(self) -> str:
        self.expect("'")
        out: List[str] = []
        while True:
            if self.at_end():
                raise SqlSyntaxError("unterminated gremlin string", self.pos)
            ch = self.text[self.pos]
            self.pos += 1
            if ch == "'":
                if self.peek() == "'":
                    out.append("'")
                    self.pos += 1
                    continue
                return "".join(out)
            out.append(ch)

    def parse_number(self) -> object:
        self.skip_ws()
        start = self.pos
        if self.peek() == "-":
            self.pos += 1
        seen_dot = False
        while not self.at_end() and (self.text[self.pos].isdigit()
                                     or (self.text[self.pos] == "." and not seen_dot)):
            if self.text[self.pos] == ".":
                nxt = self.text[self.pos + 1:self.pos + 2]
                if not nxt.isdigit():
                    break
                seen_dot = True
            self.pos += 1
        text = self.text[start:self.pos]
        if not text or text == "-":
            raise SqlSyntaxError(f"bad number at {start} in gremlin", start)
        return float(text) if seen_dot else int(text)
