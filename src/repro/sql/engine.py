"""The SQL engine: one entry point over the MPP cluster.

``SqlEngine.execute(sql)`` handles DDL, DML and queries.  Queries run under
a cluster-wide snapshot (a multi-shard read transaction), flow through the
binder, the cost-based optimizer (with learning feedback) and the physical
executor, and feed the learning producer on the way out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cluster.mpp import MppCluster
from repro.common.errors import (
    AdmissionRejected,
    CatalogError,
    QueryCancelled,
    QueryTimeout,
    SqlAnalysisError,
)
from repro.exec.batch import enable_batches
from repro.exec.fragments import ScanBinding
from repro.exec.operators import PhysicalOp, walk_physical
from repro.learnopt.feedback import CaptureReport, CaptureSettings, FeedbackLoop
from repro.obs import Observability, QueryProfile, QueryProfiler
from repro.obs.syscat import SystemCatalog
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.logical import LogicalScan
from repro.optimizer.planner import PhysicalPlanner
from repro.optimizer.stats import StatsManager, analyze_rows
from repro.sql import ast
from repro.sql.binder import Binder, TableFunctionImpl
from repro.sql.parser import parse
from repro.sql.plancache import CachedPlan, PlanCache
from repro.storage.table import Column, Distribution, Orientation, TableSchema
from repro.storage.types import DataType
from repro.wlm import attach_to_plan

_TYPE_NAMES = {
    "int": DataType.INT, "integer": DataType.INT,
    "bigint": DataType.BIGINT,
    "double": DataType.DOUBLE, "float": DataType.DOUBLE, "real": DataType.DOUBLE,
    "text": DataType.TEXT, "varchar": DataType.TEXT, "string": DataType.TEXT,
    "bool": DataType.BOOL, "boolean": DataType.BOOL,
    "timestamp": DataType.TIMESTAMP,
}


@dataclass
class Result:
    """Outcome of one statement."""

    columns: List[str] = field(default_factory=list)
    rows: List[tuple] = field(default_factory=list)
    rowcount: int = 0
    plan_text: Optional[str] = None
    capture: Optional[CaptureReport] = None
    profile: Optional[QueryProfile] = None

    def as_dicts(self) -> List[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def scalar(self) -> object:
        if not self.rows or not self.rows[0]:
            return None
        return self.rows[0][0]

    def column(self, name: str) -> List[object]:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]


class SqlEngine:
    def __init__(self, cluster: MppCluster,
                 learning_enabled: bool = True,
                 capture_settings: Optional[CaptureSettings] = None,
                 now_fn: Optional[Callable[[], int]] = None,
                 fragmented: bool = True,
                 plan_cache_size: int = 64,
                 batch_enabled: bool = True,
                 batch_size: int = 1024):
        self.cluster = cluster
        #: Cut query plans at exchange boundaries into per-DN fragments
        #: (FI-MPPDB's execution shape).  Off: every scan gathers all shards
        #: to the coordinator and the whole plan runs there.
        self.fragmented = fragmented
        self.stats = StatsManager()
        self.feedback = FeedbackLoop(settings=capture_settings)
        self.learning_enabled = learning_enabled
        self.table_functions: Dict[str, TableFunctionImpl] = {}
        self._now_fn = now_fn if now_fn is not None else (lambda: 0)
        self.queries_executed = 0
        #: The cluster's observability spine (present on MppCluster unless
        #: built with obs_enabled=False; getattr keeps test doubles working).
        self.obs: Optional[Observability] = getattr(cluster, "obs", None)
        #: ``sys.*`` system views served from live observability state.
        self.syscat: Optional[SystemCatalog] = (
            SystemCatalog(self.obs) if self.obs is not None else None)
        #: The cluster's workload governor (``repro.wlm``).  When present,
        #: every statement passes through admission control; ``None`` (or a
        #: cluster built with ``wlm_enabled=False``) replays the ungoverned
        #: pre-WLM execution path exactly.
        self.wlm = getattr(cluster, "wlm", None)
        self._wlm_ticket = None
        self._wlm_ctx = None
        self._current_sql = ""
        #: Prepared-statement cache: repeated SELECT texts skip the lexer,
        #: parser, binder and planner and re-execute the cached physical
        #: plan.  ``plan_cache_size=0`` disables caching entirely.
        self.plan_cache = PlanCache(plan_cache_size)
        #: Columnar batch execution: eligible operator subtrees stream
        #: numpy column batches instead of Python row tuples.  Simulated
        #: telemetry (profiles, metrics, WLM accounting) is byte-identical
        #: either way; only wall-clock changes.
        self.batch_enabled = batch_enabled
        self.batch_size = batch_size
        #: Set around plan execution so cached plans (whose scan closures
        #: were built during an earlier statement) read the *current*
        #: statement's snapshot.
        self._active_txn = None
        self._cached: Optional[CachedPlan] = None
        self._cache_key: Optional[str] = None

    # -- extension points ----------------------------------------------------

    def register_table_function(self, name: str, impl: TableFunctionImpl) -> None:
        """Hook a multi-model engine in as a table function (Sec. II-B)."""
        self.table_functions[name.lower()] = impl

    @property
    def plan_store(self):
        return self.feedback.store

    # -- entry point -------------------------------------------------------------

    def execute(self, sql: str, group: Optional[str] = None,
                priority=None, arrival_us: Optional[float] = None) -> Result:
        """Run one statement.

        With workload management active, the statement first passes
        admission control for ``group`` (default group when ``None``):
        a concurrency slot and memory budget are reserved before execution
        and released on every exit path — success, error, timeout,
        cancellation, injected crash.  ``arrival_us`` back/forward-dates the
        submission (burst simulation); ``priority`` overrides the group's
        queue priority.
        """
        self._current_sql = sql
        self._cached = None
        self._cache_key = None
        statement = None
        if self.plan_cache.capacity:
            key = PlanCache.key_for(sql)
            entry = self.plan_cache.lookup(
                key, self.cluster.catalog.version, self.stats.version,
                self.cluster.catalog.shard_map_version)
            self._cache_key = key
            if entry is not None:
                self._cached = entry
                self.plan_cache.note_hit()
                statement = entry.statement
        if statement is None:
            statement = parse(sql)
            if isinstance(statement, ast.Select):
                if self._cache_key is not None:
                    self.plan_cache.note_miss()
            else:
                self._cache_key = None
        if self.wlm is None:
            return self._dispatch(statement)
        ticket = self.wlm.submit(group=group, now_us=arrival_us,
                                 priority=priority,
                                 tag=" ".join(sql.split())[:80])
        if ticket.queued:
            # The engine runs statements synchronously; a ticket it cannot
            # wait on (every slot held by an external driver) is shed.
            self.wlm.cancel(ticket)
            raise AdmissionRejected(
                f"resource group {ticket.group!r} has no free slot for a "
                "synchronous statement", group=ticket.group)
        ctx = self.wlm.context(ticket)
        self._wlm_ticket = ticket
        self._wlm_ctx = ctx
        try:
            result = self._dispatch(statement)
        except QueryCancelled as exc:
            kind = "timeout" if isinstance(exc, QueryTimeout) else "cancelled"
            self.wlm.finish_cancelled(
                ticket, ticket.admitted_us + ctx.progress_us, kind)
            raise
        except Exception:
            self.wlm.release(ticket, ticket.admitted_us + ctx.progress_us,
                             event="failed")
            raise
        finally:
            self._wlm_ticket = None
            self._wlm_ctx = None
        elapsed = (result.profile.elapsed_time_us
                   if result.profile is not None else ctx.progress_us)
        self.wlm.release(ticket, ticket.admitted_us + elapsed)
        return result

    def _dispatch(self, statement) -> Result:
        if isinstance(statement, ast.CreateTable):
            return self._create_table(statement)
        if isinstance(statement, ast.DropTable):
            return self._drop_table(statement)
        if isinstance(statement, ast.Insert):
            return self._insert(statement)
        if isinstance(statement, ast.Update):
            return self._update(statement)
        if isinstance(statement, ast.Delete):
            return self._delete(statement)
        if isinstance(statement, ast.Analyze):
            return self._analyze(statement)
        if isinstance(statement, ast.Explain):
            return self._explain(statement)
        if isinstance(statement, ast.Select):
            return self._select(statement)
        raise SqlAnalysisError(f"unsupported statement {type(statement).__name__}")

    def query(self, sql: str) -> List[dict]:
        """Convenience: execute and return dict rows."""
        return self.execute(sql).as_dicts()

    # -- DDL ------------------------------------------------------------------

    def _create_table(self, stmt: ast.CreateTable) -> Result:
        columns = []
        for col in stmt.columns:
            dtype = _TYPE_NAMES.get(col.type_name.lower())
            if dtype is None:
                raise SqlAnalysisError(f"unknown type {col.type_name!r}")
            columns.append(Column(col.name, dtype, nullable=not col.not_null))
        primary_key = stmt.primary_key or (columns[0].name if columns else None)
        if primary_key is None:
            raise SqlAnalysisError("table needs at least one column")
        schema = TableSchema(
            stmt.name,
            columns,
            primary_key=primary_key,
            distribution=(Distribution.REPLICATION if stmt.replicated
                          else Distribution.HASH),
            distribution_column=None if stmt.replicated else
            (stmt.distribute_by or primary_key),
            orientation=(Orientation.COLUMN if stmt.orientation == "column"
                         else Orientation.ROW),
        )
        self.cluster.create_table(schema)
        return Result(rowcount=0)

    def _drop_table(self, stmt: ast.DropTable) -> Result:
        if not self.cluster.catalog.has(stmt.name):
            if stmt.if_exists:
                return Result(rowcount=0)
            raise CatalogError(f"no table {stmt.name!r}")
        self.cluster.drop_table(stmt.name)
        self.stats.drop(stmt.name)
        return Result(rowcount=0)

    # -- DML -----------------------------------------------------------------------

    def _insert(self, stmt: ast.Insert) -> Result:
        schema = self.cluster.catalog.schema(stmt.table)
        binder = self._binder()
        if stmt.query is not None:
            sub = self._run_select_plan(stmt.query)
            source_rows = sub.rows
            columns = stmt.columns or tuple(sub.columns)
        else:
            source_rows = []
            for row_exprs in stmt.rows:
                bound = [binder.bind_standalone_expr(e) for e in row_exprs]
                source_rows.append(tuple(b.eval(()) for b in bound))
            columns = stmt.columns or tuple(c.name for c in schema.columns)
        if any(len(row) != len(columns) for row in source_rows):
            raise SqlAnalysisError("INSERT row width does not match column list")
        session = self.cluster.session()
        txn = session.begin(multi_shard=True)
        try:
            for row in source_rows:
                txn.insert(stmt.table, dict(zip(columns, row)))
            txn.commit()
        except Exception:
            txn.abort()
            raise
        return Result(rowcount=len(source_rows))

    def _update(self, stmt: ast.Update) -> Result:
        schema = self.cluster.catalog.schema(stmt.table)
        plan_scan, predicate, binder = self._bind_table_predicate(
            stmt.table, stmt.where)
        assignments = [
            (name, binder._bind_expr(expr, plan_scan.schema))  # noqa: SLF001
            for name, expr in stmt.assignments
        ]
        session = self.cluster.session()
        txn = session.begin(multi_shard=True)
        count = 0
        try:
            order = [c.name for c in schema.columns]
            for key, values in list(txn.scan(stmt.table)):
                row_tuple = tuple(values.get(name) for name in order)
                if predicate is not None and not predicate.eval(row_tuple):
                    continue
                new_values = {
                    name: expr.eval(row_tuple) for name, expr in assignments
                }
                txn.update(stmt.table, key, new_values)
                count += 1
            txn.commit()
        except Exception:
            txn.abort()
            raise
        return Result(rowcount=count)

    def _delete(self, stmt: ast.Delete) -> Result:
        schema = self.cluster.catalog.schema(stmt.table)
        plan_scan, predicate, _ = self._bind_table_predicate(
            stmt.table, stmt.where)
        session = self.cluster.session()
        txn = session.begin(multi_shard=True)
        count = 0
        try:
            order = [c.name for c in schema.columns]
            for key, values in list(txn.scan(stmt.table)):
                row_tuple = tuple(values.get(name) for name in order)
                if predicate is not None and not predicate.eval(row_tuple):
                    continue
                txn.delete(stmt.table, key)
                count += 1
            txn.commit()
        except Exception:
            txn.abort()
            raise
        return Result(rowcount=count)

    def _bind_table_predicate(self, table: str, where: Optional[ast.Expr]):
        binder = self._binder()
        scan = binder._bind_from(  # noqa: SLF001 - engine is a friend
            ast.NamedTable(table), cte_map={})
        predicate = None
        if where is not None:
            predicate = binder._bind_expr(where, scan.schema)  # noqa: SLF001
        return scan, predicate, binder

    # -- statistics ----------------------------------------------------------------

    def _analyze(self, stmt: ast.Analyze) -> Result:
        tables = [stmt.table] if stmt.table else self.cluster.catalog.tables()
        session = self.cluster.session()
        for table in tables:
            schema = self.cluster.catalog.schema(table)
            txn = session.begin(multi_shard=True)
            rows = [values for _, values in txn.scan(schema.name)]
            txn.commit()
            self.stats.put(schema.name, analyze_rows(rows, schema.column_names))
        return Result(rowcount=len(tables))

    def analyze(self, table: Optional[str] = None) -> None:
        self._analyze(ast.Analyze(table))

    # -- queries -------------------------------------------------------------------

    def _planner(self, txn) -> PhysicalPlanner:
        estimator = CardinalityEstimator(
            self.stats,
            feedback=self.feedback if self.learning_enabled else None,
        )

        plan_txn = txn

        def current_txn():
            # Cached plans outlive the snapshot they were planned under;
            # their scan closures must read the statement that is executing
            # *now*.  Falls back to the planning snapshot for external
            # plan_select callers that execute outside the engine.
            active = self._active_txn
            return active if active is not None else plan_txn

        def scan_source(table: str, scan: LogicalScan,
                        dn_index: Optional[int] = None) -> ScanBinding:
            schema = self.cluster.catalog.schema(table)
            order = [c.name for c in schema.columns]

            if dn_index is None:
                def rows() -> Iterable[tuple]:
                    for _, values in current_txn().scan(schema.name):
                        yield tuple(values.get(name) for name in order)

                return ScanBinding(rows)

            # A plan fragment's scan: only this data node's slice.  Column-
            # oriented tables additionally expose a column-store snapshot so
            # the scan can run the vectorized kernels.
            def rows() -> Iterable[tuple]:
                for _, values in current_txn().scan_shard(schema.name, dn_index):
                    yield tuple(values.get(name) for name in order)

            column_store = None
            if schema.orientation is Orientation.COLUMN:
                def column_store(table=schema.name, dn=dn_index):
                    return current_txn().shard_column_store(table, dn)

            return ScanBinding(rows, column_store=column_store,
                               table_schema=schema)

        def table_function_rows(name: str, args: Tuple[object, ...]):
            impl = self.table_functions.get(name)
            if impl is None and self.syscat is not None:
                impl = self.syscat.views[name]

            def rows() -> Iterable[tuple]:
                return impl.rows(args)

            return rows

        return PhysicalPlanner(
            estimator, scan_source, table_function_rows,
            num_dns=self.cluster.num_dns,
            dn_indices=getattr(self.cluster, "dn_indices", lambda: None)(),
            table_schema=self.cluster.catalog.schema,
            cost_model=getattr(getattr(self.cluster, "profile", None),
                               "mpp", None),
            fragmented=self.fragmented,
        )

    def _binder(self) -> Binder:
        return Binder(self.cluster.catalog, self.table_functions,
                      now_fn=self._now_fn,
                      system_views=(self.syscat.views
                                    if self.syscat is not None else None))

    def plan_select(self, stmt: ast.Select, txn) -> PhysicalOp:
        logical = self._binder().bind_select(stmt)
        return self._planner(txn).plan(logical)

    def _run_select_plan(self, stmt: ast.Select,
                         cached: Optional[CachedPlan] = None,
                         cache_key: Optional[str] = None) -> Result:
        session = self.cluster.session()
        obs = self.obs
        tracer = obs.tracer if obs is not None else None
        cn_node = f"cn{session.cn_index}"
        query_span = None
        if tracer is not None:
            # The query span roots this statement's trace; everything the
            # statement causes stitches under it — the read transaction and
            # its snapshot work (via activate), the operator tree (via the
            # profiler's root_span), per-DN fragments (via parent_ctx).
            query_span = tracer.start_span("query", parent=None, node=cn_node)
            if self._wlm_ticket is not None:
                # Admission preceded execution; surface it as a child edge
                # covering the simulated queue wait (0-length when the
                # statement was admitted immediately).
                queue_span = tracer.start_span(
                    "wlm.queue", parent=query_span,
                    group=self._wlm_ticket.group)
                tracer.end_span(
                    queue_span,
                    end_us=queue_span.start_us + self._wlm_ticket.wait_us)
            tracer.activate(query_span)
        txn = session.begin(multi_shard=True)
        profiler = QueryProfiler(
            tracer=tracer,
            metrics=obs.metrics if obs is not None else None,
            root_span=query_span,
            node=cn_node,
        )
        try:
            if cached is not None:
                physical = cached.physical
                columns = cached.columns
                physical.reset_counters()
            else:
                logical = self._binder().bind_select(stmt)
                physical = self._planner(txn).plan(logical)
                columns = [c.name for c in logical.schema]
                if self.batch_enabled:
                    enable_batches(physical, self.batch_size)
            profiler.attach(physical)
            if self._wlm_ctx is not None:
                attach_to_plan(self._wlm_ctx, physical)
            self._active_txn = txn
            try:
                rows = list(physical.execute())
            finally:
                self._active_txn = None
            txn.commit()
        except Exception:
            txn.abort()
            if query_span is not None:
                tracer.deactivate(query_span)
                query_span.set_attribute("error", True)
                tracer.end_span(query_span)
            raise
        finally:
            if query_span is not None:
                tracer.deactivate(query_span)
        profile = profiler.profile()
        if self._wlm_ticket is not None:
            profile.queue_time_us = self._wlm_ticket.wait_us
        if self.obs is not None:
            # Latency is the wall-clock view: concurrent fragments count
            # once (their max), unlike total_time_us which sums all work.
            self.obs.metrics.histogram("query.latency_us").observe(
                profile.elapsed_time_us)
            self.obs.metrics.counter("query.executed").inc()
            query_span.set_attribute("rows", profile.output_rows)
            query_span.set_attribute("time_us", profile.elapsed_time_us)
            self.obs.tracer.end_span(
                query_span,
                end_us=query_span.start_us + profile.elapsed_time_us)
            self.obs.slowlog.note(self._current_sql, query_span.start_us,
                                  profile, queue_us=profile.queue_time_us,
                                  trace_id=query_span.trace_id)
        capture = None
        if self.learning_enabled:
            capture = self.feedback.capture(physical)
        if cache_key is not None and cached is None:
            step_texts = [op.step_text for op in walk_physical(physical)
                          if op.step_text is not None]
            self.plan_cache.put(cache_key, CachedPlan(
                stmt, physical, columns,
                self.cluster.catalog.version, self.stats.version,
                self.cluster.catalog.shard_map_version, step_texts))
        if capture is not None and capture.captured:
            # The capture changed the feedback store: any cached plan built
            # from those estimates (including the one just stored) must
            # replan next time so corrected cardinalities take effect.
            self.plan_cache.invalidate_steps(capture.steps)
        self.queries_executed += 1
        return Result(
            columns=columns,
            rows=rows,
            rowcount=len(rows),
            plan_text=physical.pretty(),
            capture=capture,
            profile=profile,
        )

    def _select(self, stmt: ast.Select) -> Result:
        cached, cache_key = self._cached, self._cache_key
        self._cached = None
        self._cache_key = None
        return self._run_select_plan(stmt, cached=cached, cache_key=cache_key)

    def _explain(self, stmt: ast.Explain) -> Result:
        if stmt.analyze:
            return self._explain_analyze(stmt)
        session = self.cluster.session()
        txn = session.begin(multi_shard=True)
        try:
            physical = self.plan_select(stmt.query, txn)
        finally:
            txn.commit()
        text = physical.pretty()
        return Result(columns=["plan"], rows=[(line,) for line in text.split("\n")],
                      plan_text=text)

    def _explain_analyze(self, stmt: ast.Explain) -> Result:
        """Execute the query under the profiler; return per-operator stats.

        One row per plan operator (pre-order, indented by depth) with the
        rows it produced, batch count and simulated self time — the paper's
        "query response time and resource consumption" at operator grain.
        """
        executed = self._run_select_plan(stmt.query)
        profile = executed.profile
        if stmt.distributed:
            # Per-execution-site rendering: coordinator serial work, each
            # fragment instance's elapsed/rows/net traffic, and the
            # critical (slowest) instance per fragment group.
            return Result(
                columns=list(QueryProfile.DIST_COLUMNS),
                rows=profile.distributed_rows(),
                rowcount=executed.rowcount,
                plan_text=profile.distributed_pretty(),
                capture=executed.capture,
                profile=profile,
            )
        return Result(
            columns=list(QueryProfile.COLUMNS),
            rows=profile.rows_table(),
            rowcount=executed.rowcount,
            plan_text=profile.pretty(),
            capture=executed.capture,
            profile=profile,
        )
