"""SQL tokenizer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from repro.common.errors import SqlSyntaxError

KEYWORDS = {
    "select", "from", "where", "group", "by", "having", "order", "limit",
    "as", "and", "or", "not", "in", "between", "is", "null", "like",
    "join", "inner", "left", "outer", "cross", "on", "distinct",
    "insert", "into", "values", "update", "set", "delete",
    "create", "drop", "table", "if", "exists", "primary", "key",
    "distribute", "hash", "replication", "with", "asc", "desc",
    "case", "when", "then", "else", "end", "true", "false",
    "analyze", "explain", "distributed", "union", "all",
}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OP = "op"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def is_kw(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names

    def is_op(self, *symbols: str) -> bool:
        return self.type is TokenType.OP and self.value in symbols


_TWO_CHAR_OPS = {"<=", ">=", "<>", "!=", "||"}
_ONE_CHAR_OPS = set("+-*/%=<>(),.;")


def tokenize(sql: str) -> List[Token]:
    """Tokenize ``sql``; raises :class:`SqlSyntaxError` on bad input."""
    tokens: List[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and sql.startswith("--", i):
            nl = sql.find("\n", i)
            i = n if nl < 0 else nl + 1
            continue
        if ch == "'":
            j = i + 1
            buf: List[str] = []
            while True:
                if j >= n:
                    raise SqlSyntaxError("unterminated string literal", i)
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":   # escaped quote
                        buf.append("'")
                        j += 2
                        continue
                    break
                buf.append(sql[j])
                j += 1
            tokens.append(Token(TokenType.STRING, "".join(buf), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (sql[j].isdigit() or (sql[j] == "." and not seen_dot)):
                if sql[j] == ".":
                    # A dot followed by a non-digit ends the number (e.g. 1.e)
                    if j + 1 >= n or not sql[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token(TokenType.NUMBER, sql[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j].lower()
            kind = TokenType.KEYWORD if word in KEYWORDS else TokenType.IDENT
            tokens.append(Token(kind, word, i))
            i = j
            continue
        if ch == '"':
            j = sql.find('"', i + 1)
            if j < 0:
                raise SqlSyntaxError("unterminated quoted identifier", i)
            tokens.append(Token(TokenType.IDENT, sql[i + 1:j].lower(), i))
            i = j + 1
            continue
        two = sql[i:i + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(Token(TokenType.OP, two, i))
            i += 2
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token(TokenType.OP, ch, i))
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
