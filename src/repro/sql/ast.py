"""Abstract syntax tree for the SQL subset.

FI-MPPDB "supports ANSI SQL 2008"; this reproduction implements the subset
its workloads and the paper's examples need: DDL with distribution clauses,
INSERT/UPDATE/DELETE, and SELECT with joins, grouping, ordering, limits,
CTEs, derived tables and table functions (the multi-model hooks
``gtimeseries`` / ``ggraph`` of Example 1 enter the grammar as table
functions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class Node:
    """Base class for all AST nodes."""


# -- expressions ------------------------------------------------------------


class Expr(Node):
    pass


@dataclass(frozen=True)
class Literal(Expr):
    value: object  # int, float, str, bool or None


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A possibly-qualified column reference, e.g. ``olap.t1.b1``."""

    parts: Tuple[str, ...]

    @property
    def column(self) -> str:
        return self.parts[-1]

    @property
    def qualifier(self) -> Optional[str]:
        return ".".join(self.parts[:-1]) if len(self.parts) > 1 else None

    def __str__(self) -> str:
        return ".".join(self.parts)


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``alias.*`` in a select list."""

    qualifier: Optional[str] = None


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str           # '+', '-', '*', '/', '%', '=', '<>', '<', '<=', '>',
                      # '>=', 'and', 'or', 'like'
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str           # '-', 'not'
    operand: Expr


@dataclass(frozen=True)
class FuncCall(Expr):
    name: str
    args: Tuple[Expr, ...]
    distinct: bool = False


@dataclass(frozen=True)
class InList(Expr):
    needle: Expr
    items: Tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True)
class Between(Expr):
    needle: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False


@dataclass(frozen=True)
class CaseWhen(Expr):
    whens: Tuple[Tuple[Expr, Expr], ...]   # (condition, result) pairs
    default: Optional[Expr] = None


# -- table references ---------------------------------------------------------


class TableRef(Node):
    pass


@dataclass(frozen=True)
class NamedTable(TableRef):
    name: str
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class DerivedTable(TableRef):
    query: "Select"
    alias: str


@dataclass(frozen=True)
class TableFunction(TableRef):
    """A table-valued function, e.g. ``gtimeseries('speeding', 30)``."""

    name: str
    args: Tuple[Expr, ...]
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class Join(TableRef):
    kind: str            # 'inner', 'left', 'cross'
    left: TableRef
    right: TableRef
    condition: Optional[Expr] = None


# -- statements ---------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem(Node):
    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class OrderItem(Node):
    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class Cte(Node):
    name: str
    columns: Tuple[str, ...]
    query: "Select"


@dataclass(frozen=True)
class Select(Node):
    items: Tuple[SelectItem, ...]
    from_clause: Optional[TableRef] = None
    where: Optional[Expr] = None
    group_by: Tuple[Expr, ...] = ()
    having: Optional[Expr] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    distinct: bool = False
    ctes: Tuple[Cte, ...] = ()
    #: UNION [ALL] branches appended to this select; each entry is
    #: (select, all?).  ORDER BY / LIMIT on self apply to the whole union.
    unions: Tuple[Tuple["Select", bool], ...] = ()


@dataclass(frozen=True)
class ColumnDef(Node):
    name: str
    type_name: str
    not_null: bool = False
    primary_key: bool = False


@dataclass(frozen=True)
class CreateTable(Node):
    name: str
    columns: Tuple[ColumnDef, ...]
    primary_key: Optional[str] = None
    distribute_by: Optional[str] = None     # column name, or None
    replicated: bool = False
    orientation: str = "row"


@dataclass(frozen=True)
class DropTable(Node):
    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class Insert(Node):
    table: str
    columns: Tuple[str, ...]
    rows: Tuple[Tuple[Expr, ...], ...] = ()
    query: Optional[Select] = None


@dataclass(frozen=True)
class Update(Node):
    table: str
    assignments: Tuple[Tuple[str, Expr], ...]
    where: Optional[Expr] = None


@dataclass(frozen=True)
class Delete(Node):
    table: str
    where: Optional[Expr] = None


@dataclass(frozen=True)
class Analyze(Node):
    table: Optional[str] = None     # None = whole catalog


@dataclass(frozen=True)
class Explain(Node):
    query: Select
    analyze: bool = False       # EXPLAIN ANALYZE: execute and profile
    distributed: bool = False   # ... DISTRIBUTED: per-fragment rendering
