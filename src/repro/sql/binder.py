"""Semantic analysis: AST -> bound logical plan.

Resolves names against the cluster catalog, CTEs and the table-function
registry (where the multi-model engines hook in), types expressions, and
produces :mod:`repro.optimizer.logical` trees ready for optimization.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Tuple

from repro.common.errors import SqlAnalysisError
from repro.cluster.catalog import Catalog
from repro.optimizer.expr import (
    SCALAR_FUNCTIONS,
    BoundBinary,
    BoundCase,
    BoundColumn,
    BoundConst,
    BoundExpr,
    BoundInList,
    BoundIsNull,
    BoundScalarCall,
    BoundUnary,
)
from repro.optimizer.logical import (
    AggSpec,
    ColumnInfo,
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalTableFunction,
    LogicalUnion,
)
from repro.sql import ast
from repro.storage.types import DataType, type_of_literal

AGG_FUNCS = {"count", "sum", "avg", "min", "max"}


class TableFunctionImpl(Protocol):
    """A table-valued function the binder can plan against."""

    def output_schema(self, args: Sequence[object]) -> List[Tuple[str, DataType]]:
        """Column (name, type) pairs for the given constant arguments."""

    def rows(self, args: Sequence[object]) -> Iterable[tuple]:
        """Produce the rows at execution time."""

    def estimated_rows(self, args: Sequence[object]) -> int:
        """Cardinality hint for the optimizer."""


class Binder:
    def __init__(self, catalog: Catalog,
                 table_functions: Optional[Dict[str, TableFunctionImpl]] = None,
                 now_fn=None,
                 system_views: Optional[Dict[str, TableFunctionImpl]] = None):
        self.catalog = catalog
        self.table_functions = table_functions or {}
        #: ``sys.*`` virtual tables (zero-argument table functions resolved
        #: by plain name, before the catalog, so they shadow nothing a user
        #: could create — user tables cannot contain a dot).
        self.system_views = system_views or {}
        #: Engine-supplied clock for ``now()`` (simulated time, not OS time).
        self.now_fn = now_fn if now_fn is not None else (lambda: 0)

    # -- entry points ------------------------------------------------------

    def bind_select(self, select: ast.Select) -> LogicalPlan:
        return self._bind_select(select, cte_map={})

    def bind_standalone_expr(self, expr: ast.Expr) -> BoundExpr:
        """Bind an expression with no input columns (constants only)."""
        return self._bind_expr(expr, schema=[])

    # -- SELECT ---------------------------------------------------------------

    def _bind_select(self, select: ast.Select,
                     cte_map: Dict[str, LogicalPlan]) -> LogicalPlan:
        cte_map = dict(cte_map)
        for cte in select.ctes:
            plan = self._bind_select(cte.query, cte_map)
            if cte.columns:
                if len(cte.columns) != len(plan.schema):
                    raise SqlAnalysisError(
                        f"CTE {cte.name}: {len(cte.columns)} column names for "
                        f"{len(plan.schema)} output columns"
                    )
                plan = _rename(plan, cte.name, list(cte.columns))
            cte_map[cte.name.lower()] = plan

        if select.from_clause is not None:
            plan = self._bind_from(select.from_clause, cte_map)
        else:
            from repro.optimizer.logical import LogicalValues

            plan = LogicalValues(rows=[()], schema=[])

        if select.where is not None:
            predicate = self._bind_expr(select.where, plan.schema)
            plan = LogicalFilter(plan, predicate, schema=list(plan.schema))

        has_aggs = any(
            _contains_agg(item.expr) for item in select.items
        ) or (select.having is not None and _contains_agg(select.having)) or bool(
            select.group_by
        )

        if has_aggs:
            plan, output_items = self._bind_aggregate(select, plan)
        else:
            output_items = self._expand_items(select.items, plan.schema)
            exprs = [self._bind_expr(expr, plan.schema) for expr, _ in output_items]
            names = [name for _, name in output_items]
            schema = [
                ColumnInfo(name, None, expr.data_type)
                for name, expr in zip(names, exprs)
            ]
            plan = LogicalProject(plan, exprs, schema=schema)
            output_items = list(zip(exprs, names))

        if select.distinct:
            plan = LogicalDistinct(plan, schema=list(plan.schema))

        if select.unions:
            branches = [plan]
            dedupe = False
            for sub, keep_all in select.unions:
                sub_plan = self._bind_select(sub, cte_map)
                if len(sub_plan.schema) != len(plan.schema):
                    raise SqlAnalysisError(
                        f"UNION branches differ in width "
                        f"({len(plan.schema)} vs {len(sub_plan.schema)})")
                branches.append(sub_plan)
                if not keep_all:
                    dedupe = True
            schema = list(plan.schema)
            plan = LogicalUnion(branches, schema=schema)
            if dedupe:
                plan = LogicalDistinct(plan, schema=schema)

        if select.order_by:
            try:
                keys = [
                    (self._bind_order_key(item.expr, plan.schema), item.descending)
                    for item in select.order_by
                ]
                plan = LogicalSort(plan, keys, schema=list(plan.schema))
            except SqlAnalysisError:
                # ORDER BY may reference pre-projection columns ("select b1
                # from t order by a1"): sort below the projection instead.
                plan = self._sort_below_projection(plan, select.order_by)

        if select.limit is not None:
            plan = LogicalLimit(plan, select.limit, schema=list(plan.schema))

        return plan

    def _sort_below_projection(self, plan: LogicalPlan,
                               order_by) -> LogicalPlan:
        """Push an ORDER BY that references input columns below the project."""
        node = plan
        path = []
        while isinstance(node, (LogicalDistinct,)):
            path.append(node)
            node = node.child
        if not isinstance(node, LogicalProject):
            raise SqlAnalysisError("cannot resolve ORDER BY expression")
        inner = node.child
        keys = [
            (self._bind_order_key(item.expr, inner.schema), item.descending)
            for item in order_by
        ]
        node.child = LogicalSort(inner, keys, schema=list(inner.schema))
        return plan

    def _bind_order_key(self, expr: ast.Expr, schema: List[ColumnInfo]) -> BoundExpr:
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            ordinal = expr.value
            if not (1 <= ordinal <= len(schema)):
                raise SqlAnalysisError(f"ORDER BY ordinal {ordinal} out of range")
            col = schema[ordinal - 1]
            return BoundColumn(ordinal - 1, col.qualified, col.data_type)
        return self._bind_expr(expr, schema)

    # -- FROM ----------------------------------------------------------------

    def _bind_from(self, ref: ast.TableRef,
                   cte_map: Dict[str, LogicalPlan]) -> LogicalPlan:
        if isinstance(ref, ast.NamedTable):
            key = ref.name.lower()
            if key in cte_map:
                return _rename(cte_map[key], ref.binding_name, None)
            view = self.system_views.get(key)
            if view is not None:
                binding = ref.alias or _short_name(ref.name)
                cols = [
                    ColumnInfo(name, binding, data_type,
                               canonical=f"{key}.{name}")
                    for name, data_type in view.output_schema(())
                ]
                return LogicalTableFunction(
                    key, (), schema=cols, rows_hint=view.estimated_rows(()),
                )
            if not self.catalog.has(ref.name):
                raise SqlAnalysisError(f"unknown table or CTE {ref.name!r}")
            schema_def = self.catalog.schema(ref.name)
            binding = ref.alias or _short_name(ref.name)
            cols = [
                ColumnInfo(c.name, binding, c.data_type,
                           canonical=f"{schema_def.name}.{c.name}")
                for c in schema_def.columns
            ]
            return LogicalScan(schema_def.name, schema=cols)
        if isinstance(ref, ast.DerivedTable):
            plan = self._bind_select(ref.query, cte_map)
            return _rename(plan, ref.alias, None)
        if isinstance(ref, ast.TableFunction):
            impl = self.table_functions.get(ref.name.lower())
            if impl is None:
                raise SqlAnalysisError(f"unknown table function {ref.name!r}")
            args = tuple(self._const_arg(a) for a in ref.args)
            binding = ref.binding_name
            cols = [
                ColumnInfo(name, binding, data_type)
                for name, data_type in impl.output_schema(args)
            ]
            return LogicalTableFunction(
                ref.name.lower(), args, schema=cols,
                rows_hint=impl.estimated_rows(args),
            )
        if isinstance(ref, ast.Join):
            left = self._bind_from(ref.left, cte_map)
            right = self._bind_from(ref.right, cte_map)
            schema = list(left.schema) + list(right.schema)
            condition = None
            if ref.condition is not None:
                condition = self._bind_expr(ref.condition, schema)
            return LogicalJoin(ref.kind, left, right, condition, schema=schema)
        raise SqlAnalysisError(f"unsupported FROM clause item {type(ref).__name__}")

    def _const_arg(self, expr: ast.Expr) -> object:
        bound = self._bind_expr(expr, schema=[])
        return bound.eval(())

    # -- aggregation --------------------------------------------------------------

    def _bind_aggregate(self, select: ast.Select, child: LogicalPlan):
        input_schema = child.schema
        group_bound = [self._bind_expr(g, input_schema) for g in select.group_by]
        group_texts = {g.text(): i for i, g in enumerate(group_bound)}

        agg_specs: List[AggSpec] = []
        agg_slots: Dict[str, int] = {}

        def agg_slot(func: str, arg_ast, distinct: bool) -> int:
            arg = None
            if arg_ast is not None and not isinstance(arg_ast, ast.Star):
                arg = self._bind_expr(arg_ast, input_schema)
            spec = AggSpec(func, arg, distinct)
            key = spec.text()
            if key not in agg_slots:
                agg_slots[key] = len(agg_specs)
                agg_specs.append(spec)
            return agg_slots[key]

        # First, walk every output expression to register aggregate slots.
        items = self._expand_items(select.items, input_schema)
        for expr, _ in items:
            _collect_aggs(expr, agg_slot)
        if select.having is not None:
            _collect_aggs(select.having, agg_slot)

        n_groups = len(group_bound)
        agg_schema: List[ColumnInfo] = []
        for i, g in enumerate(group_bound):
            if isinstance(g, BoundColumn):
                source = input_schema[g.index]
                agg_schema.append(ColumnInfo(source.name, source.qualifier,
                                             g.data_type, source.canonical))
            else:
                agg_schema.append(ColumnInfo(f"group_{i}", None, g.data_type))
        for spec in agg_specs:
            dtype = DataType.BIGINT if spec.func == "count" else (
                DataType.DOUBLE if spec.func == "avg" else
                (spec.arg.data_type if spec.arg is not None else None))
            agg_schema.append(ColumnInfo(spec.text().lower(), None, dtype))

        plan: LogicalPlan = LogicalAggregate(
            child, group_bound, agg_specs, schema=agg_schema,
        )

        def rebind(expr: ast.Expr) -> BoundExpr:
            return self._rebind_over_aggregate(
                expr, input_schema, group_texts, agg_slot, n_groups, agg_schema,
            )

        if select.having is not None:
            plan = LogicalFilter(plan, rebind(select.having),
                                 schema=list(plan.schema))

        exprs = [rebind(expr) for expr, _ in items]
        names = [name for _, name in items]
        out_schema = [
            ColumnInfo(name, None, expr.data_type)
            for name, expr in zip(names, exprs)
        ]
        plan = LogicalProject(plan, exprs, schema=out_schema)
        return plan, list(zip(exprs, names))

    def _rebind_over_aggregate(self, expr: ast.Expr, input_schema,
                               group_texts, agg_slot, n_groups, agg_schema) -> BoundExpr:
        if isinstance(expr, ast.FuncCall) and expr.name in AGG_FUNCS:
            arg_ast = expr.args[0] if expr.args else None
            slot = agg_slot(expr.name, arg_ast, expr.distinct)
            index = n_groups + slot
            col = agg_schema[index]
            return BoundColumn(index, col.qualified, col.data_type)
        # A grouped expression becomes a reference to its group slot.
        try:
            bound = self._bind_expr(expr, input_schema)
        except SqlAnalysisError:
            bound = None
        if bound is not None:
            text = bound.text()
            if text in group_texts:
                index = group_texts[text]
                col = agg_schema[index]
                return BoundColumn(index, col.qualified, col.data_type)
            if isinstance(bound, BoundConst):
                return bound
            if isinstance(bound, BoundColumn):
                raise SqlAnalysisError(
                    f"column {bound.qualified_name} must appear in GROUP BY "
                    f"or be used in an aggregate"
                )
        # Recurse: rebuild composite expressions over the aggregate output.
        rebind = lambda e: self._rebind_over_aggregate(  # noqa: E731
            e, input_schema, group_texts, agg_slot, n_groups, agg_schema)
        if isinstance(expr, ast.BinaryOp):
            return BoundBinary(expr.op, rebind(expr.left), rebind(expr.right))
        if isinstance(expr, ast.UnaryOp):
            return BoundUnary(expr.op, rebind(expr.operand))
        if isinstance(expr, ast.IsNull):
            return BoundIsNull(rebind(expr.operand), expr.negated)
        if isinstance(expr, ast.InList):
            return BoundInList(rebind(expr.needle),
                               tuple(rebind(i) for i in expr.items), expr.negated)
        if isinstance(expr, ast.CaseWhen):
            whens = tuple((rebind(c), rebind(r)) for c, r in expr.whens)
            default = rebind(expr.default) if expr.default is not None else None
            return BoundCase(whens, default)
        if isinstance(expr, ast.FuncCall):
            if expr.name == "now":
                return BoundScalarCall("now", (), self.now_fn, DataType.TIMESTAMP)
            fn, dtype = SCALAR_FUNCTIONS.get(expr.name, (None, None))
            if expr.name not in SCALAR_FUNCTIONS:
                raise SqlAnalysisError(f"unknown function {expr.name!r}")
            return BoundScalarCall(expr.name,
                                   tuple(rebind(a) for a in expr.args), fn, dtype)
        raise SqlAnalysisError(
            f"expression {type(expr).__name__} not allowed outside GROUP BY"
        )

    # -- select-list expansion -----------------------------------------------------

    def _expand_items(self, items, schema) -> List[Tuple[ast.Expr, str]]:
        out: List[Tuple[ast.Expr, str]] = []
        for item in items:
            if isinstance(item.expr, ast.Star):
                qualifier = item.expr.qualifier
                matched = False
                for col in schema:
                    if qualifier is None or _qualifier_matches(col, qualifier):
                        parts = ((col.qualifier,) if col.qualifier else ()) + (col.name,)
                        out.append((ast.ColumnRef(tuple(parts)), col.name))
                        matched = True
                if not matched:
                    raise SqlAnalysisError(f"no columns match {qualifier or ''}.*")
            else:
                name = item.alias or _derive_name(item.expr, len(out))
                out.append((item.expr, name))
        return out

    # -- expression binding ----------------------------------------------------------

    def _bind_expr(self, expr: ast.Expr, schema: List[ColumnInfo]) -> BoundExpr:
        if isinstance(expr, ast.Literal):
            dtype = None if expr.value is None else type_of_literal(expr.value)
            return BoundConst(expr.value, dtype)
        if isinstance(expr, ast.ColumnRef):
            return self._resolve_column(expr, schema)
        if isinstance(expr, ast.BinaryOp):
            left = self._bind_expr(expr.left, schema)
            right = self._bind_expr(expr.right, schema)
            dtype = _binary_type(expr.op, left, right)
            return BoundBinary(expr.op, left, right, dtype)
        if isinstance(expr, ast.UnaryOp):
            operand = self._bind_expr(expr.operand, schema)
            dtype = DataType.BOOL if expr.op == "not" else operand.data_type
            return BoundUnary(expr.op, operand, dtype)
        if isinstance(expr, ast.IsNull):
            return BoundIsNull(self._bind_expr(expr.operand, schema), expr.negated)
        if isinstance(expr, ast.InList):
            return BoundInList(
                self._bind_expr(expr.needle, schema),
                tuple(self._bind_expr(i, schema) for i in expr.items),
                expr.negated,
            )
        if isinstance(expr, ast.Between):
            needle = self._bind_expr(expr.needle, schema)
            low = self._bind_expr(expr.low, schema)
            high = self._bind_expr(expr.high, schema)
            rng = BoundBinary(
                "and",
                BoundBinary(">=", needle, low, DataType.BOOL),
                BoundBinary("<=", needle, high, DataType.BOOL),
                DataType.BOOL,
            )
            return BoundUnary("not", rng, DataType.BOOL) if expr.negated else rng
        if isinstance(expr, ast.CaseWhen):
            whens = tuple(
                (self._bind_expr(c, schema), self._bind_expr(r, schema))
                for c, r in expr.whens
            )
            default = (self._bind_expr(expr.default, schema)
                       if expr.default is not None else None)
            dtype = whens[0][1].data_type
            return BoundCase(whens, default, dtype)
        if isinstance(expr, ast.FuncCall):
            if expr.name in AGG_FUNCS:
                raise SqlAnalysisError(
                    f"aggregate {expr.name}() is not allowed here"
                )
            if expr.name == "now":
                return BoundScalarCall("now", (), self.now_fn, DataType.TIMESTAMP)
            if expr.name not in SCALAR_FUNCTIONS:
                raise SqlAnalysisError(f"unknown function {expr.name!r}")
            fn, dtype = SCALAR_FUNCTIONS[expr.name]
            args = tuple(self._bind_expr(a, schema) for a in expr.args)
            if dtype is None and args:
                dtype = args[0].data_type
            return BoundScalarCall(expr.name, args, fn, dtype)
        if isinstance(expr, ast.Star):
            raise SqlAnalysisError("* is only allowed in the select list or count(*)")
        raise SqlAnalysisError(f"unsupported expression {type(expr).__name__}")

    def _resolve_column(self, ref: ast.ColumnRef,
                        schema: List[ColumnInfo]) -> BoundColumn:
        matches = []
        for index, col in enumerate(schema):
            if col.name != ref.column:
                continue
            if ref.qualifier is not None and not _qualifier_matches(col, ref.qualifier):
                continue
            matches.append((index, col))
        if not matches:
            raise SqlAnalysisError(f"unknown column {ref}")
        if len(matches) > 1:
            raise SqlAnalysisError(f"ambiguous column {ref}")
        index, col = matches[0]
        name = col.canonical or col.qualified
        return BoundColumn(index, name, col.data_type)


# -- helpers ---------------------------------------------------------------------


def _binary_type(op: str, left: BoundExpr, right: BoundExpr):
    if op in ("and", "or", "like", "=", "<>", "<", "<=", ">", ">="):
        return DataType.BOOL
    if op == "||":
        return DataType.TEXT
    if op == "/":
        return DataType.DOUBLE
    if left.data_type is DataType.DOUBLE or right.data_type is DataType.DOUBLE:
        return DataType.DOUBLE
    return left.data_type or right.data_type


def _qualifier_matches(col: ColumnInfo, qualifier: str) -> bool:
    if col.qualifier is None:
        return False
    if col.qualifier == qualifier:
        return True
    # A reference may use the trailing segment of a schema-qualified binding
    # ("t1.b1" for table "olap.t1") or the full canonical name.
    if col.qualifier.endswith("." + qualifier):
        return True
    if col.canonical is not None:
        canonical_qual = col.canonical.rsplit(".", 1)[0]
        if canonical_qual == qualifier or canonical_qual.endswith("." + qualifier):
            return True
    return False


def _short_name(name: str) -> str:
    return name.rsplit(".", 1)[-1]


def _derive_name(expr: ast.Expr, position: int) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.column
    if isinstance(expr, ast.FuncCall):
        return expr.name
    return f"col_{position}"


def _contains_agg(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.FuncCall):
        if expr.name in AGG_FUNCS:
            return True
        return any(_contains_agg(a) for a in expr.args)
    if isinstance(expr, ast.BinaryOp):
        return _contains_agg(expr.left) or _contains_agg(expr.right)
    if isinstance(expr, ast.UnaryOp):
        return _contains_agg(expr.operand)
    if isinstance(expr, ast.IsNull):
        return _contains_agg(expr.operand)
    if isinstance(expr, ast.InList):
        return _contains_agg(expr.needle) or any(_contains_agg(i) for i in expr.items)
    if isinstance(expr, ast.Between):
        return any(_contains_agg(e) for e in (expr.needle, expr.low, expr.high))
    if isinstance(expr, ast.CaseWhen):
        for cond, result in expr.whens:
            if _contains_agg(cond) or _contains_agg(result):
                return True
        return expr.default is not None and _contains_agg(expr.default)
    return False


def _collect_aggs(expr: ast.Expr, register) -> None:
    """Register every aggregate call in ``expr`` via ``register``."""
    if isinstance(expr, ast.FuncCall):
        if expr.name in AGG_FUNCS:
            arg = expr.args[0] if expr.args else None
            register(expr.name, arg, expr.distinct)
            return
        for a in expr.args:
            _collect_aggs(a, register)
        return
    if isinstance(expr, ast.BinaryOp):
        _collect_aggs(expr.left, register)
        _collect_aggs(expr.right, register)
    elif isinstance(expr, ast.UnaryOp):
        _collect_aggs(expr.operand, register)
    elif isinstance(expr, ast.IsNull):
        _collect_aggs(expr.operand, register)
    elif isinstance(expr, ast.InList):
        _collect_aggs(expr.needle, register)
        for i in expr.items:
            _collect_aggs(i, register)
    elif isinstance(expr, ast.Between):
        for e in (expr.needle, expr.low, expr.high):
            _collect_aggs(e, register)
    elif isinstance(expr, ast.CaseWhen):
        for cond, result in expr.whens:
            _collect_aggs(cond, register)
            _collect_aggs(result, register)
        if expr.default is not None:
            _collect_aggs(expr.default, register)


def _rename(plan: LogicalPlan, binding: str,
            new_names: Optional[List[str]]) -> LogicalPlan:
    """Re-qualify a subplan's output under a new binding name."""
    exprs = []
    schema = []
    for i, col in enumerate(plan.schema):
        name = new_names[i] if new_names else col.name
        exprs.append(BoundColumn(i, f"{binding}.{name}", col.data_type))
        schema.append(ColumnInfo(name, binding, col.data_type))
    return LogicalProject(plan, exprs, schema=schema)
