"""Prepared-statement plan cache keyed on the learnopt canonical form.

Repeated workload-driver statements are textually identical; hashing the
whitespace-normalized SQL with the same MD5 the learning plan store uses
(:func:`repro.learnopt.store.step_key`) lets the engine skip the lexer,
parser, binder and planner entirely on a hit and re-execute the cached
physical plan (with counters reset and fresh profiler/WLM attachment).

Four invalidation channels keep cached plans honest:

* **catalog version** — every DDL (CREATE/DROP, ``load_*`` table setup)
  bumps :attr:`repro.cluster.catalog.Catalog.version`; a cached plan built
  against an older catalog is discarded, never reused (a redefined table
  would otherwise serve rows in the old column order).
* **stats version** — ``ANALYZE`` bumps the
  :class:`~repro.optimizer.stats.StatsManager` version, so plans re-cost
  against fresh statistics.
* **shard-map version** — membership changes and rebalance flips bump
  :attr:`repro.cluster.shardmap.ShardMap.version`; fragment plans bake in
  the DN fan-out and slot ownership (exchange targets, co-location), so a
  plan built against an older shard map is discarded rather than routed
  to DNs that no longer own the data.
* **captured steps** — when the learning producer captures a mis-estimated
  step, every cached plan containing that logical step is evicted; the next
  execution replans with the corrected cardinality (the Fig. 5 loop keeps
  converging — steady state is reached exactly when nothing is captured,
  and only then do plans pin in the cache).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, List, Optional

from repro.learnopt.store import step_key


class CachedPlan:
    """One reusable prepared statement."""

    __slots__ = ("statement", "physical", "columns", "catalog_version",
                 "stats_version", "shard_map_version", "step_keys")

    def __init__(self, statement, physical, columns: List[str],
                 catalog_version: int, stats_version: int,
                 shard_map_version: int, step_texts: Iterable[str]):
        self.statement = statement
        self.physical = physical
        self.columns = columns
        self.catalog_version = catalog_version
        self.stats_version = stats_version
        self.shard_map_version = shard_map_version
        self.step_keys = frozenset(step_key(text) for text in step_texts)


class PlanCache:
    """LRU cache of prepared plans, keyed on normalized-SQL MD5."""

    def __init__(self, capacity: int = 64):
        self.capacity = max(0, int(capacity))
        self._entries: "OrderedDict[str, CachedPlan]" = OrderedDict()
        #: Hit/probe accounting over SELECT statements only (DDL/DML are
        #: never cacheable and would dilute the steady-state hit rate).
        self.hits = 0
        self.probes = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key_for(sql: str) -> str:
        return step_key(" ".join(sql.split()))

    def lookup(self, key: str, catalog_version: int,
               stats_version: int,
               shard_map_version: int = 0) -> Optional[CachedPlan]:
        """Return a fresh entry or evict a stale one (no counter side
        effects — the engine records hit/miss once it knows the statement
        kind)."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        if (entry.catalog_version != catalog_version
                or entry.stats_version != stats_version
                or entry.shard_map_version != shard_map_version):
            del self._entries[key]
            return None
        self._entries.move_to_end(key)
        return entry

    def put(self, key: str, entry: CachedPlan) -> None:
        if self.capacity <= 0:
            return
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def note_hit(self) -> None:
        self.probes += 1
        self.hits += 1

    def note_miss(self) -> None:
        self.probes += 1

    @property
    def hit_rate(self) -> float:
        return self.hits / self.probes if self.probes else 0.0

    def invalidate_steps(self, step_texts: Iterable[str]) -> int:
        """Evict every plan containing one of these captured logical steps."""
        keys = {step_key(text) for text in step_texts}
        if not keys:
            return 0
        stale = [sql_key for sql_key, entry in self._entries.items()
                 if entry.step_keys & keys]
        for sql_key in stale:
            del self._entries[sql_key]
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()
